"""Simulated distributed substrate: clock, cost model, network, sites.

The paper's testbed was a set of Sun SPARC stations on a 10 Mbps
Ethernet.  This package replaces that hardware with a deterministic
simulation: a :class:`~repro.simnet.clock.SimClock` advanced by a
:class:`~repro.simnet.clock.CostModel`, a
:class:`~repro.simnet.network.Network`
that delivers :class:`~repro.simnet.message.Message` objects between
:class:`~repro.simnet.network.Site` endpoints while charging latency and
bandwidth, and a :class:`~repro.simnet.stats.StatsCollector` that counts the
quantities the paper's figures report (messages, bytes, callbacks, page
faults).

Everything in the reproduction is synchronous — the paper's execution
model has exactly one active thread per RPC session — so message
"delivery" is an ordinary function call into the destination site's
handler, with simulated time charged before the call.
"""

from repro.simnet.clock import CostModel, SimClock
from repro.simnet.message import Message, MessageKind
from repro.simnet.network import Network, Site
from repro.simnet.stats import StatsCollector, TraceEvent

__all__ = [
    "CostModel",
    "SimClock",
    "Message",
    "MessageKind",
    "Network",
    "Site",
    "StatsCollector",
    "TraceEvent",
]
