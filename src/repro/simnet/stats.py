"""Statistics and tracing for simulated runs.

The paper's evaluation reports processing time (Figs. 4, 6, 7) and the
number of callbacks (Fig. 5).  :class:`StatsCollector` counts both plus
the auxiliary quantities (bytes moved, page faults, write-backs) that
EXPERIMENTS.md uses to explain the measured shapes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional

from repro.simnet.message import Message, MessageKind


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped record in the simulation trace.

    ``data`` carries optional machine-readable details (message kinds,
    session ids, page numbers) so recorded traces can be checked
    offline by :mod:`repro.analysis.trace_rules`; ``detail`` stays the
    human-readable rendering used by the timeline formatter.
    """

    time: float
    category: str
    detail: str
    data: Optional[Mapping[str, Any]] = field(
        default=None, compare=False
    )


@dataclass
class TransferLedger:
    """Shipped-vs-touched accounting of the fault-driven fill path.

    ``shipped`` counts closure bytes a home space sent in data replies;
    ``touched`` counts the subset the program actually accessed.  The
    ``prefetch_*`` pair restricts both to data shipped *beyond* the
    demanded roots — the eager-closure gamble whose payoff the adaptive
    policy watches.  One ledger lives on the global
    :class:`StatsCollector` (benchmark reporting) and one per smart
    session (the adaptive feedback signal).
    """

    closure_bytes_shipped: int = 0
    closure_bytes_touched: int = 0
    prefetch_bytes_shipped: int = 0
    prefetch_bytes_touched: int = 0
    #: Fetch-pipeline wins: demand round trips that never happened.
    #: ``round_trips_saved`` counts cache pages that became resident
    #: without issuing their own data request (covered by a coalesced
    #: batch or an absorbed prefetch); ``piggyback_hits`` counts faults
    #: that were satisfied by absorbing an already-in-flight exchange
    #: instead of issuing a new one.
    round_trips_saved: int = 0
    piggyback_hits: int = 0

    def record_shipped(self, size: int, prefetched: bool) -> None:
        """Count one entry's bytes arriving on the fill path."""
        self.closure_bytes_shipped += size
        if prefetched:
            self.prefetch_bytes_shipped += size

    def record_touched(self, size: int, prefetched: bool) -> None:
        """Count one shipped entry's first program access."""
        self.closure_bytes_touched += size
        if prefetched:
            self.prefetch_bytes_touched += size

    def record_saved_round_trips(self, pages: int) -> None:
        """Count demand exchanges the pipeline made unnecessary."""
        self.round_trips_saved += pages

    def record_piggyback_hit(self) -> None:
        """Count one fault absorbed by an in-flight exchange."""
        self.piggyback_hits += 1

    def as_dict(self) -> Dict[str, int]:
        """Counter mapping for JSON reporting."""
        return {
            "closure_bytes_shipped": self.closure_bytes_shipped,
            "closure_bytes_touched": self.closure_bytes_touched,
            "prefetch_bytes_shipped": self.prefetch_bytes_shipped,
            "prefetch_bytes_touched": self.prefetch_bytes_touched,
            "round_trips_saved": self.round_trips_saved,
            "piggyback_hits": self.piggyback_hits,
        }


class StatsCollector:
    """Accumulates counters and (optionally) a full event trace.

    One collector is shared by the network and every runtime in a
    simulation.  Counters are cheap; the trace is off by default because
    long benchmark runs would otherwise build million-entry lists.
    """

    def __init__(self, trace: bool = False) -> None:
        self._trace_enabled = trace
        self.events: List[TraceEvent] = []
        self.messages_by_kind: Counter = Counter()
        self.bytes_by_kind: Counter = Counter()
        self.page_faults = 0
        self.write_faults = 0
        self.pages_filled = 0
        self.entries_transferred = 0
        self.duplicate_entries = 0
        self.write_backs = 0
        self.invalidations = 0
        self.remote_mallocs = 0
        self.remote_frees = 0
        self.batch_flushes = 0
        self.sessions_aborted = 0
        self.orphans_reaped = 0
        self.transfer_ledger = TransferLedger()

    # -- messages ---------------------------------------------------------

    def record_message(self, message: Message) -> None:
        """Count one sent message."""
        self.messages_by_kind[message.kind] += 1
        self.bytes_by_kind[message.kind] += message.size

    @property
    def total_messages(self) -> int:
        """Number of messages sent, all kinds."""
        return sum(self.messages_by_kind.values())

    @property
    def total_bytes(self) -> int:
        """Payload bytes sent, all kinds."""
        return sum(self.bytes_by_kind.values())

    @property
    def callbacks(self) -> int:
        """Data-request messages from a callee back to a data home.

        This is the quantity the paper's Figure 5 plots: for the fully
        lazy baseline it is one per pointer dereference; for the proposed
        method it is one per faulted page.
        """
        return self.messages_by_kind[MessageKind.DATA_REQUEST]

    # -- tracing ----------------------------------------------------------

    @property
    def tracing(self) -> bool:
        """Whether events are being recorded.

        Emitters that do per-event work beyond building the event —
        vector-clock stamping, say — check this first so benchmark runs
        (tracing off) pay nothing.
        """
        return self._trace_enabled

    def record_event(
        self,
        time: float,
        category: str,
        detail: str,
        data: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Append a trace event if tracing is enabled."""
        if self._trace_enabled:
            self.events.append(TraceEvent(time, category, detail, data))

    def events_in(self, category: str) -> Iterator[TraceEvent]:
        """Iterate trace events of one category."""
        return (event for event in self.events if event.category == category)

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        """Zero every counter and drop the trace."""
        self.events.clear()
        self.messages_by_kind.clear()
        self.bytes_by_kind.clear()
        self.page_faults = 0
        self.write_faults = 0
        self.pages_filled = 0
        self.entries_transferred = 0
        self.duplicate_entries = 0
        self.write_backs = 0
        self.invalidations = 0
        self.remote_mallocs = 0
        self.remote_frees = 0
        self.batch_flushes = 0
        self.sessions_aborted = 0
        self.orphans_reaped = 0
        self.transfer_ledger = TransferLedger()

    def summary(self) -> str:
        """Human-readable multi-line counter dump."""
        lines = [
            f"messages: {self.total_messages} ({self.total_bytes} bytes)",
            f"callbacks (data requests): {self.callbacks}",
            f"page faults: {self.page_faults} (write: {self.write_faults})",
            f"entries transferred: {self.entries_transferred} "
            f"(duplicates: {self.duplicate_entries})",
            f"write-backs: {self.write_backs}, "
            f"invalidations: {self.invalidations}",
            f"remote mallocs: {self.remote_mallocs}, "
            f"frees: {self.remote_frees}, "
            f"batch flushes: {self.batch_flushes}",
            f"closure bytes shipped: "
            f"{self.transfer_ledger.closure_bytes_shipped} "
            f"(touched: {self.transfer_ledger.closure_bytes_touched}), "
            f"prefetched: {self.transfer_ledger.prefetch_bytes_shipped} "
            f"(touched: {self.transfer_ledger.prefetch_bytes_touched})",
            f"round trips saved: {self.transfer_ledger.round_trips_saved} "
            f"(piggyback hits: {self.transfer_ledger.piggyback_hits})",
            f"sessions aborted: {self.sessions_aborted}, "
            f"orphans reaped: {self.orphans_reaped}",
        ]
        return "\n".join(lines)


def merged_counter(collectors: List[StatsCollector]) -> Counter:
    """Sum per-kind message counters across ``collectors``."""
    total: Counter = Counter()
    for collector in collectors:
        total.update(collector.messages_by_kind)
    return total


def optional_stats(stats: Optional[StatsCollector]) -> StatsCollector:
    """Return ``stats`` or a fresh throwaway collector."""
    return stats if stats is not None else StatsCollector()
