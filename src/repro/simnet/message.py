"""Network messages.

A :class:`Message` is what travels between sites.  Its payload is always
a ``bytes`` object — runtimes serialise through :mod:`repro.xdr` before
sending, exactly as the original system serialised through Sun XDR —
so the byte counts charged to the network are the real encoded sizes.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field


class MessageKind(enum.Enum):
    """Why a message was sent; used for per-kind statistics.

    The paper's Figure 5 counts *callbacks*: messages a callee sends back
    to the data's home space asking for the contents of a pointer.  Both
    the fully lazy baseline's per-dereference callbacks and the proposed
    method's page-fault-driven data requests are tagged
    :attr:`DATA_REQUEST` so one counter serves both curves.
    """

    CALL = "call"
    REPLY = "reply"
    DATA_REQUEST = "data_request"
    DATA_REPLY = "data_reply"
    WRITE_BACK = "write_back"
    WRITE_BACK_ACK = "write_back_ack"
    # Two-phase session-end write-back (DESIGN.md §12): every dirty
    # home stages its batch on prepare; only when every prepare is
    # acknowledged does the ground commit, so a crash between phases
    # never leaves one home space half-updated.
    WRITEBACK_PREPARE = "writeback_prepare"
    WRITEBACK_PREPARE_ACK = "writeback_prepare_ack"
    WRITEBACK_COMMIT = "writeback_commit"
    WRITEBACK_COMMIT_ACK = "writeback_commit_ack"
    INVALIDATE = "invalidate"
    MEMORY_BATCH = "memory_batch"
    MEMORY_BATCH_REPLY = "memory_batch_reply"
    TYPE_QUERY = "type_query"
    TYPE_REPLY = "type_reply"
    # Site directory traffic (repro.namesvc.directory): how processes
    # hosting address spaces find, monitor and release each other.
    SITE_REGISTER = "site_register"
    SITE_DEREGISTER = "site_deregister"
    SITE_LOOKUP = "site_lookup"
    SITE_HEARTBEAT = "site_heartbeat"
    SITE_LIST = "site_list"
    DIR_REPLY = "dir_reply"
    # Process-host control plane (repro.transport.host).
    SHUTDOWN = "shutdown"
    SHUTDOWN_ACK = "shutdown_ack"
    # Readiness barrier + remote scenario driver (crash-matrix tests):
    # STATUS blocks until the host reaches a requested liveness state;
    # RUN_SESSION asks a host to act as the ground site of a scripted
    # session (so caller-crash cells can kill a real process).
    STATUS = "status"
    STATUS_REPLY = "status_reply"
    RUN_SESSION = "run_session"
    RUN_REPLY = "run_reply"


_message_ids = itertools.count(1)


@dataclass
class Message:
    """One simulated network message.

    Attributes:
        src: sending site id.
        dst: destination site id.
        kind: protocol role of the message.
        payload: encoded body.
        msg_id: unique id for tracing.
        carrier_ref: carrier-owned resource backing ``payload``, if the
            payload is a zero-copy view instead of an owned ``bytes``
            (the shared-memory transport attaches a segment lease here;
            a handler that must keep the payload alive past its own
            return calls ``carrier_ref.retain()`` and later
            ``release()``).  ``None`` on owned payloads and on every
            simulated delivery.
    """

    src: str
    dst: str
    kind: MessageKind
    payload: bytes
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    carrier_ref: object = field(default=None, repr=False, compare=False)

    @property
    def size(self) -> int:
        """Encoded payload size in bytes (what the wire model charges)."""
        return len(self.payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(#{self.msg_id} {self.src}->{self.dst} "
            f"{self.kind.value} {self.size}B)"
        )
