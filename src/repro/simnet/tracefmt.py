"""Rendering and serialization of simulation traces.

Enable tracing by constructing the network's stats collector with
``trace=True``; every message, fault and protocol action is then
timestamped.  :func:`format_timeline` renders the trace as an aligned
timeline, which is the fastest way to see the method at work::

    t (ms)    category  detail
    0.000     message   A->B call tree_ops.search ...
    0.412     message   B->A data_request 40B
    ...

Traces also round-trip through a line-oriented JSON format (one event
per line) via :func:`save_trace` / :func:`load_trace`, so a recorded
run can be replayed offline — e.g. by the conformance checker in
``repro.analysis``.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Optional, Union

from repro.simnet.stats import StatsCollector, TraceEvent


def format_timeline(
    events: Iterable[TraceEvent],
    categories: Optional[List[str]] = None,
    limit: Optional[int] = None,
) -> str:
    """Render trace events as an aligned timeline table.

    ``categories`` filters to the given kinds; ``limit`` truncates the
    output (a note records how many events were dropped).
    """
    selected = [
        event
        for event in events
        if categories is None or event.category in categories
    ]
    dropped = 0
    if limit is not None and len(selected) > limit:
        dropped = len(selected) - limit
        selected = selected[:limit]
    lines = ["t (ms)      category    detail"]
    for event in selected:
        lines.append(
            f"{event.time * 1000:10.3f}  {event.category:<10s}  "
            f"{event.detail}"
        )
    if dropped:
        lines.append(f"... {dropped} more events")
    return "\n".join(lines)


class TraceFormatError(ValueError):
    """A trace log line could not be parsed back into a TraceEvent."""


#: Trace schema revision.  Revision 2 (the coherency-sanitizer rev)
#: requires every session-scoped protocol event to carry ``session``,
#: ``site``, a per-(site, session) monotonic ``seq`` and a vector-clock
#: ``vc`` stamp.  :func:`load_trace` still reads revision-1 logs (the
#: sanitizer derives clocks for them); :func:`save_trace` enforces the
#: current revision at write time.
TRACE_SCHEMA = 2

#: Every session-scoped protocol event category; schema revision 2
#: requires the stamp fields on each of these.  Carrier-level events
#: (``message`` / ``timeout`` / ``loss``) are exempt: they may be
#: recorded where no session context exists.
SESSION_CATEGORIES = frozenset({
    "transfer", "fault", "write",
    "session-end", "write-back", "invalidate",
    "policy", "policy-decision", "data-batch",
    "session-abort", "orphan-reaped", "writeback-phase",
})


def validate_event(event: TraceEvent, lineno: int = 0) -> None:
    """Check one event against the current trace schema revision.

    Raises :class:`TraceFormatError` naming the missing or malformed
    field, so an emitter bug fails at record time instead of surfacing
    as a puzzling analysis result later.
    """
    if event.category not in SESSION_CATEGORIES:
        return
    where = f"line {lineno}: {event.category} event"
    data = event.data
    if data is None:
        raise TraceFormatError(f"{where} has no data fields")
    session = data.get("session")
    if not isinstance(session, str) or not session:
        raise TraceFormatError(
            f"{where} has no session id (got {session!r})"
        )
    site = data.get("site")
    if not isinstance(site, str) or not site:
        raise TraceFormatError(f"{where} has no site id (got {site!r})")
    seq = data.get("seq")
    if isinstance(seq, bool) or not isinstance(seq, int) or seq < 0:
        raise TraceFormatError(
            f"{where} has no monotonic sequence (got {seq!r})"
        )
    vc = data.get("vc")
    if not isinstance(vc, dict) or not all(
        isinstance(k, str)
        and isinstance(v, int)
        and not isinstance(v, bool)
        and v >= 0
        for k, v in vc.items()
    ):
        raise TraceFormatError(
            f"{where} has no vector-clock stamp (got {vc!r})"
        )


def event_to_json(event: TraceEvent) -> str:
    """Serialize one event as a single JSON line (no newline)."""
    record = {"t": event.time, "category": event.category,
              "detail": event.detail}
    if event.data is not None:
        record["data"] = dict(event.data)
    return json.dumps(record, sort_keys=True)


def event_from_json(line: str, lineno: int = 0) -> TraceEvent:
    """Parse one JSON trace line back into a :class:`TraceEvent`."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(
            f"line {lineno}: not valid JSON: {exc}"
        ) from None
    if not isinstance(record, dict):
        raise TraceFormatError(f"line {lineno}: expected a JSON object")
    try:
        time = record["t"]
        category = record["category"]
        detail = record["detail"]
    except KeyError as exc:
        raise TraceFormatError(
            f"line {lineno}: missing trace field {exc}"
        ) from None
    if not isinstance(time, (int, float)) or isinstance(time, bool):
        raise TraceFormatError(f"line {lineno}: bad timestamp {time!r}")
    if not isinstance(category, str) or not isinstance(detail, str):
        raise TraceFormatError(
            f"line {lineno}: category and detail must be strings"
        )
    data = record.get("data")
    if data is not None and not isinstance(data, dict):
        raise TraceFormatError(f"line {lineno}: bad data field {data!r}")
    return TraceEvent(
        time=float(time), category=category, detail=detail, data=data
    )


def dump_trace(events: Iterable[TraceEvent]) -> str:
    """Serialize events as JSON-lines text (trailing newline included)."""
    lines = [event_to_json(event) for event in events]
    return "\n".join(lines) + ("\n" if lines else "")


def parse_trace(text: str) -> List[TraceEvent]:
    """Parse JSON-lines text back into a list of events."""
    events = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        events.append(event_from_json(line, lineno))
    return events


def save_trace(
    events: Union[Iterable[TraceEvent], StatsCollector],
    path,
    validate: bool = True,
) -> None:
    """Write a trace log (one JSON object per line) to ``path``.

    Events are validated against the current schema revision
    (:data:`TRACE_SCHEMA`) before anything is written, so a malformed
    event fails at record time with nothing on disk.  ``validate=False``
    is the escape hatch for deliberately writing non-conforming traces
    (the mutant-fixture recorders).
    """
    if isinstance(events, StatsCollector):
        events = events.events
    events = list(events)
    if validate:
        for lineno, event in enumerate(events, start=1):
            validate_event(event, lineno)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_trace(events))


def load_trace(path) -> List[TraceEvent]:
    """Read a trace log written by :func:`save_trace`."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_trace(handle.read())


def events_for_session(
    events: Iterable[TraceEvent], session_id: str
) -> List[TraceEvent]:
    """The sub-trace of one session, in original order.

    Crash forensics helper: a session's lifecycle — transfers, faults,
    abort, reap, write-back phases — filtered out of a (possibly
    merged multi-space) trace by the ``session`` key every smart-RPC
    event carries.
    """
    return [
        event
        for event in events
        if (event.data or {}).get("session") == session_id
    ]


def summarize_trace(stats: StatsCollector) -> str:
    """Counter totals plus the first and last event times."""
    lines = [stats.summary()]
    if stats.events:
        first = stats.events[0].time * 1000
        last = stats.events[-1].time * 1000
        lines.append(
            f"trace: {len(stats.events)} events from "
            f"{first:.3f} ms to {last:.3f} ms"
        )
    else:
        lines.append("trace: no events recorded (tracing off?)")
    return "\n".join(lines)
