"""Human-readable rendering of simulation traces.

Enable tracing by constructing the network's stats collector with
``trace=True``; every message, fault and protocol action is then
timestamped.  :func:`format_timeline` renders the trace as an aligned
timeline, which is the fastest way to see the method at work::

    t (ms)    category  detail
    0.000     message   A->B call tree_ops.search ...
    0.412     message   B->A data_request 40B
    ...
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.simnet.stats import StatsCollector, TraceEvent


def format_timeline(
    events: Iterable[TraceEvent],
    categories: Optional[List[str]] = None,
    limit: Optional[int] = None,
) -> str:
    """Render trace events as an aligned timeline table.

    ``categories`` filters to the given kinds; ``limit`` truncates the
    output (a note records how many events were dropped).
    """
    selected = [
        event
        for event in events
        if categories is None or event.category in categories
    ]
    dropped = 0
    if limit is not None and len(selected) > limit:
        dropped = len(selected) - limit
        selected = selected[:limit]
    lines = ["t (ms)      category    detail"]
    for event in selected:
        lines.append(
            f"{event.time * 1000:10.3f}  {event.category:<10s}  "
            f"{event.detail}"
        )
    if dropped:
        lines.append(f"... {dropped} more events")
    return "\n".join(lines)


def summarize_trace(stats: StatsCollector) -> str:
    """Counter totals plus the first and last event times."""
    lines = [stats.summary()]
    if stats.events:
        first = stats.events[0].time * 1000
        last = stats.events[-1].time * 1000
        lines.append(
            f"trace: {len(stats.events)} events from "
            f"{first:.3f} ms to {last:.3f} ms"
        )
    else:
        lines.append("trace: no events recorded (tracing off?)")
    return "\n".join(lines)
