"""The simulated network and its endpoints.

A :class:`Network` connects :class:`Site` endpoints.  Sending a message
charges simulated time (latency + bandwidth) to the shared clock and
then synchronously invokes the destination site's handler for the
message kind.  Handlers return a reply payload where the protocol calls
for one; the reply is itself charged as a message.

Synchronous delivery is faithful to the paper's model: an RPC session
has exactly one active thread, so the sender is always blocked while
the receiver works.

The network is reliable by default (the paper's evaluation assumes a
quiet Ethernet).  Constructing it with a nonzero ``loss_rate`` makes
delivery lossy and deterministic (seeded): exchanges then run the
classic Birrell-Nelson machinery — timeout, retransmission, and
at-most-once execution via a per-site duplicate cache keyed by
exchange id, so a handler's side effects happen exactly once per
logical send however many retransmissions it takes.

:class:`Network` and :class:`Site` implement the pluggable transport
contract in :mod:`repro.transport.base` (which was extracted from this
module); :class:`repro.transport.tcp.TcpTransport` is the real
inter-process implementation of the same contract.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Optional

from repro.simnet.clock import CostModel, SimClock
from repro.simnet.message import Message, MessageKind
from repro.simnet.stats import StatsCollector
from repro.transport.base import (
    Endpoint,
    Handler,
    Transport,
    TransportError as _BaseTransportError,
)

__all__ = [
    "Handler",
    "Network",
    "NetworkError",
    "Site",
    "TransportError",
]

_MAX_ATTEMPTS = 24
_REPLY_CACHE_LIMIT = 4096
_exchange_ids = itertools.count(1)


class NetworkError(Exception):
    """Raised for malformed network usage (unknown site, no handler)."""


class TransportError(NetworkError, _BaseTransportError):
    """An exchange failed even after every retransmission."""


class Site(Endpoint):
    """One endpoint (machine + process) on the simulated network.

    A site is identified by its ``site_id`` string — the paper's
    "address space identifier (typically a pair consisting of a site ID
    and a process ID)".  Runtimes register one handler per message kind.
    """

    no_handler_error = NetworkError

    def __init__(
        self,
        site_id: str,
        network: "Network",
        reply_cache_limit: int = _REPLY_CACHE_LIMIT,
    ) -> None:
        super().__init__(site_id, reply_cache_limit=reply_cache_limit)
        self.network = network

    def send(
        self,
        dst: str,
        kind: MessageKind,
        payload: bytes,
        reply_kind: Optional[MessageKind] = None,
        timeout: Optional[float] = None,
    ) -> bytes:
        """Send a message from this site; see :meth:`Network.send`.

        ``timeout`` is accepted for transport-contract compatibility
        and ignored: simulated delivery is synchronous, so an exchange
        either completes now or fails now.
        """
        return self.network.send(self.site_id, dst, kind, payload, reply_kind)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Site({self.site_id!r})"


class Network(Transport):
    """A deterministic point-to-point network with a shared cost model."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        cost_model: Optional[CostModel] = None,
        stats: Optional[StatsCollector] = None,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
        retransmit_timeout: float = 2e-3,
        reply_cache_limit: int = _REPLY_CACHE_LIMIT,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"bad loss rate {loss_rate!r}")
        super().__init__(clock=clock, cost_model=cost_model, stats=stats)
        self.loss_rate = loss_rate
        self.retransmit_timeout = retransmit_timeout
        self.reply_cache_limit = reply_cache_limit
        self._rng = random.Random(loss_seed)
        self._sites: Dict[str, Site] = {}
        # Deterministic crash injection (the crash-matrix tests): a
        # crashed site neither sends nor receives, and a crash plan
        # kills a site at the Nth frame of a given kind it sends or
        # receives.
        self._crashed: set = set()
        self._crash_plans: Dict[tuple, int] = {}
        self._frame_counts: Dict[tuple, int] = {}

    def add_site(self, site_id: str) -> Site:
        """Create and register a new endpoint."""
        if site_id in self._sites:
            raise NetworkError(f"duplicate site id {site_id!r}")
        site = Site(site_id, self, reply_cache_limit=self.reply_cache_limit)
        self._sites[site_id] = site
        return site

    def site(self, site_id: str) -> Site:
        """Look up an endpoint by id."""
        try:
            return self._sites[site_id]
        except KeyError:
            raise NetworkError(f"unknown site {site_id!r}") from None

    @property
    def site_ids(self) -> list:
        """All registered site ids, in registration order."""
        return list(self._sites)

    # -- deterministic crash injection ------------------------------------

    def crash(self, site_id: str) -> None:
        """Mark a site dead: it neither sends nor receives from now on."""
        if site_id not in self._sites:
            raise NetworkError(f"unknown site {site_id!r}")
        self._crashed.add(site_id)

    def is_crashed(self, site_id: str) -> bool:
        """Whether ``site_id`` has crashed."""
        return site_id in self._crashed

    def plan_crash(
        self, site_id: str, on: str, kind: MessageKind, nth: int
    ) -> None:
        """Kill ``site_id`` at its ``nth`` frame of ``kind``.

        ``on`` is ``"send"`` (the site dies right after transmitting
        the frame — delivered, but the reply is lost with the sender)
        or ``"recv"`` (the site dies before processing the frame).
        Mirrors the TCP transport's ``crash-send=KIND:N`` /
        ``crash-recv=KIND:N`` fault clauses so the crash matrix runs
        identically on both transports.
        """
        if on not in ("send", "recv"):
            raise NetworkError(f"bad crash plan side {on!r}")
        if nth < 1:
            raise NetworkError(f"bad crash plan ordinal {nth!r}")
        self._crash_plans[(site_id, on, kind)] = nth

    def _count_frame(self, site_id: str, on: str, kind: MessageKind) -> bool:
        """Count one frame against the crash plan; True when it fires."""
        planned = self._crash_plans.get((site_id, on, kind))
        if planned is None:
            return False
        key = (site_id, on, kind)
        self._frame_counts[key] = self._frame_counts.get(key, 0) + 1
        return self._frame_counts[key] == planned

    def send(
        self,
        src: str,
        dst: str,
        kind: MessageKind,
        payload: bytes,
        reply_kind: Optional[MessageKind] = None,
    ) -> bytes:
        """Deliver one message and, optionally, account its reply.

        The destination handler runs synchronously and its return value
        is the reply body.  When ``reply_kind`` is given the reply is
        charged to the network as its own message; otherwise the handler
        must return ``b""`` and no reply is charged (one-way message).

        Under a lossy network the exchange retries with timeouts until
        it completes; the handler's effects happen at most once.
        """
        if src not in self._sites:
            raise NetworkError(f"unknown source site {src!r}")
        destination = self.site(dst)
        if src in self._crashed:
            raise TransportError(
                f"{kind} exchange {src!r}->{dst!r} failed: "
                f"source site {src!r} has crashed"
            )
        if dst in self._crashed:
            # The peer is dead: every retransmission times out and the
            # exchange fails, exactly like the TCP transport's
            # exhausted retry schedule.
            self._timeout(src)
            raise TransportError(
                f"{kind} exchange {src!r}->{dst!r} failed: "
                f"destination site {dst!r} has crashed"
            )
        source = self._sites[src]
        if self._count_frame(dst, "recv", kind):
            # The receiver dies before processing this frame — its
            # clock never observes the sender's (no delivery merge).
            message = Message(src=src, dst=dst, kind=kind, payload=payload)
            self._charge(message)
            self.crash(dst)
            raise TransportError(
                f"{kind} exchange {src!r}->{dst!r} failed: "
                f"destination site {dst!r} crashed on receive"
            )
        if self._count_frame(src, "send", kind):
            # The sender dies right after the frame leaves: the
            # receiver processes it, but the reply is lost with the
            # sender (one legal interleaving of a mid-exchange crash).
            message = Message(src=src, dst=dst, kind=kind, payload=payload)
            self._charge(message)
            destination.vclock.merge(source.vclock.snapshot())
            destination.handle(message)
            self.crash(src)
            raise TransportError(
                f"{kind} exchange {src!r}->{dst!r} failed: "
                f"source site {src!r} crashed after send"
            )
        if self.loss_rate == 0.0:
            # Reliable fast path: no exchange ids, no reply caching.
            message = Message(src=src, dst=dst, kind=kind, payload=payload)
            self._charge(message)
            # Piggybacked vector clock: the receiver observes the
            # sender's clock before handling, and the reply carries the
            # receiver's clock back (synchronous delivery is the ack).
            destination.vclock.merge(source.vclock.snapshot())
            response = destination.handle(message)
            if reply_kind is None:
                if response:
                    raise NetworkError(
                        f"one-way {kind} message to {dst!r} produced "
                        "a reply"
                    )
                source.vclock.merge(destination.vclock.snapshot())
                return b""
            reply = Message(
                src=dst, dst=src, kind=reply_kind, payload=response
            )
            self._charge(reply)
            source.vclock.merge(destination.vclock.snapshot())
            return response
        exchange_id = next(_exchange_ids)
        for _ in range(_MAX_ATTEMPTS):
            message = Message(src=src, dst=dst, kind=kind, payload=payload)
            self._charge(message)
            if self._lost():
                self._timeout(src)
                continue
            destination.vclock.merge(source.vclock.snapshot())
            response = destination.handle_at_most_once(
                exchange_id, message
            )
            if reply_kind is None:
                if response:
                    raise NetworkError(
                        f"one-way {kind} message to {dst!r} produced "
                        "a reply"
                    )
                source.vclock.merge(destination.vclock.snapshot())
                return b""
            reply = Message(
                src=dst, dst=src, kind=reply_kind, payload=response
            )
            self._charge(reply)
            if self._lost():
                self._timeout(src)
                continue
            source.vclock.merge(destination.vclock.snapshot())
            return response
        raise TransportError(
            f"{kind} exchange {src!r}->{dst!r} failed after "
            f"{_MAX_ATTEMPTS} attempts"
        )

    def multicast(self, src: str, kind: MessageKind, payload: bytes) -> None:
        """Send a one-way message to every other site.

        Used by the session-end invalidation step ("multicast a message
        to the address spaces concerning the RPC session").
        """
        for site_id in self._sites:
            if site_id != src:
                self.send(src, site_id, kind, payload)

    def _lost(self) -> bool:
        return self.loss_rate > 0.0 and self._rng.random() < self.loss_rate

    def _timeout(self, src: Optional[str] = None) -> None:
        self.clock.advance(self.retransmit_timeout)
        self.note_timeout(site=src)

    def _charge(self, message: Message) -> None:
        self.clock.advance(self.cost_model.message_cost(message.size))
        sender = self._sites.get(message.src)
        stamp = None
        if sender is not None and self.stats.tracing:
            stamp = sender.stamp()
        self.note_message(message, stamp=stamp)
