"""The simulated network and its endpoints.

A :class:`Network` connects :class:`Site` endpoints.  Sending a message
charges simulated time (latency + bandwidth) to the shared clock and
then synchronously invokes the destination site's handler for the
message kind.  Handlers return a reply payload where the protocol calls
for one; the reply is itself charged as a message.

Synchronous delivery is faithful to the paper's model: an RPC session
has exactly one active thread, so the sender is always blocked while
the receiver works.

The network is reliable by default (the paper's evaluation assumes a
quiet Ethernet).  Constructing it with a nonzero ``loss_rate`` makes
delivery lossy and deterministic (seeded): exchanges then run the
classic Birrell-Nelson machinery — timeout, retransmission, and
at-most-once execution via a per-site duplicate cache keyed by
exchange id, so a handler's side effects happen exactly once per
logical send however many retransmissions it takes.
"""

from __future__ import annotations

import itertools
import random
from collections import OrderedDict
from typing import Callable, Dict, Optional

from repro.simnet.clock import CostModel, SimClock
from repro.simnet.message import Message, MessageKind
from repro.simnet.stats import StatsCollector

Handler = Callable[[Message], bytes]

_MAX_ATTEMPTS = 24
_REPLY_CACHE_LIMIT = 4096
_exchange_ids = itertools.count(1)


class NetworkError(Exception):
    """Raised for malformed network usage (unknown site, no handler)."""


class TransportError(NetworkError):
    """An exchange failed even after every retransmission."""


class Site:
    """One endpoint (machine + process) on the simulated network.

    A site is identified by its ``site_id`` string — the paper's
    "address space identifier (typically a pair consisting of a site ID
    and a process ID)".  Runtimes register one handler per message kind.
    """

    def __init__(self, site_id: str, network: "Network") -> None:
        self.site_id = site_id
        self.network = network
        self._handlers: Dict[MessageKind, Handler] = {}
        self._reply_cache: "OrderedDict[int, bytes]" = OrderedDict()

    def register_handler(self, kind: MessageKind, handler: Handler) -> None:
        """Install ``handler`` for incoming messages of ``kind``."""
        self._handlers[kind] = handler

    def handle(self, message: Message) -> bytes:
        """Dispatch an incoming message to its registered handler."""
        handler = self._handlers.get(message.kind)
        if handler is None:
            raise NetworkError(
                f"site {self.site_id!r} has no handler for {message.kind}"
            )
        return handler(message)

    def handle_at_most_once(self, exchange_id: int, message: Message) -> bytes:
        """Dispatch, executing the handler at most once per exchange.

        A retransmitted request (same exchange id) returns the cached
        reply without re-running the handler — the receiver half of
        at-most-once RPC semantics.
        """
        cached = self._reply_cache.get(exchange_id)
        if cached is not None:
            return cached
        reply = self.handle(message)
        self._reply_cache[exchange_id] = reply
        while len(self._reply_cache) > _REPLY_CACHE_LIMIT:
            self._reply_cache.popitem(last=False)
        return reply

    def send(
        self,
        dst: str,
        kind: MessageKind,
        payload: bytes,
        reply_kind: Optional[MessageKind] = None,
    ) -> bytes:
        """Send a message from this site; see :meth:`Network.send`."""
        return self.network.send(self.site_id, dst, kind, payload, reply_kind)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Site({self.site_id!r})"


class Network:
    """A deterministic point-to-point network with a shared cost model."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        cost_model: Optional[CostModel] = None,
        stats: Optional[StatsCollector] = None,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
        retransmit_timeout: float = 2e-3,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"bad loss rate {loss_rate!r}")
        self.clock = clock if clock is not None else SimClock()
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.stats = stats if stats is not None else StatsCollector()
        self.loss_rate = loss_rate
        self.retransmit_timeout = retransmit_timeout
        self._rng = random.Random(loss_seed)
        self._sites: Dict[str, Site] = {}

    def add_site(self, site_id: str) -> Site:
        """Create and register a new endpoint."""
        if site_id in self._sites:
            raise NetworkError(f"duplicate site id {site_id!r}")
        site = Site(site_id, self)
        self._sites[site_id] = site
        return site

    def site(self, site_id: str) -> Site:
        """Look up an endpoint by id."""
        try:
            return self._sites[site_id]
        except KeyError:
            raise NetworkError(f"unknown site {site_id!r}") from None

    @property
    def site_ids(self) -> list:
        """All registered site ids, in registration order."""
        return list(self._sites)

    def send(
        self,
        src: str,
        dst: str,
        kind: MessageKind,
        payload: bytes,
        reply_kind: Optional[MessageKind] = None,
    ) -> bytes:
        """Deliver one message and, optionally, account its reply.

        The destination handler runs synchronously and its return value
        is the reply body.  When ``reply_kind`` is given the reply is
        charged to the network as its own message; otherwise the handler
        must return ``b""`` and no reply is charged (one-way message).

        Under a lossy network the exchange retries with timeouts until
        it completes; the handler's effects happen at most once.
        """
        if src not in self._sites:
            raise NetworkError(f"unknown source site {src!r}")
        destination = self.site(dst)
        if self.loss_rate == 0.0:
            # Reliable fast path: no exchange ids, no reply caching.
            message = Message(src=src, dst=dst, kind=kind, payload=payload)
            self._charge(message)
            response = destination.handle(message)
            if reply_kind is None:
                if response:
                    raise NetworkError(
                        f"one-way {kind} message to {dst!r} produced "
                        "a reply"
                    )
                return b""
            reply = Message(
                src=dst, dst=src, kind=reply_kind, payload=response
            )
            self._charge(reply)
            return response
        exchange_id = next(_exchange_ids)
        for _ in range(_MAX_ATTEMPTS):
            message = Message(src=src, dst=dst, kind=kind, payload=payload)
            self._charge(message)
            if self._lost():
                self._timeout()
                continue
            response = destination.handle_at_most_once(
                exchange_id, message
            )
            if reply_kind is None:
                if response:
                    raise NetworkError(
                        f"one-way {kind} message to {dst!r} produced "
                        "a reply"
                    )
                return b""
            reply = Message(
                src=dst, dst=src, kind=reply_kind, payload=response
            )
            self._charge(reply)
            if self._lost():
                self._timeout()
                continue
            return response
        raise TransportError(
            f"{kind} exchange {src!r}->{dst!r} failed after "
            f"{_MAX_ATTEMPTS} attempts"
        )

    def multicast(self, src: str, kind: MessageKind, payload: bytes) -> None:
        """Send a one-way message to every other site.

        Used by the session-end invalidation step ("multicast a message
        to the address spaces concerning the RPC session").
        """
        for site_id in self._sites:
            if site_id != src:
                self.send(src, site_id, kind, payload)

    def _lost(self) -> bool:
        return self.loss_rate > 0.0 and self._rng.random() < self.loss_rate

    def _timeout(self) -> None:
        self.clock.advance(self.retransmit_timeout)
        self.stats.record_event(
            self.clock.now, "timeout", "retransmitting"
        )

    def _charge(self, message: Message) -> None:
        self.clock.advance(self.cost_model.message_cost(message.size))
        self.stats.record_message(message)
        self.stats.record_event(
            self.clock.now,
            "message",
            f"{message.src}->{message.dst} {message.kind.value} "
            f"{message.size}B",
            data={
                "src": message.src,
                "dst": message.dst,
                "kind": message.kind.value,
                "size": message.size,
            },
        )
