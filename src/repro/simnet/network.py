"""The simulated network and its endpoints.

A :class:`Network` connects :class:`Site` endpoints.  Sending a message
charges simulated time (latency + bandwidth) to the shared clock and
then synchronously invokes the destination site's handler for the
message kind.  Handlers return a reply payload where the protocol calls
for one; the reply is itself charged as a message.

Synchronous delivery is faithful to the paper's model: an RPC session
has exactly one active thread, so the sender is always blocked while
the receiver works.

The network is reliable by default (the paper's evaluation assumes a
quiet Ethernet).  Constructing it with a nonzero ``loss_rate`` makes
delivery lossy and deterministic (seeded): exchanges then run the
classic Birrell-Nelson machinery — timeout, retransmission, and
at-most-once execution via a per-site duplicate cache keyed by
exchange id, so a handler's side effects happen exactly once per
logical send however many retransmissions it takes.

:class:`Network` and :class:`Site` implement the pluggable transport
contract in :mod:`repro.transport.base` (which was extracted from this
module); :class:`repro.transport.tcp.TcpTransport` is the real
inter-process implementation of the same contract.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Optional

from repro.simnet.clock import CostModel, SimClock
from repro.simnet.message import Message, MessageKind
from repro.simnet.stats import StatsCollector
from repro.transport.base import (
    Endpoint,
    Handler,
    Transport,
    TransportError as _BaseTransportError,
)

__all__ = [
    "Handler",
    "Network",
    "NetworkError",
    "Site",
    "TransportError",
]

_MAX_ATTEMPTS = 24
_REPLY_CACHE_LIMIT = 4096
_exchange_ids = itertools.count(1)


class NetworkError(Exception):
    """Raised for malformed network usage (unknown site, no handler)."""


class TransportError(NetworkError, _BaseTransportError):
    """An exchange failed even after every retransmission."""


class Site(Endpoint):
    """One endpoint (machine + process) on the simulated network.

    A site is identified by its ``site_id`` string — the paper's
    "address space identifier (typically a pair consisting of a site ID
    and a process ID)".  Runtimes register one handler per message kind.
    """

    no_handler_error = NetworkError

    def __init__(
        self,
        site_id: str,
        network: "Network",
        reply_cache_limit: int = _REPLY_CACHE_LIMIT,
    ) -> None:
        super().__init__(site_id, reply_cache_limit=reply_cache_limit)
        self.network = network

    def send(
        self,
        dst: str,
        kind: MessageKind,
        payload: bytes,
        reply_kind: Optional[MessageKind] = None,
    ) -> bytes:
        """Send a message from this site; see :meth:`Network.send`."""
        return self.network.send(self.site_id, dst, kind, payload, reply_kind)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Site({self.site_id!r})"


class Network(Transport):
    """A deterministic point-to-point network with a shared cost model."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        cost_model: Optional[CostModel] = None,
        stats: Optional[StatsCollector] = None,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
        retransmit_timeout: float = 2e-3,
        reply_cache_limit: int = _REPLY_CACHE_LIMIT,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"bad loss rate {loss_rate!r}")
        super().__init__(clock=clock, cost_model=cost_model, stats=stats)
        self.loss_rate = loss_rate
        self.retransmit_timeout = retransmit_timeout
        self.reply_cache_limit = reply_cache_limit
        self._rng = random.Random(loss_seed)
        self._sites: Dict[str, Site] = {}

    def add_site(self, site_id: str) -> Site:
        """Create and register a new endpoint."""
        if site_id in self._sites:
            raise NetworkError(f"duplicate site id {site_id!r}")
        site = Site(site_id, self, reply_cache_limit=self.reply_cache_limit)
        self._sites[site_id] = site
        return site

    def site(self, site_id: str) -> Site:
        """Look up an endpoint by id."""
        try:
            return self._sites[site_id]
        except KeyError:
            raise NetworkError(f"unknown site {site_id!r}") from None

    @property
    def site_ids(self) -> list:
        """All registered site ids, in registration order."""
        return list(self._sites)

    def send(
        self,
        src: str,
        dst: str,
        kind: MessageKind,
        payload: bytes,
        reply_kind: Optional[MessageKind] = None,
    ) -> bytes:
        """Deliver one message and, optionally, account its reply.

        The destination handler runs synchronously and its return value
        is the reply body.  When ``reply_kind`` is given the reply is
        charged to the network as its own message; otherwise the handler
        must return ``b""`` and no reply is charged (one-way message).

        Under a lossy network the exchange retries with timeouts until
        it completes; the handler's effects happen at most once.
        """
        if src not in self._sites:
            raise NetworkError(f"unknown source site {src!r}")
        destination = self.site(dst)
        if self.loss_rate == 0.0:
            # Reliable fast path: no exchange ids, no reply caching.
            message = Message(src=src, dst=dst, kind=kind, payload=payload)
            self._charge(message)
            response = destination.handle(message)
            if reply_kind is None:
                if response:
                    raise NetworkError(
                        f"one-way {kind} message to {dst!r} produced "
                        "a reply"
                    )
                return b""
            reply = Message(
                src=dst, dst=src, kind=reply_kind, payload=response
            )
            self._charge(reply)
            return response
        exchange_id = next(_exchange_ids)
        for _ in range(_MAX_ATTEMPTS):
            message = Message(src=src, dst=dst, kind=kind, payload=payload)
            self._charge(message)
            if self._lost():
                self._timeout()
                continue
            response = destination.handle_at_most_once(
                exchange_id, message
            )
            if reply_kind is None:
                if response:
                    raise NetworkError(
                        f"one-way {kind} message to {dst!r} produced "
                        "a reply"
                    )
                return b""
            reply = Message(
                src=dst, dst=src, kind=reply_kind, payload=response
            )
            self._charge(reply)
            if self._lost():
                self._timeout()
                continue
            return response
        raise TransportError(
            f"{kind} exchange {src!r}->{dst!r} failed after "
            f"{_MAX_ATTEMPTS} attempts"
        )

    def multicast(self, src: str, kind: MessageKind, payload: bytes) -> None:
        """Send a one-way message to every other site.

        Used by the session-end invalidation step ("multicast a message
        to the address spaces concerning the RPC session").
        """
        for site_id in self._sites:
            if site_id != src:
                self.send(src, site_id, kind, payload)

    def _lost(self) -> bool:
        return self.loss_rate > 0.0 and self._rng.random() < self.loss_rate

    def _timeout(self) -> None:
        self.clock.advance(self.retransmit_timeout)
        self.note_timeout()

    def _charge(self, message: Message) -> None:
        self.clock.advance(self.cost_model.message_cost(message.size))
        self.note_message(message)
