"""Simulated clock and cost model.

The reproduction reports *simulated seconds*.  The clock is advanced
explicitly by the runtimes according to a :class:`CostModel` whose
constants approximate the paper's testbed: Sun SPARC stations (28.5
MIPS) on a 10 Mbps Ethernet using TCP with ``TCP_NODELAY``.

The calibration used for the figures lives in
:mod:`repro.bench.calibration`; the defaults here are the same values so
that library users get paper-scale numbers out of the box.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Time charges (in seconds) for the simulated testbed.

    Attributes:
        message_latency: fixed cost per network message (propagation,
            interrupt handling, protocol stack traversal).  A small RPC is
            two messages (request + reply).
        byte_wire: transmission time per byte on the wire
            (10 Mbps -> 0.8 microseconds per byte).
        byte_codec: CPU time per byte to XDR-encode *or* decode data,
            including the representation conversion the paper charges for
            heterogeneity.
        page_fault: cost of one access-violation trap plus user-level
            handler dispatch and the mprotect-style remap afterwards.
        local_access: cost of one program-level memory access once data is
            resident (the paper's point is that this equals ordinary local
            access cost).
        visit_compute: per-node computation in the workload body
            (comparisons, bookkeeping) besides its memory accesses.
        malloc_op: CPU cost of one heap allocate/release operation.
    """

    message_latency: float = 50e-6
    byte_wire: float = 0.8e-6
    byte_codec: float = 0.9e-6
    page_fault: float = 40e-6
    local_access: float = 0.35e-6
    visit_compute: float = 1.2e-6
    malloc_op: float = 6e-6

    def message_cost(self, payload_bytes: int) -> float:
        """Wire time for one message carrying ``payload_bytes``."""
        return self.message_latency + payload_bytes * self.byte_wire

    def codec_cost(self, payload_bytes: int) -> float:
        """CPU time to encode or decode ``payload_bytes`` once."""
        return payload_bytes * self.byte_codec


class SimClock:
    """A monotonically advancing simulated clock.

    All runtimes participating in a simulation share one clock, which is
    consistent with the paper's single-active-thread execution model: at
    any instant exactly one thread is running somewhere in the session,
    so global time is just the sum of everything that thread did.
    """

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Advance the clock; ``seconds`` must be non-negative."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds!r} seconds")
        self._now += seconds

    def bill(self, seconds: float, count: int) -> None:
        """Advance by ``seconds``, ``count`` times over.

        Exactly equivalent to calling :meth:`advance` ``count`` times:
        the float accumulation order is preserved, so a bulk access
        run charges byte-identical simulated time to the per-access
        loop it replaces (``count * seconds`` in one add would round
        differently).
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds!r} seconds")
        if count < 0:
            raise ValueError(f"cannot bill {count!r} charges")
        now = self._now
        for _ in range(count):
            now += seconds
        self._now = now

    def reset(self) -> None:
        """Rewind to time zero (used between benchmark repetitions)."""
        self._now = 0.0

    # -- overlap modelling ----------------------------------------------------
    #
    # The simulator runs everything on one Python thread, so work that a
    # real system performs *concurrently* (an asynchronous prefetch
    # exchange overlapping ground-thread execution) is simulated
    # sequentially and then re-timed: mark the instant the overlapped
    # work starts, run it (the clock accrues its full cost), rewind to
    # the mark, and later join at ``max(now, completion instant)``.

    def mark(self) -> float:
        """The current instant, for a later :meth:`rewind`."""
        return self._now

    def rewind(self, instant: float) -> None:
        """Move the clock back to a previously marked instant.

        Used only to model overlapped work: the charges stay accounted
        in the interval that was simulated, but the foreground timeline
        resumes from the mark.
        """
        if instant < 0 or instant > self._now:
            raise ValueError(
                f"cannot rewind clock to {instant!r} (now {self._now!r})"
            )
        self._now = instant

    def join(self, instant: float) -> None:
        """Wait until ``instant``: advance if it is still in the future."""
        if instant > self._now:
            self._now = instant


class Stopwatch:
    """Measures an interval of simulated time against a :class:`SimClock`."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start = clock.now

    def restart(self) -> None:
        """Begin a new interval at the current instant."""
        self._start = self._clock.now

    @property
    def elapsed(self) -> float:
        """Simulated seconds since construction or the last restart."""
        return self._clock.now - self._start
