"""Conventional RPC substrate (Birrell & Nelson style).

This package is the stub-generation RPC system the paper builds on:
interface definitions (:mod:`repro.rpc.interface`), argument
marshalling through the canonical XDR form (:mod:`repro.rpc.marshal`),
a per-address-space runtime with synchronous dispatch, nested calls and
callbacks (:mod:`repro.rpc.runtime`), RPC sessions
(:mod:`repro.rpc.session`), and client/server stub generation — both
runtime proxies and emitted Python source (:mod:`repro.rpc.stubgen`).

Faithful to the paper's Section 1, the *conventional* runtime refuses
pointer arguments: marshalling a :class:`~repro.xdr.types.PointerType`
raises :class:`~repro.rpc.errors.PointerNotSupportedError`.  The smart
runtime (:mod:`repro.smartrpc`) overrides exactly that hook.
"""

from repro.rpc.errors import (
    MarshalError,
    PointerNotSupportedError,
    RpcError,
    RpcRemoteError,
    SessionError,
    UnknownProcedureError,
)
from repro.rpc.interface import InterfaceDef, Param, ProcedureDef
from repro.rpc.runtime import CallContext, RpcRuntime
from repro.rpc.session import RpcSession, SessionState
from repro.rpc.stubgen import ClientStub, bind_server, emit_stub_source

__all__ = [
    "CallContext",
    "ClientStub",
    "InterfaceDef",
    "MarshalError",
    "Param",
    "PointerNotSupportedError",
    "ProcedureDef",
    "RpcError",
    "RpcRemoteError",
    "RpcRuntime",
    "RpcSession",
    "SessionError",
    "SessionState",
    "UnknownProcedureError",
    "bind_server",
    "emit_stub_source",
]
