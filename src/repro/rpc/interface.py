"""Interface definitions (the IDL layer).

An :class:`InterfaceDef` plays the role of an ``rpcgen`` ``.x`` file:
it names the remote procedures, their parameter types and their result
types.  Types are the :mod:`repro.xdr.types` specifiers, so a parameter
can be a scalar, a string, fixed opaque data, a by-value struct — or a
pointer, which only the smart runtime accepts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.rpc.errors import RpcError
from repro.xdr.types import TypeSpec


@dataclass(frozen=True)
class Param:
    """One formal parameter of a remote procedure."""

    name: str
    spec: TypeSpec


class ProcedureDef:
    """One remote procedure signature."""

    def __init__(
        self,
        name: str,
        params: Sequence[Param],
        returns: Optional[TypeSpec] = None,
    ) -> None:
        if not name.isidentifier():
            raise RpcError(f"bad procedure name {name!r}")
        seen = set()
        for param in params:
            if param.name in seen:
                raise RpcError(
                    f"procedure {name!r} has duplicate parameter "
                    f"{param.name!r}"
                )
            seen.add(param.name)
        self.name = name
        self.params: Tuple[Param, ...] = tuple(params)
        self.returns = returns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        args = ", ".join(p.name for p in self.params)
        return f"ProcedureDef({self.name}({args}))"


class InterfaceDef:
    """A named collection of remote procedures."""

    def __init__(
        self, name: str, procedures: Sequence[ProcedureDef]
    ) -> None:
        if not name.isidentifier():
            raise RpcError(f"bad interface name {name!r}")
        self.name = name
        self._procedures: Dict[str, ProcedureDef] = {}
        for procedure in procedures:
            if procedure.name in self._procedures:
                raise RpcError(
                    f"interface {name!r} has duplicate procedure "
                    f"{procedure.name!r}"
                )
            self._procedures[procedure.name] = procedure

    @property
    def procedures(self) -> Tuple[ProcedureDef, ...]:
        """All procedures, in declaration order."""
        return tuple(self._procedures.values())

    def procedure(self, name: str) -> ProcedureDef:
        """Look up one procedure by name."""
        try:
            return self._procedures[name]
        except KeyError:
            raise RpcError(
                f"interface {self.name!r} has no procedure {name!r}"
            ) from None

    def qualified(self, procedure_name: str) -> str:
        """The wire name of a procedure (``interface.procedure``)."""
        return f"{self.name}.{self.procedure(procedure_name).name}"
