"""The per-address-space RPC runtime.

One :class:`RpcRuntime` manages one address space on one site: it
registers procedure implementations, dispatches incoming calls,
marshals arguments through the canonical form (charging codec CPU time
to the simulated clock), and tracks the sessions it participates in.

The runtime is deliberately synchronous: the paper's execution model
has exactly one active thread per session, so a call is a nested
invocation into the destination runtime and nested RPCs / callbacks
compose as ordinary nested calls.

Extension hooks (overridden by
:class:`repro.smartrpc.runtime.SmartRpcRuntime`):

* ``_pointer_out`` / ``_pointer_in`` — pointer (un)marshalling; the
  conventional defaults refuse pointers, reproducing the restriction
  the paper sets out to remove;
* ``_make_piggyback`` / ``_apply_piggyback`` — opaque data attached to
  every activity transfer (call and reply); the coherency protocol's
  modified-data-set and the batched remote memory operations ride here;
* ``_make_session_state`` / ``_teardown_session`` — session lifecycle.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.memory.accessor import Mem
from repro.memory.address_space import AddressSpace
from repro.memory.heap import Heap
from repro.namesvc.client import TypeResolver
from repro.rpc import marshal
from repro.rpc.errors import (
    RpcError,
    RpcRemoteError,
    SessionError,
    UnknownProcedureError,
)
from repro.rpc.interface import InterfaceDef, ProcedureDef
from repro.rpc.session import RpcSession, SessionState
from repro.simnet.message import Message, MessageKind
from repro.transport.base import Endpoint, Transport
from repro.xdr.arch import Architecture
from repro.xdr.raw import RawCodec
from repro.xdr.stream import XdrDecoder, XdrEncoder
from repro.xdr.types import StructType
from repro.xdr.view import StructView

_STATUS_OK = 0
_STATUS_REMOTE_ERROR = 1

Implementation = Callable[..., Any]


class CallContext:
    """What a procedure body receives as its first argument.

    Provides the callee-side session state, typed memory access, and
    the ability to issue nested RPCs — including callbacks to the
    caller, which the execution model explicitly allows.
    """

    def __init__(
        self,
        runtime: "RpcRuntime",
        state: SessionState,
        caller_site: str,
    ) -> None:
        self.runtime = runtime
        self._state = state
        self.caller_site = caller_site

    @property
    def state(self) -> SessionState:
        """The local session state (stub argument protocol)."""
        return self._state

    @property
    def mem(self) -> Mem:
        """Checked access to the local address space."""
        return self.runtime.mem

    def struct_view(self, address: int, spec: StructType) -> StructView:
        """A typed view of a struct at ``address`` in local memory."""
        return StructView(self.runtime.mem, address, spec, self.runtime.arch)

    def call(self, dst: str, qualified: str, args: Sequence[Any]) -> Any:
        """Issue a nested RPC within the same session."""
        return self.runtime.call(self, dst, qualified, args)

    def callback(self, qualified: str, args: Sequence[Any]) -> Any:
        """Remotely call the caller back (paper §3.1)."""
        return self.call(self.caller_site, qualified, args)


class RpcRuntime:
    """RPC runtime for one address space."""

    def __init__(
        self,
        network: Transport,
        site: Endpoint,
        arch: Architecture,
        resolver: Optional[TypeResolver] = None,
        space: Optional[AddressSpace] = None,
    ) -> None:
        self.network = network
        self.site = site
        self.arch = arch
        self.space = (
            space if space is not None else AddressSpace(site.site_id)
        )
        self.resolver = (
            resolver
            if resolver is not None
            else TypeResolver(site, server_site_id=None)
        )
        self.heap = Heap(self.space)
        self.mem = Mem(
            self.space,
            clock=network.clock,
            cost_model=network.cost_model,
            stats=network.stats,
        )
        self.codec = RawCodec(self.space, arch)
        self._procedures: Dict[str, Tuple[ProcedureDef, Implementation]] = {}
        self._imported: Dict[str, ProcedureDef] = {}
        self._sessions: Dict[str, SessionState] = {}
        site.register_handler(MessageKind.CALL, self._handle_call)

    # -- identity ------------------------------------------------------------

    @property
    def site_id(self) -> str:
        """This runtime's address-space identifier."""
        return self.site.site_id

    @property
    def clock(self):
        """The shared simulated clock."""
        return self.network.clock

    @property
    def cost_model(self):
        """The shared cost model."""
        return self.network.cost_model

    @property
    def stats(self):
        """The shared statistics collector."""
        return self.network.stats

    def trace_event(
        self,
        category: str,
        detail: str,
        session: Optional[str] = None,
        **data: Any,
    ) -> None:
        """Record one causally stamped protocol event at this site.

        Every protocol-plane emitter goes through here so each event
        carries the schema's required fields: the ``session`` it
        belongs to plus the endpoint's ``site`` / ``seq`` / ``vc``
        stamp (:meth:`repro.transport.base.Endpoint.stamp`).  A no-op
        when tracing is off, so benchmark runs never tick clocks for
        events nobody records.
        """
        if not self.stats.tracing:
            return
        payload: Dict[str, Any] = dict(data)
        if session is not None:
            payload["session"] = session
        payload.update(self.site.stamp(session))
        self.stats.record_event(
            self.clock.now, category, detail, data=payload
        )

    # -- typed heap convenience -----------------------------------------------

    def malloc(self, type_id: str) -> int:
        """Allocate one value of ``type_id`` on the local typed heap."""
        spec = self.resolver.resolve(type_id)
        self.clock.advance(self.cost_model.malloc_op)
        return self.heap.malloc(spec.sizeof(self.arch), type_id)

    def struct_view(self, address: int, spec: StructType) -> StructView:
        """A typed program-plane view of local memory."""
        return StructView(self.mem, address, spec, self.arch)

    # -- procedure registration -----------------------------------------------

    def register_procedure(
        self,
        interface: InterfaceDef,
        name: str,
        implementation: Implementation,
    ) -> None:
        """Bind ``implementation`` to ``interface.name``."""
        procedure = interface.procedure(name)
        qualified = interface.qualified(name)
        if qualified in self._procedures:
            raise RpcError(f"procedure {qualified!r} already registered")
        self._procedures[qualified] = (procedure, implementation)

    def import_interface(self, interface: InterfaceDef) -> None:
        """Make an interface's signatures known for caller-side marshalling.

        A caller needs the :class:`ProcedureDef` to marshal arguments
        even when it implements nothing — this is the client half of
        what a stub compiler distributes to both sides.
        """
        for procedure in interface.procedures:
            self._imported[interface.qualified(procedure.name)] = procedure

    def procedure_def(self, qualified: str) -> ProcedureDef:
        """The signature registered or imported under ``qualified``."""
        bound = self._procedures.get(qualified)
        if bound is not None:
            return bound[0]
        imported = self._imported.get(qualified)
        if imported is not None:
            return imported
        raise UnknownProcedureError(
            f"site {self.site_id!r} has no procedure {qualified!r}"
        )

    # -- sessions -------------------------------------------------------------

    def func_ref(self, interface: InterfaceDef, name: str):
        """A :class:`~repro.rpc.funcref.FuncRef` to a procedure served
        by *this* runtime (it must be implemented locally)."""
        from repro.rpc.funcref import FuncRef

        qualified = interface.qualified(name)
        self._lookup(qualified)  # verifies a local implementation exists
        return FuncRef(
            self.site_id, qualified, signature=interface.procedure(name)
        )

    def session(self) -> RpcSession:
        """Open a new ground-thread session (context manager)."""
        return RpcSession(self)

    def begin_session(self, session_id: str) -> SessionState:
        """Create ground-side session state."""
        if session_id in self._sessions:
            raise SessionError(f"session {session_id!r} already open here")
        state = self._make_session_state(session_id, self.site_id)
        self._sessions[session_id] = state
        return state

    def end_session(self, state: SessionState) -> None:
        """Close a session this runtime grounds."""
        if state.session_id not in self._sessions:
            if state.closed:
                # Aborted or reaped under us (deadline, dead peer);
                # everything was already rolled back, so the context
                # manager's exit has nothing left to do.
                return
            raise SessionError(
                f"session {state.session_id!r} is not open here"
            )
        if state.ground_site != self.site_id:
            raise SessionError(
                f"session {state.session_id!r} is grounded at "
                f"{state.ground_site!r}, not here"
            )
        self._teardown_session(state)
        state.closed = True
        self._sessions.pop(state.session_id, None)

    def session_state(self, session_id: str) -> SessionState:
        """Look up the local state of an open session."""
        try:
            return self._sessions[session_id]
        except KeyError:
            raise SessionError(
                f"session {session_id!r} is not open at {self.site_id!r}"
            ) from None

    def drop_session(self, session_id: str) -> None:
        """Forget a session's local state (invalidation path)."""
        state = self._sessions.pop(session_id, None)
        if state is not None:
            state.closed = True

    def _ensure_session(
        self, session_id: str, ground_site: str
    ) -> SessionState:
        state = self._sessions.get(session_id)
        if state is None:
            state = self._make_session_state(session_id, ground_site)
            self._sessions[session_id] = state
        return state

    # -- the call path --------------------------------------------------------

    def call(
        self,
        session: Any,
        dst: str,
        qualified: str,
        args: Sequence[Any],
        procedure: Optional[ProcedureDef] = None,
    ) -> Any:
        """Issue one RPC to ``dst`` within ``session``.

        ``session`` is anything exposing ``.state`` — an
        :class:`~repro.rpc.session.RpcSession` on the ground thread or a
        :class:`CallContext` inside a procedure body.
        """
        state = session.state
        if state.closed:
            raise SessionError(
                f"session {state.session_id!r} has ended"
            )
        if procedure is None:
            procedure = self.procedure_def(qualified)
        encoder = XdrEncoder()
        encoder.pack_string(state.session_id)
        encoder.pack_string(state.ground_site)
        encoder.pack_string(qualified)
        # Activity is about to move to dst: attach the coherency /
        # memory-batch piggyback (smart runtime) before the arguments.
        piggyback = self._make_piggyback(state, dst)
        encoder.pack_opaque(piggyback)
        self._record_transfer(
            "call", state, self.site_id, dst, qualified, piggyback
        )
        marshal.pack_args(
            encoder,
            procedure,
            args,
            pointer_out=self._bind_pointer_out(state),
        )
        payload = encoder.getvalue()
        self.clock.advance(self.cost_model.codec_cost(len(payload)))
        reply = self._session_send(
            state, dst, MessageKind.CALL, payload,
            reply_kind=MessageKind.REPLY,
        )
        self.clock.advance(self.cost_model.codec_cost(len(reply)))
        decoder = XdrDecoder(reply)
        status = decoder.unpack_uint32()
        if status == _STATUS_REMOTE_ERROR:
            remote_type = decoder.unpack_string()
            message = decoder.unpack_string()
            decoder.expect_done()
            raise RpcRemoteError(remote_type, message)
        if status != _STATUS_OK:
            raise RpcError(f"bad reply status {status!r}")
        # Activity has moved back to us: apply the piggyback first so
        # any pointers in the result resolve against fresh data.
        reply_piggyback = decoder.unpack_opaque()
        self._record_transfer(
            "return", state, dst, self.site_id, qualified, reply_piggyback
        )
        self._apply_piggyback(state, dst, reply_piggyback)
        result = marshal.unpack_result(
            decoder, procedure, pointer_in=self._bind_pointer_in(state)
        )
        decoder.expect_done()
        return result

    def _handle_call(self, message: Message) -> bytes:
        self.clock.advance(self.cost_model.codec_cost(len(message.payload)))
        decoder = XdrDecoder(message.payload)
        session_id = decoder.unpack_string()
        ground_site = decoder.unpack_string()
        qualified = decoder.unpack_string()
        state = self._ensure_session(session_id, ground_site)
        state.note_participant(message.src)
        encoder = XdrEncoder()
        state.call_depth += 1
        try:
            self._apply_piggyback(
                state, message.src, decoder.unpack_opaque()
            )
            procedure, implementation = self._lookup(qualified)
            args = marshal.unpack_args(
                decoder, procedure, pointer_in=self._bind_pointer_in(state)
            )
            decoder.expect_done()
            context = CallContext(self, state, message.src)
            result = implementation(context, *args)
        except Exception as exc:  # noqa: BLE001 - ship remote errors
            encoder.pack_uint32(_STATUS_REMOTE_ERROR)
            encoder.pack_string(type(exc).__name__)
            encoder.pack_string(str(exc))
        else:
            encoder.pack_uint32(_STATUS_OK)
            # Activity moves back to the caller: dirty data rides along.
            encoder.pack_opaque(self._make_piggyback(state, message.src))
            marshal.pack_result(
                encoder,
                procedure,
                result,
                pointer_out=self._bind_pointer_out(state),
            )
        finally:
            state.call_depth -= 1
        reply = encoder.getvalue()
        self.clock.advance(self.cost_model.codec_cost(len(reply)))
        return reply

    def _lookup(self, qualified: str) -> Tuple[ProcedureDef, Implementation]:
        try:
            return self._procedures[qualified]
        except KeyError:
            raise UnknownProcedureError(
                f"site {self.site_id!r} has no procedure {qualified!r}"
            ) from None

    def _record_transfer(
        self,
        direction: str,
        state: SessionState,
        src: str,
        dst: str,
        qualified: str,
        piggyback: bytes,
    ) -> None:
        """Trace one activity transfer (call or return).

        The recorded piggyback size is what the offline conformance
        checker uses to verify the modified data set travelled; it is
        ``None`` for conventional runtimes, which have no coherency
        protocol to conform to.
        """
        size = len(piggyback) if self._piggyback_expected else None
        self.trace_event(
            "transfer",
            f"{src}->{dst} {direction} {qualified} "
            f"(session {state.session_id}, piggyback "
            f"{size if size is not None else 'n/a'})",
            session=state.session_id,
            ground=state.ground_site,
            dir=direction,
            src=src,
            dst=dst,
            proc=qualified,
            piggyback=size,
        )

    # -- extension hooks ------------------------------------------------------

    # Whether activity transfers must carry the coherency piggyback
    # (the smart runtime overrides this to True).
    _piggyback_expected = False

    def _make_session_state(
        self, session_id: str, ground_site: str
    ) -> SessionState:
        return SessionState(session_id, ground_site)

    def _session_send(
        self,
        state: SessionState,
        dst: str,
        kind: MessageKind,
        payload: bytes,
        reply_kind: Optional[MessageKind] = None,
    ) -> bytes:
        """One session-scoped exchange.

        The smart runtime overrides this with the guarded send that
        enforces session deadlines and per-exchange timeouts and turns
        a dead peer into a typed :class:`SessionAbortedError` instead
        of an unbounded hang.
        """
        return self.site.send(dst, kind, payload, reply_kind=reply_kind)

    def _teardown_session(self, state: SessionState) -> None:
        """Ground-side end-of-session work; conventional RPC has none."""

    def _make_piggyback(self, state: SessionState, dst: str) -> bytes:
        return b""

    def _apply_piggyback(
        self, state: SessionState, src: str, data: bytes
    ) -> None:
        if data:
            raise RpcError(
                "conventional RPC received unexpected piggyback data"
            )

    def _bind_pointer_out(self, state: SessionState) -> marshal.PointerOut:
        return marshal.refuse_pointer_out

    def _bind_pointer_in(self, state: SessionState) -> marshal.PointerIn:
        return marshal.refuse_pointer_in
