"""A textual interface-definition language (the ``rpcgen`` front-end).

The original system's stubs were generated from interface definitions;
this module provides the equivalent front-end: a small C-flavoured IDL
parsed into :mod:`repro.xdr.types` specs and
:class:`~repro.rpc.interface.InterfaceDef` objects.

Grammar (whitespace-insensitive, ``//`` comments)::

    file      := (struct | interface)*
    struct    := "struct" NAME "{" field* "}" ";"
    field     := type NAME ("[" INT "]")? ";"
    type      := scalar | "opaque" "[" INT "]" | NAME "*" | NAME
    scalar    := int8|uint8|int16|uint16|int32|uint32|int64|uint64
               | float32|float64
    interface := "interface" NAME "{" proc* "}" ";"
    proc      := rettype NAME "(" params? ")" ";"
    rettype   := type | "void"
    params    := param ("," param)*
    param     := type NAME

``NAME *`` is a pointer to a named struct; a bare ``NAME`` embeds the
struct by value.  Example::

    struct tree_node {
        tree_node *left;
        tree_node *right;
        opaque data[8];
    };

    interface tree_ops {
        int64 search(tree_node *root, int32 target);
        void ping();
    };
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.rpc.errors import RpcError
from repro.rpc.interface import InterfaceDef, Param, ProcedureDef
from repro.xdr.types import (
    ArrayType,
    EnumType,
    Field,
    OpaqueType,
    PointerType,
    ScalarType,
    StructType,
    TypeSpec,
    float32,
    float64,
    int8,
    int16,
    int32,
    int64,
    uint8,
    uint16,
    uint32,
    uint64,
)

SCALARS: Dict[str, ScalarType] = {
    "int8": int8,
    "uint8": uint8,
    "int16": int16,
    "uint16": uint16,
    "int32": int32,
    "uint32": uint32,
    "int64": int64,
    "uint64": uint64,
    "float32": float32,
    "float64": float64,
}

_TOKEN = re.compile(
    r"\s*(?:(//[^\n]*)|([A-Za-z_][A-Za-z0-9_]*)|(-?\d+)|([{}();,*=\[\]]))"
)


class IdlError(RpcError):
    """A syntax or semantic error in an IDL document."""


@dataclass
class IdlDocument:
    """Everything one IDL file declares."""

    structs: Dict[str, StructType]
    interfaces: Dict[str, InterfaceDef]
    enums: Dict[str, EnumType]

    def struct(self, name: str) -> StructType:
        """Look up one declared struct."""
        try:
            return self.structs[name]
        except KeyError:
            raise IdlError(f"no struct {name!r} declared") from None

    def enum(self, name: str) -> EnumType:
        """Look up one declared enum."""
        try:
            return self.enums[name]
        except KeyError:
            raise IdlError(f"no enum {name!r} declared") from None

    def interface(self, name: str) -> InterfaceDef:
        """Look up one declared interface."""
        try:
            return self.interfaces[name]
        except KeyError:
            raise IdlError(f"no interface {name!r} declared") from None

    def register_types(self, resolver) -> None:
        """Register every declared struct and enum with a resolver."""
        for name, spec in self.structs.items():
            resolver.register(name, spec)
        for name, spec in self.enums.items():
            resolver.register(name, spec)


class _Tokens:
    def __init__(self, text: str) -> None:
        self._items: List[Tuple[str, str]] = []
        position = 0
        while position < len(text):
            match = _TOKEN.match(text, position)
            if match is None:
                if text[position:].strip():
                    raise IdlError(
                        f"unexpected character {text[position]!r} at "
                        f"offset {position}"
                    )
                break
            position = match.end()
            comment, word, number, punct = match.groups()
            if comment is not None:
                continue
            if word is not None:
                self._items.append(("word", word))
            elif number is not None:
                self._items.append(("number", number))
            else:
                self._items.append(("punct", punct))
        self._cursor = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        if self._cursor < len(self._items):
            return self._items[self._cursor]
        return None

    def next(self) -> Tuple[str, str]:
        item = self.peek()
        if item is None:
            raise IdlError("unexpected end of input")
        self._cursor += 1
        return item

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        got_kind, got_value = self.next()
        if got_kind != kind or (value is not None and got_value != value):
            wanted = value if value is not None else kind
            raise IdlError(f"expected {wanted!r}, got {got_value!r}")
        return got_value

    def accept(self, kind: str, value: Optional[str] = None) -> bool:
        item = self.peek()
        if item is None:
            return False
        got_kind, got_value = item
        if got_kind == kind and (value is None or got_value == value):
            self._cursor += 1
            return True
        return False

    def done(self) -> bool:
        return self.peek() is None


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = _Tokens(text)
        self.structs: Dict[str, StructType] = {}
        self.interfaces: Dict[str, InterfaceDef] = {}
        self.enums: Dict[str, EnumType] = {}
        # struct names may be referenced (by pointer) before their
        # definition completes, so declarations are tracked separately.
        self._declared: set = set()

    def parse(self) -> IdlDocument:
        while not self.tokens.done():
            keyword = self.tokens.expect("word")
            if keyword == "struct":
                self._parse_struct()
            elif keyword == "interface":
                self._parse_interface()
            elif keyword == "enum":
                self._parse_enum()
            else:
                raise IdlError(
                    f"expected 'struct', 'enum' or 'interface', "
                    f"got {keyword!r}"
                )
        self._check_references()
        return IdlDocument(
            dict(self.structs), dict(self.interfaces), dict(self.enums)
        )

    # -- declarations ---------------------------------------------------------

    def _parse_struct(self) -> None:
        name = self.tokens.expect("word")
        if name in self._declared:
            raise IdlError(f"duplicate struct {name!r}")
        self._declared.add(name)
        self.tokens.expect("punct", "{")
        fields: List[Field] = []
        while not self.tokens.accept("punct", "}"):
            fields.append(self._parse_field())
        self.tokens.expect("punct", ";")
        if not fields:
            raise IdlError(f"struct {name!r} has no fields")
        self.structs[name] = StructType(name, fields)

    def _parse_field(self) -> Field:
        kind, value = self.tokens.next()
        if (
            kind == "word"
            and value == "opaque"
            and not (self.tokens.peek() == ("punct", "["))
        ):
            # C-style sized opaque: ``opaque name[N];``
            field_name = self.tokens.expect("word")
            self.tokens.expect("punct", "[")
            length = int(self.tokens.expect("number"))
            self.tokens.expect("punct", "]")
            self.tokens.expect("punct", ";")
            return Field(field_name, OpaqueType(length))
        spec = self._parse_type_from(kind, value, context="field")
        field_name = self.tokens.expect("word")
        if self.tokens.accept("punct", "["):
            count = int(self.tokens.expect("number"))
            self.tokens.expect("punct", "]")
            spec = ArrayType(spec, count)
        self.tokens.expect("punct", ";")
        return Field(field_name, spec)

    def _parse_enum(self) -> None:
        name = self.tokens.expect("word")
        if name in self._declared or name in self.enums:
            raise IdlError(f"duplicate type {name!r}")
        self.tokens.expect("punct", "{")
        members: Dict[str, int] = {}
        while True:
            member = self.tokens.expect("word")
            if member in members:
                raise IdlError(
                    f"enum {name!r} repeats member {member!r}"
                )
            self.tokens.expect("punct", "=")
            members[member] = int(self.tokens.expect("number"))
            if self.tokens.accept("punct", "}"):
                break
            self.tokens.expect("punct", ",")
        self.tokens.expect("punct", ";")
        self.enums[name] = EnumType(name, members)

    def _parse_interface(self) -> None:
        name = self.tokens.expect("word")
        if name in self.interfaces:
            raise IdlError(f"duplicate interface {name!r}")
        self.tokens.expect("punct", "{")
        procedures: List[ProcedureDef] = []
        while not self.tokens.accept("punct", "}"):
            procedures.append(self._parse_procedure())
        self.tokens.expect("punct", ";")
        self.interfaces[name] = InterfaceDef(name, procedures)

    def _parse_procedure(self) -> ProcedureDef:
        returns: Optional[TypeSpec]
        kind, value = self.tokens.next()
        if kind == "word" and value == "void":
            returns = None
        else:
            returns = self._parse_type_from(kind, value, context="return")
        proc_name = self.tokens.expect("word")
        self.tokens.expect("punct", "(")
        params: List[Param] = []
        if not self.tokens.accept("punct", ")"):
            while True:
                spec = self._parse_type(context="parameter")
                param_name = self.tokens.expect("word")
                params.append(Param(param_name, spec))
                if self.tokens.accept("punct", ")"):
                    break
                self.tokens.expect("punct", ",")
        self.tokens.expect("punct", ";")
        return ProcedureDef(proc_name, params, returns=returns)

    # -- types ----------------------------------------------------------------

    def _parse_type(self, context: str) -> TypeSpec:
        kind, value = self.tokens.next()
        return self._parse_type_from(kind, value, context)

    def _parse_type_from(
        self, kind: str, value: str, context: str
    ) -> TypeSpec:
        if kind != "word":
            raise IdlError(f"expected a type in {context}, got {value!r}")
        if value == "void":
            raise IdlError(f"'void' is not a valid {context} type")
        if value == "opaque":
            self.tokens.expect("punct", "[")
            length = int(self.tokens.expect("number"))
            self.tokens.expect("punct", "]")
            return OpaqueType(length)
        scalar = SCALARS.get(value)
        if scalar is not None:
            if self.tokens.accept("punct", "*"):
                raise IdlError(
                    f"pointers to scalars are not supported "
                    f"({value} * in {context})"
                )
            return scalar
        if value in self.enums:
            return self.enums[value]
        # A named struct: pointer or by-value embedding.
        if self.tokens.accept("punct", "*"):
            self._reference(value)
            return PointerType(value)
        if value in self.structs:
            return self.structs[value]
        raise IdlError(
            f"unknown type {value!r} in {context} (by-value use "
            "requires the struct to be defined first)"
        )

    _references: set = set()

    def _reference(self, name: str) -> None:
        if not hasattr(self, "_refs"):
            self._refs = set()
        self._refs.add(name)

    def _check_references(self) -> None:
        for name in getattr(self, "_refs", set()):
            if name not in self.structs:
                raise IdlError(
                    f"pointer target {name!r} is never defined"
                )


def parse_idl(text: str) -> IdlDocument:
    """Parse one IDL document."""
    return _Parser(text).parse()


def load_idl(path) -> IdlDocument:
    """Parse an IDL document from a file path."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_idl(handle.read())


def compile_idl(text: str) -> str:
    """Parse an IDL document and emit client-stub source for every
    interface it declares (the classic rpcgen pipeline)."""
    from repro.rpc.stubgen import emit_stub_source

    document = parse_idl(text)
    sources = [
        emit_stub_source(interface)
        for interface in document.interfaces.values()
    ]
    return "\n\n".join(sources)
