"""A textual interface-definition language (the ``rpcgen`` front-end).

The original system's stubs were generated from interface definitions;
this module provides the equivalent front-end: a small C-flavoured IDL
parsed into :mod:`repro.xdr.types` specs and
:class:`~repro.rpc.interface.InterfaceDef` objects.

Grammar (whitespace-insensitive, ``//`` comments)::

    file      := (struct | interface)*
    struct    := "struct" NAME "{" field* "}" ";"
    field     := type NAME ("[" INT "]")? ";"
    type      := scalar | "opaque" "[" INT "]" | NAME "*" | NAME
    scalar    := int8|uint8|int16|uint16|int32|uint32|int64|uint64
               | float32|float64
    interface := "interface" NAME "{" proc* "}" ";"
    proc      := rettype NAME "(" params? ")" ";"
    rettype   := type | "void"
    params    := param ("," param)*
    param     := type NAME

``NAME *`` is a pointer to a named struct; a bare ``NAME`` embeds the
struct by value.  Example::

    struct tree_node {
        tree_node *left;
        tree_node *right;
        opaque data[8];
    };

    interface tree_ops {
        int64 search(tree_node *root, int32 target);
        void ping();
    };
"""

from __future__ import annotations

import bisect
import re
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.rpc.errors import RpcError
from repro.rpc.interface import InterfaceDef, Param, ProcedureDef
from repro.xdr.types import (
    ArrayType,
    EnumType,
    Field,
    OpaqueType,
    PointerType,
    ScalarType,
    StructType,
    TypeSpec,
    float32,
    float64,
    int8,
    int16,
    int32,
    int64,
    uint8,
    uint16,
    uint32,
    uint64,
)

SCALARS: Dict[str, ScalarType] = {
    "int8": int8,
    "uint8": uint8,
    "int16": int16,
    "uint16": uint16,
    "int32": int32,
    "uint32": uint32,
    "int64": int64,
    "uint64": uint64,
    "float32": float32,
    "float64": float64,
}

_TOKEN = re.compile(
    r"\s*(?:(//[^\n]*)|([A-Za-z_][A-Za-z0-9_]*)|(-?\d+)|([{}();,*=\[\]]))"
)


class IdlError(RpcError):
    """A syntax or semantic error in an IDL document."""


class SourcePos(NamedTuple):
    """A 1-based line/column position in an IDL source text."""

    line: int
    col: int

    def __str__(self) -> str:
        return f"line {self.line}, column {self.col}"


@dataclass
class IdlDocument:
    """Everything one IDL file declares.

    ``source_map`` records where each declaration was written, keyed by
    tuples — ``("struct", name)``, ``("field", struct, field)``,
    ``("enum", name)``, ``("interface", name)``,
    ``("proc", interface, proc)`` and
    ``("param", interface, proc, param)`` — so analysis tooling can
    point diagnostics at ``file:line:col``.
    """

    structs: Dict[str, StructType]
    interfaces: Dict[str, InterfaceDef]
    enums: Dict[str, EnumType]
    source_map: Dict[Tuple[str, ...], SourcePos] = field(
        default_factory=dict
    )
    filename: Optional[str] = None

    def position_of(self, *key: str) -> Optional[SourcePos]:
        """Source position of one declaration, if known."""
        return self.source_map.get(tuple(key))

    def struct(self, name: str) -> StructType:
        """Look up one declared struct."""
        try:
            return self.structs[name]
        except KeyError:
            raise IdlError(f"no struct {name!r} declared") from None

    def enum(self, name: str) -> EnumType:
        """Look up one declared enum."""
        try:
            return self.enums[name]
        except KeyError:
            raise IdlError(f"no enum {name!r} declared") from None

    def interface(self, name: str) -> InterfaceDef:
        """Look up one declared interface."""
        try:
            return self.interfaces[name]
        except KeyError:
            raise IdlError(f"no interface {name!r} declared") from None

    def register_types(self, resolver) -> None:
        """Register every declared struct and enum with a resolver."""
        for name, spec in self.structs.items():
            resolver.register(name, spec)
        for name, spec in self.enums.items():
            resolver.register(name, spec)


class _Tokens:
    def __init__(self, text: str) -> None:
        # Offsets where each line starts, for offset -> line/col.
        self._line_starts = [0]
        for index, char in enumerate(text):
            if char == "\n":
                self._line_starts.append(index + 1)
        self._items: List[Tuple[str, str, SourcePos]] = []
        position = 0
        while position < len(text):
            match = _TOKEN.match(text, position)
            if match is None:
                if text[position:].strip():
                    raise IdlError(
                        f"unexpected character {text[position]!r} at "
                        f"{self._locate(position)}"
                    )
                break
            position = match.end()
            comment, word, number, punct = match.groups()
            if comment is not None:
                continue
            pos = self._locate(match.end() - len(match.group().lstrip()))
            if word is not None:
                self._items.append(("word", word, pos))
            elif number is not None:
                self._items.append(("number", number, pos))
            else:
                self._items.append(("punct", punct, pos))
        self._cursor = 0
        # Position of the most recently consumed token.
        self.last_pos = SourcePos(1, 1)

    def _locate(self, offset: int) -> SourcePos:
        line = bisect.bisect_right(self._line_starts, offset)
        col = offset - self._line_starts[line - 1] + 1
        return SourcePos(line, col)

    def peek(self) -> Optional[Tuple[str, str]]:
        if self._cursor < len(self._items):
            kind, value, _ = self._items[self._cursor]
            return (kind, value)
        return None

    def next(self) -> Tuple[str, str]:
        if self._cursor >= len(self._items):
            raise IdlError("unexpected end of input")
        kind, value, pos = self._items[self._cursor]
        self._cursor += 1
        self.last_pos = pos
        return (kind, value)

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        got_kind, got_value = self.next()
        if got_kind != kind or (value is not None and got_value != value):
            wanted = value if value is not None else kind
            raise IdlError(
                f"expected {wanted!r}, got {got_value!r} at "
                f"{self.last_pos}"
            )
        return got_value

    def accept(self, kind: str, value: Optional[str] = None) -> bool:
        item = self.peek()
        if item is None:
            return False
        got_kind, got_value = item
        if got_kind == kind and (value is None or got_value == value):
            self.last_pos = self._items[self._cursor][2]
            self._cursor += 1
            return True
        return False

    def done(self) -> bool:
        return self.peek() is None


class _Parser:
    def __init__(self, text: str, filename: Optional[str] = None) -> None:
        self.tokens = _Tokens(text)
        self.filename = filename
        self.structs: Dict[str, StructType] = {}
        self.interfaces: Dict[str, InterfaceDef] = {}
        self.enums: Dict[str, EnumType] = {}
        self.source_map: Dict[Tuple[str, ...], SourcePos] = {}
        # struct names may be referenced (by pointer) before their
        # definition completes, so declarations are tracked separately.
        self._declared: set = set()

    def parse(self) -> IdlDocument:
        while not self.tokens.done():
            keyword = self.tokens.expect("word")
            if keyword == "struct":
                self._parse_struct()
            elif keyword == "interface":
                self._parse_interface()
            elif keyword == "enum":
                self._parse_enum()
            else:
                raise IdlError(
                    f"expected 'struct', 'enum' or 'interface', "
                    f"got {keyword!r} at {self.tokens.last_pos}"
                )
        self._check_references()
        return IdlDocument(
            dict(self.structs),
            dict(self.interfaces),
            dict(self.enums),
            source_map=dict(self.source_map),
            filename=self.filename,
        )

    def _note(self, pos: SourcePos, *key: str) -> None:
        self.source_map[tuple(key)] = pos

    # -- declarations ---------------------------------------------------------

    def _parse_struct(self) -> None:
        name = self.tokens.expect("word")
        pos = self.tokens.last_pos
        if name in self._declared:
            raise IdlError(f"duplicate struct {name!r} at {pos}")
        self._declared.add(name)
        self._note(pos, "struct", name)
        self.tokens.expect("punct", "{")
        fields: List[Field] = []
        while not self.tokens.accept("punct", "}"):
            fields.append(self._parse_field(name))
        self.tokens.expect("punct", ";")
        if not fields:
            raise IdlError(f"struct {name!r} has no fields ({pos})")
        spec = StructType(name, fields)
        spec.source_pos = pos
        self.structs[name] = spec

    def _parse_field(self, struct_name: str) -> Field:
        kind, value = self.tokens.next()
        if (
            kind == "word"
            and value == "opaque"
            and not (self.tokens.peek() == ("punct", "["))
        ):
            # C-style sized opaque: ``opaque name[N];``
            field_name = self.tokens.expect("word")
            self._note(
                self.tokens.last_pos, "field", struct_name, field_name
            )
            self.tokens.expect("punct", "[")
            length = int(self.tokens.expect("number"))
            self.tokens.expect("punct", "]")
            self.tokens.expect("punct", ";")
            return Field(field_name, OpaqueType(length))
        spec = self._parse_type_from(kind, value, context="field")
        field_name = self.tokens.expect("word")
        self._note(self.tokens.last_pos, "field", struct_name, field_name)
        if self.tokens.accept("punct", "["):
            count = int(self.tokens.expect("number"))
            self.tokens.expect("punct", "]")
            spec = ArrayType(spec, count)
        self.tokens.expect("punct", ";")
        return Field(field_name, spec)

    def _parse_enum(self) -> None:
        name = self.tokens.expect("word")
        pos = self.tokens.last_pos
        if name in self._declared or name in self.enums:
            raise IdlError(f"duplicate type {name!r} at {pos}")
        self._note(pos, "enum", name)
        self.tokens.expect("punct", "{")
        members: Dict[str, int] = {}
        while True:
            member = self.tokens.expect("word")
            if member in members:
                raise IdlError(
                    f"enum {name!r} repeats member {member!r}"
                )
            self.tokens.expect("punct", "=")
            members[member] = int(self.tokens.expect("number"))
            if self.tokens.accept("punct", "}"):
                break
            self.tokens.expect("punct", ",")
        self.tokens.expect("punct", ";")
        spec = EnumType(name, members)
        spec.source_pos = pos
        self.enums[name] = spec

    def _parse_interface(self) -> None:
        name = self.tokens.expect("word")
        pos = self.tokens.last_pos
        if name in self.interfaces:
            raise IdlError(f"duplicate interface {name!r} at {pos}")
        self._note(pos, "interface", name)
        self.tokens.expect("punct", "{")
        procedures: List[ProcedureDef] = []
        while not self.tokens.accept("punct", "}"):
            procedures.append(self._parse_procedure(name))
        self.tokens.expect("punct", ";")
        interface = InterfaceDef(name, procedures)
        interface.source_pos = pos
        self.interfaces[name] = interface

    def _parse_procedure(self, interface_name: str) -> ProcedureDef:
        returns: Optional[TypeSpec]
        kind, value = self.tokens.next()
        if kind == "word" and value == "void":
            returns = None
        else:
            returns = self._parse_type_from(kind, value, context="return")
        proc_name = self.tokens.expect("word")
        pos = self.tokens.last_pos
        self._note(pos, "proc", interface_name, proc_name)
        self.tokens.expect("punct", "(")
        params: List[Param] = []
        if not self.tokens.accept("punct", ")"):
            while True:
                spec = self._parse_type(context="parameter")
                param_name = self.tokens.expect("word")
                self._note(
                    self.tokens.last_pos,
                    "param", interface_name, proc_name, param_name,
                )
                params.append(Param(param_name, spec))
                if self.tokens.accept("punct", ")"):
                    break
                self.tokens.expect("punct", ",")
        self.tokens.expect("punct", ";")
        procedure = ProcedureDef(proc_name, params, returns=returns)
        procedure.source_pos = pos
        return procedure

    # -- types ----------------------------------------------------------------

    def _parse_type(self, context: str) -> TypeSpec:
        kind, value = self.tokens.next()
        return self._parse_type_from(kind, value, context)

    def _parse_type_from(
        self, kind: str, value: str, context: str
    ) -> TypeSpec:
        if kind != "word":
            raise IdlError(
                f"expected a type in {context}, got {value!r} at "
                f"{self.tokens.last_pos}"
            )
        if value == "void":
            raise IdlError(
                f"'void' is not a valid {context} type at "
                f"{self.tokens.last_pos}"
            )
        if value == "opaque":
            self.tokens.expect("punct", "[")
            length = int(self.tokens.expect("number"))
            self.tokens.expect("punct", "]")
            return OpaqueType(length)
        scalar = SCALARS.get(value)
        if scalar is not None:
            if self.tokens.accept("punct", "*"):
                raise IdlError(
                    f"pointers to scalars are not supported "
                    f"({value} * in {context})"
                )
            return scalar
        if value in self.enums:
            return self.enums[value]
        # A named struct: pointer or by-value embedding.
        name_pos = self.tokens.last_pos
        if self.tokens.accept("punct", "*"):
            self._reference(value, name_pos)
            return PointerType(value)
        if value in self.structs:
            return self.structs[value]
        raise IdlError(
            f"unknown type {value!r} in {context} at "
            f"{self.tokens.last_pos} (by-value use requires the "
            "struct to be defined first)"
        )

    def _reference(self, name: str, pos: SourcePos) -> None:
        if not hasattr(self, "_refs"):
            self._refs: Dict[str, SourcePos] = {}
        self._refs.setdefault(name, pos)

    def _check_references(self) -> None:
        for name, pos in getattr(self, "_refs", {}).items():
            if name not in self.structs:
                raise IdlError(
                    f"pointer target {name!r} (referenced at {pos}) "
                    "is never defined"
                )


def parse_idl(text: str, filename: Optional[str] = None) -> IdlDocument:
    """Parse one IDL document.

    ``filename`` is recorded on the document for diagnostics only.
    """
    return _Parser(text, filename=filename).parse()


def load_idl(path) -> IdlDocument:
    """Parse an IDL document from a file path."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_idl(handle.read(), filename=str(path))


def compile_idl(text: str) -> str:
    """Parse an IDL document and emit client-stub source for every
    interface it declares (the classic rpcgen pipeline)."""
    from repro.rpc.stubgen import emit_stub_source

    document = parse_idl(text)
    sources = [
        emit_stub_source(interface)
        for interface in document.interfaces.values()
    ]
    return "\n\n".join(sources)
