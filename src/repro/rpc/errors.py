"""RPC error hierarchy."""


class RpcError(Exception):
    """Base class for RPC failures."""


class MarshalError(RpcError):
    """An argument or result did not match its declared type."""


class PointerNotSupportedError(MarshalError):
    """A pointer argument reached the *conventional* RPC marshaller.

    This is the paper's "crucial restriction: only certain data types
    can be used as the arguments of a remote procedure ... pointers
    cannot be used directly."  The smart runtime replaces the pointer
    hooks and never raises this.
    """


class UnknownProcedureError(RpcError):
    """The callee has no binding for the requested procedure."""


class SessionError(RpcError):
    """Invalid session usage (no session, nested ground sessions, use
    of a remote pointer after its session ended)."""


class RpcRemoteError(RpcError):
    """An exception was raised inside the remote procedure body.

    Carries the remote exception's type name and message; the callee
    never ships stack frames or objects, only this description, as a
    real RPC system would.
    """

    def __init__(self, remote_type: str, message: str) -> None:
        super().__init__(f"remote {remote_type}: {message}")
        self.remote_type = remote_type
        self.remote_message = message
