"""RPC sessions.

A *ground thread* — one whose execution was not initiated by an RPC —
must bracket its remote work in a session.  The session scopes two
guarantees the runtime gives (paper §3.1): it will respond to remote
data references, and it will keep cached data coherent.  Remote
pointers are meaningless outside their session.

:class:`RpcSession` is the user-facing context manager; the per-space
bookkeeping lives in :class:`SessionState`, which the smart runtime
subclasses with its cache, dirty set and memory-operation batch.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Set

from repro.rpc.errors import SessionError

_session_numbers = itertools.count(1)


class SessionState:
    """Per-address-space state of one RPC session."""

    def __init__(self, session_id: str, ground_site: str) -> None:
        self.session_id = session_id
        self.ground_site = ground_site
        self.participants: Set[str] = {ground_site}
        self.call_depth = 0
        self.closed = False

    def note_participant(self, site_id: str) -> None:
        """Record a site that has taken part in the session."""
        self.participants.add(site_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SessionState({self.session_id!r}, ground={self.ground_site!r},"
            f" depth={self.call_depth})"
        )


class RpcSession:
    """Context manager declaring an RPC session on the ground runtime.

    Usage::

        with runtime.session() as session:
            result = stub.search(session, root_pointer, ratio)
        # leaving the block writes back modified data and multicasts
        # the invalidation (smart runtime); remote pointers die here.
    """

    def __init__(self, runtime: "RpcRuntimeLike") -> None:
        self._runtime = runtime
        self.session_id = (
            f"{runtime.site_id}#{next(_session_numbers)}"
        )
        self._state: Optional[SessionState] = None

    @property
    def state(self) -> SessionState:
        """The ground-side session state (only valid while open)."""
        if self._state is None:
            raise SessionError(
                f"session {self.session_id!r} is not open"
            )
        return self._state

    def __enter__(self) -> "RpcSession":
        self._state = self._runtime.begin_session(self.session_id)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        state, self._state = self._state, None
        if state is not None:
            self._runtime.end_session(state)


class RpcRuntimeLike:
    """Protocol of what :class:`RpcSession` needs from a runtime."""

    site_id: str

    def begin_session(self, session_id: str) -> SessionState:
        """Create ground-side state for a new session."""
        raise NotImplementedError

    def end_session(self, state: SessionState) -> None:
        """Tear a session down (write-back + invalidate in smart RPC)."""
        raise NotImplementedError


def active_sessions(states: List[SessionState]) -> List[str]:
    """Ids of sessions not yet closed (debugging helper)."""
    return [s.session_id for s in states if not s.closed]
