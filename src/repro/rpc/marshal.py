"""Argument and result marshalling.

RPC arguments are *Python values* on the caller (ints, floats, bytes,
dicts for by-value structs, lists for arrays) packed into the XDR
canonical form per their declared :class:`~repro.xdr.types.TypeSpec`.

Pointer parameters are delegated to hooks exactly as in
:mod:`repro.xdr.raw`: the conventional runtime installs hooks that
raise :class:`~repro.rpc.errors.PointerNotSupportedError`; the smart
runtime installs unswizzle/swizzle.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.rpc.errors import MarshalError, PointerNotSupportedError
from repro.rpc.funcref import (
    FuncRefType,
    pack_func_ref,
    unpack_func_ref,
)
from repro.rpc.interface import ProcedureDef
from repro.xdr.errors import XdrError
from repro.xdr.stream import XdrDecoder, XdrEncoder
from repro.xdr.types import (
    ArrayType,
    EnumType,
    OpaqueType,
    PointerType,
    ScalarKind,
    ScalarType,
    StructType,
    TypeSpec,
    UnionType,
)

PointerOut = Callable[[XdrEncoder, int, str], None]
PointerIn = Callable[[XdrDecoder, str], int]


def refuse_pointer_out(
    encoder: XdrEncoder, pointer: int, target_type_id: str
) -> None:
    """Pointer hook of the conventional runtime: always refuses."""
    raise PointerNotSupportedError(
        f"conventional RPC cannot marshal a pointer "
        f"(to {target_type_id!r}); use the smart runtime"
    )


def refuse_pointer_in(decoder: XdrDecoder, target_type_id: str) -> int:
    """Pointer hook of the conventional runtime: always refuses."""
    raise PointerNotSupportedError(
        f"conventional RPC cannot unmarshal a pointer "
        f"(to {target_type_id!r}); use the smart runtime"
    )


def pack_value(
    encoder: XdrEncoder,
    spec: TypeSpec,
    value: Any,
    pointer_out: PointerOut = refuse_pointer_out,
) -> None:
    """Append one typed value to the stream."""
    try:
        _pack(encoder, spec, value, pointer_out)
    except XdrError as exc:
        raise MarshalError(str(exc)) from exc


def unpack_value(
    decoder: XdrDecoder,
    spec: TypeSpec,
    pointer_in: PointerIn = refuse_pointer_in,
) -> Any:
    """Read one typed value from the stream."""
    try:
        return _unpack(decoder, spec, pointer_in)
    except XdrError as exc:
        raise MarshalError(str(exc)) from exc


def pack_args(
    encoder: XdrEncoder,
    procedure: ProcedureDef,
    args: Sequence[Any],
    pointer_out: PointerOut = refuse_pointer_out,
) -> None:
    """Marshal a full argument vector against a signature."""
    if len(args) != len(procedure.params):
        raise MarshalError(
            f"{procedure.name} takes {len(procedure.params)} arguments, "
            f"got {len(args)}"
        )
    for param, value in zip(procedure.params, args):
        pack_value(encoder, param.spec, value, pointer_out)


def unpack_args(
    decoder: XdrDecoder,
    procedure: ProcedureDef,
    pointer_in: PointerIn = refuse_pointer_in,
) -> list:
    """Unmarshal a full argument vector."""
    return [
        unpack_value(decoder, param.spec, pointer_in)
        for param in procedure.params
    ]


def pack_result(
    encoder: XdrEncoder,
    procedure: ProcedureDef,
    value: Any,
    pointer_out: PointerOut = refuse_pointer_out,
) -> None:
    """Marshal a procedure result (void results must be ``None``)."""
    if procedure.returns is None:
        if value is not None:
            raise MarshalError(
                f"{procedure.name} is void but returned {value!r}"
            )
        return
    pack_value(encoder, procedure.returns, value, pointer_out)


def unpack_result(
    decoder: XdrDecoder,
    procedure: ProcedureDef,
    pointer_in: PointerIn = refuse_pointer_in,
) -> Any:
    """Unmarshal a procedure result."""
    if procedure.returns is None:
        return None
    return unpack_value(decoder, procedure.returns, pointer_in)


# -- internals ---------------------------------------------------------------


def _pack(
    encoder: XdrEncoder, spec: TypeSpec, value: Any, pointer_out: PointerOut
) -> None:
    if isinstance(spec, FuncRefType):
        pack_func_ref(encoder, spec, value)
    elif isinstance(spec, ScalarType):
        _pack_scalar(encoder, spec.kind, value)
    elif isinstance(spec, OpaqueType):
        if not isinstance(value, (bytes, bytearray)):
            raise MarshalError(f"opaque parameter given {value!r}")
        if len(value) != spec.length:
            raise MarshalError(
                f"opaque parameter needs {spec.length} bytes, "
                f"got {len(value)}"
            )
        encoder.pack_fixed_opaque(bytes(value))
    elif isinstance(spec, PointerType):
        if not isinstance(value, int) or value < 0:
            raise MarshalError(f"pointer parameter given {value!r}")
        pointer_out(encoder, value, spec.target_type_id)
    elif isinstance(spec, ArrayType):
        if not isinstance(value, (list, tuple)) or len(value) != spec.count:
            raise MarshalError(
                f"array parameter needs {spec.count} elements, got {value!r}"
            )
        for element in value:
            _pack(encoder, spec.element, element, pointer_out)
    elif isinstance(spec, StructType):
        if not isinstance(value, dict):
            raise MarshalError(f"struct parameter given {value!r}")
        extra = set(value) - {field.name for field in spec.fields}
        if extra:
            raise MarshalError(
                f"struct {spec.name!r} given unknown fields {sorted(extra)}"
            )
        for field in spec.fields:
            if field.name not in value:
                raise MarshalError(
                    f"struct {spec.name!r} missing field {field.name!r}"
                )
            _pack(encoder, field.spec, value[field.name], pointer_out)
    elif isinstance(spec, EnumType):
        encoder.pack_int32(_enum_value(spec, value))
    elif isinstance(spec, UnionType):
        if (
            not isinstance(value, dict)
            or set(value) != {"arm", "value"}
        ):
            raise MarshalError(
                f"union parameter needs {{'arm', 'value'}}, got {value!r}"
            )
        discriminant = _enum_value(spec.discriminant, value["arm"])
        encoder.pack_int32(discriminant)
        _pack(
            encoder,
            spec.arm_for(discriminant),
            value["value"],
            pointer_out,
        )
    else:
        raise MarshalError(f"unsupported parameter spec {spec!r}")


def _enum_value(spec: EnumType, value: Any) -> int:
    """Resolve a member name or raw integer against an enum."""
    if isinstance(value, str):
        return spec.value_of(value)
    if isinstance(value, int) and not isinstance(value, bool):
        if not spec.is_valid(value):
            raise MarshalError(
                f"{value!r} is not a member of enum {spec.name!r}"
            )
        return value
    raise MarshalError(f"enum parameter given {value!r}")


def _unpack(
    decoder: XdrDecoder, spec: TypeSpec, pointer_in: PointerIn
) -> Any:
    if isinstance(spec, FuncRefType):
        return unpack_func_ref(decoder, spec)
    if isinstance(spec, ScalarType):
        return _unpack_scalar(decoder, spec.kind)
    if isinstance(spec, OpaqueType):
        return decoder.unpack_fixed_opaque(spec.length)
    if isinstance(spec, PointerType):
        return pointer_in(decoder, spec.target_type_id)
    if isinstance(spec, ArrayType):
        return [
            _unpack(decoder, spec.element, pointer_in)
            for _ in range(spec.count)
        ]
    if isinstance(spec, StructType):
        return {
            field.name: _unpack(decoder, field.spec, pointer_in)
            for field in spec.fields
        }
    if isinstance(spec, EnumType):
        value = decoder.unpack_int32()
        return spec.name_of(value)
    if isinstance(spec, UnionType):
        discriminant = decoder.unpack_int32()
        arm = spec.arm_for(discriminant)
        return {
            "arm": spec.discriminant.name_of(discriminant),
            "value": _unpack(decoder, arm, pointer_in),
        }
    raise MarshalError(f"unsupported parameter spec {spec!r}")


def _pack_scalar(encoder: XdrEncoder, kind: ScalarKind, value: Any) -> None:
    if kind.is_float:
        if not isinstance(value, (int, float)):
            raise MarshalError(f"float parameter given {value!r}")
        if kind is ScalarKind.FLOAT32:
            encoder.pack_float(float(value))
        else:
            encoder.pack_double(float(value))
        return
    if not isinstance(value, int) or isinstance(value, bool):
        raise MarshalError(f"integer parameter given {value!r}")
    if kind is ScalarKind.INT64:
        encoder.pack_int64(value)
    elif kind is ScalarKind.UINT64:
        encoder.pack_uint64(value)
    elif kind in (ScalarKind.INT8, ScalarKind.INT16, ScalarKind.INT32):
        encoder.pack_int32(value)
    else:
        encoder.pack_uint32(value)


def _unpack_scalar(decoder: XdrDecoder, kind: ScalarKind) -> Any:
    if kind is ScalarKind.FLOAT32:
        return decoder.unpack_float()
    if kind is ScalarKind.FLOAT64:
        return decoder.unpack_double()
    if kind is ScalarKind.INT64:
        return decoder.unpack_int64()
    if kind is ScalarKind.UINT64:
        return decoder.unpack_uint64()
    if kind in (ScalarKind.INT8, ScalarKind.INT16, ScalarKind.INT32):
        return decoder.unpack_int32()
    return decoder.unpack_uint32()
