"""Remote function references (the paper's §6 missing feature).

The paper: "the method does not support a remote pointer to a
function.  ...  Ohori and Kato recently developed a systematic stub
generation method that provides for the programmers the illusion that
any polymorphic higher-order functions can be passed among
heterogeneous address spaces.  Fortunately, their method and the
method proposed in this paper do not conflict."

This module supplies that composition.  A function is not data in a
heap — it cannot be cached or faulted in — so a *function reference*
is a call-level value: ``(address space id, qualified procedure name)``
plus the statically known signature.  Passing one is passing the
capability to call it; invoking one issues an RPC to its home space
(a callback when the home is the caller), inside the same session, so
any pointer arguments the function takes still enjoy the smart-RPC
treatment.

Usage::

    MAPPER = ProcedureDef("double", [Param("x", int32)], returns=int32)

    iface = InterfaceDef("apply", [
        ProcedureDef("map_list", [
            Param("head", PointerType("cell")),
            Param("f", FuncRefType(MAPPER)),
        ], returns=int32),
    ])

    # caller side
    stub.map_list(session, head, caller.func_ref("local_funcs", "double"))

    # callee side
    def map_list(ctx, head, f):
        ...
        view.set("value", invoke(ctx, f, (view.get("value"),)))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Sequence, Tuple

from repro.rpc.errors import MarshalError
from repro.rpc.interface import ProcedureDef
from repro.xdr.arch import Architecture
from repro.xdr.errors import XdrError
from repro.xdr.stream import XdrDecoder, XdrEncoder
from repro.xdr.types import PointerType, TypeSpec


@dataclass(frozen=True)
class FuncRef:
    """A reference to a procedure living in some address space.

    The signature rides along after unmarshalling so the holder can
    invoke it without having imported the interface it came from.
    """

    space_id: str
    qualified: str
    signature: Optional[ProcedureDef] = field(
        default=None, compare=False, hash=False
    )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FuncRef({self.space_id}:{self.qualified})"


class FuncRefType(TypeSpec):
    """The parameter/result type of a function reference.

    Function references are call-level values, not heap data: they
    have no memory layout, cannot appear inside structs, and are never
    cached — which is exactly why the paper's data-caching method and
    the higher-order method compose without conflict.
    """

    def __init__(self, signature: ProcedureDef) -> None:
        self.signature = signature

    def sizeof(self, arch: Architecture) -> int:
        raise XdrError(
            "function references are call-level values and have no "
            "memory layout"
        )

    def alignment(self, arch: Architecture) -> int:
        raise XdrError(
            "function references are call-level values and have no "
            "memory layout"
        )

    def canonical_size(self) -> int:
        return 8  # two length-prefixed strings, lower bound

    def pointer_fields(
        self, arch: Architecture
    ) -> Iterator[Tuple[int, PointerType]]:
        return iter(())

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FuncRefType)
            and self.signature.name == other.signature.name
        )

    def __hash__(self) -> int:
        return hash(("funcref", self.signature.name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FuncRefType({self.signature.name})"


def pack_func_ref(
    encoder: XdrEncoder, spec: FuncRefType, value: Any
) -> None:
    """Marshal one function reference."""
    if not isinstance(value, FuncRef):
        raise MarshalError(
            f"function-reference parameter given {value!r}"
        )
    encoder.pack_string(value.space_id)
    encoder.pack_string(value.qualified)


def unpack_func_ref(decoder: XdrDecoder, spec: FuncRefType) -> FuncRef:
    """Unmarshal one function reference, attaching its signature."""
    space_id = decoder.unpack_string()
    qualified = decoder.unpack_string()
    return FuncRef(space_id, qualified, signature=spec.signature)


def invoke(session: Any, ref: FuncRef, args: Sequence[Any]) -> Any:
    """Call a function reference within ``session``.

    ``session`` is anything exposing ``.state`` and a ``runtime`` (a
    :class:`~repro.rpc.runtime.CallContext`) — invoking from a
    procedure body is the common case; invoking a reference to one of
    the *local* runtime's procedures short-circuits into a direct call
    only at the network layer (it is still a message to self-site?
    no — the runtime's own site is the destination, so the simulated
    network is not involved when home == self).
    """
    runtime = session.runtime
    signature = ref.signature
    if signature is None:
        signature = runtime.procedure_def(ref.qualified)
    if ref.space_id == runtime.site_id:
        # The function lives here: an ordinary local call through the
        # registered implementation, no network.
        procedure, implementation = runtime._lookup(ref.qualified)
        return implementation(session, *args)
    return runtime.call(
        session, ref.space_id, ref.qualified, args, procedure=signature
    )
