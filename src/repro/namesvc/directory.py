"""The site directory: where address spaces find each other.

The paper's runtime assumes every address space can reach every other
by its identifier.  Under the in-process simulator that is trivial —
the :class:`~repro.simnet.network.Network` holds all sites in one
dict.  Across OS processes it is not: a process hosting one address
space must learn where its peers listen.  The :class:`SiteDirectory`
is the name-service half of that step — processes register their
``(host, port)`` on startup, refresh a heartbeat while alive, and
deregister on graceful shutdown; any peer can then resolve a site id
to an address (and see how stale its liveness information is).

Like the :class:`~repro.namesvc.server.TypeNameServer`, the directory
is transport-agnostic: it is just handlers on an endpoint, so it runs
over the simulator in tests and over TCP in real deployments.  The
encode/decode helpers are module-level so the TCP transport can issue
lookups from inside its own event loop without a blocking client.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.simnet.message import Message, MessageKind
from repro.transport.base import Endpoint, TransportError
from repro.xdr.stream import XdrDecoder, XdrEncoder

_STATUS_OK = 0
_STATUS_UNKNOWN = 1


class DirectoryError(TransportError):
    """A directory operation failed (unknown site, bad reply)."""


@dataclass
class SiteRecord:
    """One registered address space."""

    site_id: str
    host: str
    port: int
    registered_at: float
    last_seen: float


class SiteDirectory:
    """Serves site registration, lookup and heartbeat liveness.

    ``now`` is the time source for liveness ages; it defaults to wall
    time, which is what real deployments want — pass a simulated clock
    reader in tests for determinism.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        now: Optional[Callable[[], float]] = None,
    ) -> None:
        self.endpoint = endpoint
        self.now = now if now is not None else time.time
        self.records: Dict[str, SiteRecord] = {}
        endpoint.register_handler(
            MessageKind.SITE_REGISTER, self._handle_register
        )
        endpoint.register_handler(
            MessageKind.SITE_DEREGISTER, self._handle_deregister
        )
        endpoint.register_handler(
            MessageKind.SITE_LOOKUP, self._handle_lookup
        )
        endpoint.register_handler(
            MessageKind.SITE_HEARTBEAT, self._handle_heartbeat
        )
        endpoint.register_handler(MessageKind.SITE_LIST, self._handle_list)

    # -- handlers -------------------------------------------------------------

    def _handle_register(self, message: Message) -> bytes:
        decoder = XdrDecoder(message.payload)
        site_id = decoder.unpack_string()
        host = decoder.unpack_string()
        port = decoder.unpack_uint32()
        decoder.expect_done()
        moment = self.now()
        self.records[site_id] = SiteRecord(
            site_id=site_id,
            host=host,
            port=port,
            registered_at=moment,
            last_seen=moment,
        )
        encoder = XdrEncoder()
        encoder.pack_uint32(_STATUS_OK)
        return encoder.getvalue()

    def _handle_deregister(self, message: Message) -> bytes:
        decoder = XdrDecoder(message.payload)
        site_id = decoder.unpack_string()
        decoder.expect_done()
        known = self.records.pop(site_id, None)
        encoder = XdrEncoder()
        encoder.pack_uint32(
            _STATUS_OK if known is not None else _STATUS_UNKNOWN
        )
        return encoder.getvalue()

    def _handle_lookup(self, message: Message) -> bytes:
        decoder = XdrDecoder(message.payload)
        site_id = decoder.unpack_string()
        decoder.expect_done()
        record = self.records.get(site_id)
        encoder = XdrEncoder()
        if record is None:
            encoder.pack_uint32(_STATUS_UNKNOWN)
        else:
            encoder.pack_uint32(_STATUS_OK)
            encoder.pack_string(record.host)
            encoder.pack_uint32(record.port)
            encoder.pack_double(max(0.0, self.now() - record.last_seen))
        return encoder.getvalue()

    def _handle_heartbeat(self, message: Message) -> bytes:
        decoder = XdrDecoder(message.payload)
        site_id = decoder.unpack_string()
        decoder.expect_done()
        record = self.records.get(site_id)
        encoder = XdrEncoder()
        if record is None:
            encoder.pack_uint32(_STATUS_UNKNOWN)
        else:
            record.last_seen = self.now()
            encoder.pack_uint32(_STATUS_OK)
        return encoder.getvalue()

    def _handle_list(self, message: Message) -> bytes:
        decoder = XdrDecoder(message.payload)
        decoder.expect_done()
        moment = self.now()
        encoder = XdrEncoder()
        encoder.pack_uint32(_STATUS_OK)
        encoder.pack_uint32(len(self.records))
        for record in sorted(self.records.values(), key=lambda r: r.site_id):
            encoder.pack_string(record.site_id)
            encoder.pack_string(record.host)
            encoder.pack_uint32(record.port)
            encoder.pack_double(max(0.0, moment - record.last_seen))
        return encoder.getvalue()


# -- wire helpers (shared with the TCP transport's in-loop lookups) ----------


def encode_lookup(site_id: str) -> bytes:
    """Payload of one SITE_LOOKUP request."""
    encoder = XdrEncoder()
    encoder.pack_string(site_id)
    return encoder.getvalue()


def decode_lookup_reply(
    payload: bytes, site_id: str
) -> Tuple[str, int, float]:
    """Parse a SITE_LOOKUP reply into ``(host, port, liveness age)``."""
    decoder = XdrDecoder(payload)
    status = decoder.unpack_uint32()
    if status == _STATUS_UNKNOWN:
        raise DirectoryError(
            f"directory does not know site {site_id!r}"
        )
    if status != _STATUS_OK:
        raise DirectoryError(f"bad directory status {status!r}")
    host = decoder.unpack_string()
    port = decoder.unpack_uint32()
    age = decoder.unpack_double()
    decoder.expect_done()
    return host, port, age


class DirectoryClient:
    """Blocking client for the directory, used by process hosts."""

    def __init__(self, endpoint: Endpoint, directory_site: str) -> None:
        self.endpoint = endpoint
        self.directory_site = directory_site

    def _exchange(self, kind: MessageKind, payload: bytes) -> XdrDecoder:
        reply = self.endpoint.send(
            self.directory_site, kind, payload,
            reply_kind=MessageKind.DIR_REPLY,
        )
        return XdrDecoder(reply)

    def register(self, host: str, port: int) -> None:
        """Publish this endpoint's listening address."""
        encoder = XdrEncoder()
        encoder.pack_string(self.endpoint.site_id)
        encoder.pack_string(host)
        encoder.pack_uint32(port)
        decoder = self._exchange(
            MessageKind.SITE_REGISTER, encoder.getvalue()
        )
        status = decoder.unpack_uint32()
        decoder.expect_done()
        if status != _STATUS_OK:
            raise DirectoryError(f"registration refused ({status})")

    def deregister(self) -> bool:
        """Withdraw this endpoint's registration; False if unknown."""
        encoder = XdrEncoder()
        encoder.pack_string(self.endpoint.site_id)
        decoder = self._exchange(
            MessageKind.SITE_DEREGISTER, encoder.getvalue()
        )
        status = decoder.unpack_uint32()
        decoder.expect_done()
        return status == _STATUS_OK

    def heartbeat(self) -> bool:
        """Refresh liveness; False when the directory forgot this site."""
        encoder = XdrEncoder()
        encoder.pack_string(self.endpoint.site_id)
        decoder = self._exchange(
            MessageKind.SITE_HEARTBEAT, encoder.getvalue()
        )
        status = decoder.unpack_uint32()
        decoder.expect_done()
        return status == _STATUS_OK

    def lookup(self, site_id: str) -> Tuple[str, int, float]:
        """Resolve ``site_id`` to ``(host, port, liveness age)``."""
        reply = self.endpoint.send(
            self.directory_site,
            MessageKind.SITE_LOOKUP,
            encode_lookup(site_id),
            reply_kind=MessageKind.DIR_REPLY,
        )
        return decode_lookup_reply(reply, site_id)

    def liveness_ages(self) -> Dict[str, float]:
        """Heartbeat ages for every registered site — the reaper feed.

        A site absent from the map has deregistered, crashed before
        ever registering, or been expired; the orphan reaper
        (:meth:`SmartRpcRuntime.reap_orphans`) treats missing exactly
        like over-age.
        """
        return {
            site_id: age
            for site_id, (_host, _port, age) in self.list().items()
        }

    def list(self) -> Dict[str, Tuple[str, int, float]]:
        """All registered sites as ``site_id -> (host, port, age)``."""
        decoder = self._exchange(MessageKind.SITE_LIST, b"")
        status = decoder.unpack_uint32()
        if status != _STATUS_OK:
            raise DirectoryError(f"bad directory status {status!r}")
        count = decoder.unpack_uint32()
        sites: Dict[str, Tuple[str, int, float]] = {}
        for _ in range(count):
            site_id = decoder.unpack_string()
            host = decoder.unpack_string()
            port = decoder.unpack_uint32()
            age = decoder.unpack_double()
            sites[site_id] = (host, port, age)
        decoder.expect_done()
        return sites
