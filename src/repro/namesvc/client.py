"""Per-site type resolution with caching."""

from __future__ import annotations

from typing import Optional

from repro.namesvc.server import decode_query_reply
from repro.simnet.message import MessageKind
from repro.transport.base import Endpoint
from repro.xdr.registry import TypeRegistry
from repro.xdr.stream import XdrEncoder
from repro.xdr.types import TypeSpec


class TypeResolver:
    """Resolves type ids, consulting the name server at most once each.

    Every site keeps a local :class:`TypeRegistry` acting as the cache;
    locally registered types never touch the network, and fetched
    definitions are cached for the life of the process — a type
    definition is immutable once published, so the cache never needs
    invalidation.
    """

    def __init__(
        self,
        site: Endpoint,
        server_site_id: Optional[str],
        local: Optional[TypeRegistry] = None,
    ) -> None:
        self.site = site
        self.server_site_id = server_site_id
        self.local = local if local is not None else TypeRegistry()
        self.queries_sent = 0

    def register(self, type_id: str, spec: TypeSpec) -> None:
        """Register a type locally (no network traffic)."""
        self.local.register(type_id, spec)

    def resolve(self, type_id: str) -> TypeSpec:
        """Return the spec for ``type_id``, querying the server on a miss."""
        if self.local.knows(type_id):
            return self.local.resolve(type_id)
        if self.server_site_id is None:
            # No server configured: behave as a plain local registry.
            return self.local.resolve(type_id)
        encoder = XdrEncoder()
        encoder.pack_string(type_id)
        reply = self.site.send(
            self.server_site_id,
            MessageKind.TYPE_QUERY,
            encoder.getvalue(),
            reply_kind=MessageKind.TYPE_REPLY,
        )
        self.queries_sent += 1
        spec = decode_query_reply(reply, type_id)
        self.local.register(type_id, spec)
        return spec

    def knows(self, type_id: str) -> bool:
        """Whether the id resolves without a (new) network query."""
        return self.local.knows(type_id)
