"""The network name server for data-type specifiers.

The paper assumes "the system can obtain an actual data structure from
a data type specifier by querying a database that serves as a network
name server."  :class:`~repro.namesvc.server.TypeNameServer` is that
database, hosted on a site of the simulated network;
:class:`~repro.namesvc.client.TypeResolver` is the per-site client with
a local cache, so each specifier costs at most one query per site.
"""

from repro.namesvc.client import TypeResolver
from repro.namesvc.server import TypeNameServer

__all__ = ["TypeNameServer", "TypeResolver"]
