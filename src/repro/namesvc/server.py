"""The type name server."""

from __future__ import annotations

from repro.simnet.message import Message, MessageKind
from repro.transport.base import Endpoint
from repro.xdr.errors import XdrError
from repro.xdr.registry import TypeRegistry, encode_spec
from repro.xdr.stream import XdrDecoder, XdrEncoder
from repro.xdr.types import TypeSpec

_STATUS_OK = 0
_STATUS_UNKNOWN = 1


class TypeNameServer:
    """Serves type definitions over the network.

    The server owns the authoritative :class:`TypeRegistry`; programs
    publish their types here (the role the original system gave its
    name-server database) and any site can resolve a specifier it has
    never seen.
    """

    def __init__(self, site: Endpoint, registry: TypeRegistry) -> None:
        self.site = site
        self.registry = registry
        site.register_handler(MessageKind.TYPE_QUERY, self._handle_query)

    def publish(self, type_id: str, spec: TypeSpec) -> None:
        """Register a type definition with the authoritative database."""
        self.registry.register(type_id, spec)

    def _handle_query(self, message: Message) -> bytes:
        decoder = XdrDecoder(message.payload)
        type_id = decoder.unpack_string()
        decoder.expect_done()
        encoder = XdrEncoder()
        if self.registry.knows(type_id):
            encoder.pack_uint32(_STATUS_OK)
            encode_spec(self.registry.resolve(type_id), encoder)
        else:
            encoder.pack_uint32(_STATUS_UNKNOWN)
        return encoder.getvalue()


def decode_query_reply(payload: bytes, type_id: str) -> TypeSpec:
    """Parse a query reply, raising on unknown-type status."""
    from repro.xdr.registry import decode_spec

    decoder = XdrDecoder(payload)
    status = decoder.unpack_uint32()
    if status == _STATUS_UNKNOWN:
        raise XdrError(f"name server does not know type {type_id!r}")
    if status != _STATUS_OK:
        raise XdrError(f"bad name-server status {status!r}")
    spec = decode_spec(decoder)
    decoder.expect_done()
    return spec
