"""Render collected diagnostics as text or JSON.

The text form is the familiar compiler style::

    examples/interfaces/inventory.x:7:5: warning SRPC006: ...

The JSON form is stable (sorted diagnostics, fixed key order) so it
can be golden-tested and consumed by tooling.
"""

from __future__ import annotations

import json
from typing import Iterable, List

from repro.analysis.diagnostics import Diagnostic, Severity


def render_text(diagnostics: Iterable[Diagnostic]) -> str:
    """Multi-line compiler-style report plus a summary line."""
    ordered = sorted(diagnostics, key=Diagnostic.sort_key)
    lines = [diagnostic.render() for diagnostic in ordered]
    totals = _totals(ordered)
    lines.append(
        f"{totals[Severity.ERROR]} error(s), "
        f"{totals[Severity.WARNING]} warning(s), "
        f"{totals[Severity.INFO]} note(s)"
    )
    return "\n".join(lines)


def render_json(diagnostics: Iterable[Diagnostic]) -> str:
    """Stable JSON document: ``{"diagnostics": [...], "summary": {...}}``."""
    ordered = sorted(diagnostics, key=Diagnostic.sort_key)
    body = {
        "diagnostics": [_diagnostic_json(d) for d in ordered],
        "summary": {
            severity.value: count
            for severity, count in _totals(ordered).items()
        },
    }
    return json.dumps(body, indent=2, sort_keys=False)


def _diagnostic_json(diagnostic: Diagnostic) -> dict:
    location = diagnostic.location
    entry = {
        "code": diagnostic.code,
        "severity": diagnostic.severity.value,
        "message": diagnostic.message,
        "file": location.file if location is not None else None,
        "line": location.line if location is not None else None,
        "col": location.col if location is not None else None,
    }
    if diagnostic.hint:
        entry["hint"] = diagnostic.hint
    if diagnostic.data:
        entry["data"] = dict(diagnostic.data)
    return entry


def _totals(diagnostics: List[Diagnostic]) -> dict:
    totals = {severity: 0 for severity in Severity}
    for diagnostic in diagnostics:
        totals[diagnostic.severity] += 1
    return totals
