"""The pointer-reachability graph over declared types.

The paper's transfer machinery is driven entirely by the static type
graph: a long pointer's data type specifier names a struct, the struct's
pointer fields name further structs, and the closure walker follows
those edges at run time.  :class:`TypeGraph` builds the same graph
ahead of time — from an :class:`~repro.rpc.idl.IdlDocument` and/or a
:class:`~repro.xdr.registry.TypeRegistry` — so the analyzer can reason
about reachability, by-value embedding cycles, and per-procedure
closure footprints without running anything.

Two edge kinds matter and are kept separate:

* **pointer edges** (``A -> B`` because ``A`` has a field ``B *``):
  followed lazily at run time, so cycles are fine (trees, lists);
* **embed edges** (``A -> B`` because ``A`` embeds ``B`` by value):
  resolved at layout time, so a cycle means infinite size — the IDL
  parser cannot produce one, but programmatically built or
  wire-decoded specs can, and the analyzer must not crash on them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.rpc.interface import InterfaceDef, ProcedureDef
from repro.xdr.arch import Architecture
from repro.xdr.types import (
    ArrayType,
    PointerType,
    StructType,
    TypeSpec,
    UnionType,
)


class TypeGraph:
    """Pointer and embed edges over a set of named struct types."""

    def __init__(self) -> None:
        self.structs: Dict[str, StructType] = {}
        # name -> set of pointer-target names (may include unknowns)
        self.pointer_edges: Dict[str, Set[str]] = {}
        # name -> set of embedded struct names
        self.embed_edges: Dict[str, Set[str]] = {}

    # -- construction ---------------------------------------------------------

    def add_struct(self, name: str, spec: StructType) -> None:
        """Add one named struct and extract its edges."""
        self.structs[name] = spec
        pointers: Set[str] = set()
        embeds: Set[str] = set()
        for field in spec.fields:
            _collect_edges(field.spec, pointers, embeds)
        self.pointer_edges[name] = pointers
        self.embed_edges[name] = embeds

    @classmethod
    def from_structs(
        cls, structs: Dict[str, StructType]
    ) -> "TypeGraph":
        """Build a graph from a name -> struct mapping."""
        graph = cls()
        for name, spec in structs.items():
            graph.add_struct(name, spec)
        return graph

    # -- queries --------------------------------------------------------------

    def knows(self, name: str) -> bool:
        """Whether the graph has a definition for ``name``."""
        return name in self.structs

    def pointer_targets(self, name: str) -> Set[str]:
        """Names targeted by pointer fields of ``name`` (direct)."""
        return self.pointer_edges.get(name, set())

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Every type name reachable from ``roots`` via either edge kind.

        Unknown names are included in the result (so callers can flag
        them) but not expanded.
        """
        seen: Set[str] = set()
        stack = list(roots)
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            for target in self.pointer_edges.get(name, ()):
                if target not in seen:
                    stack.append(target)
            for target in self.embed_edges.get(name, ()):
                if target not in seen:
                    stack.append(target)
        return seen

    def embedding_cycle(self) -> Optional[List[str]]:
        """A by-value embedding cycle, if one exists.

        Returns the cycle as a name list ``[a, b, ..., a]`` or ``None``.
        Only embed edges participate — pointer cycles are legal.
        """
        WHITE, GREY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self.structs}
        path: List[str] = []

        def visit(name: str) -> Optional[List[str]]:
            color[name] = GREY
            path.append(name)
            for target in sorted(self.embed_edges.get(name, ())):
                if target not in color:
                    continue  # unknown target: reported elsewhere
                if color[target] == GREY:
                    return path[path.index(target):] + [target]
                if color[target] == WHITE:
                    found = visit(target)
                    if found is not None:
                        return found
            color[name] = BLACK
            path.pop()
            return None

        for name in sorted(self.structs):
            if color[name] == WHITE:
                found = visit(name)
                if found is not None:
                    return found
        return None

    def has_embedding_cycle(self) -> bool:
        """Whether any by-value embedding cycle exists."""
        return self.embedding_cycle() is not None

    # -- sizes ----------------------------------------------------------------

    def _embed_reachable(self, name: str) -> Set[str]:
        seen: Set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.embed_edges.get(current, ()))
        return seen

    def safe_sizeof(
        self, name: str, arch: Architecture
    ) -> Optional[int]:
        """``sizeof`` that refuses to recurse into embedding cycles.

        Returns ``None`` when the size is undefined (unknown type or
        infinite via an embedding cycle) instead of overflowing the
        stack the way a naive ``spec.sizeof`` would.
        """
        spec = self.structs.get(name)
        if spec is None:
            return None
        for reached in self._embed_reachable(name):
            if reached in self._embed_reachable_strict(reached):
                return None  # ``reached`` sits on an embedding cycle
        return spec.sizeof(arch)

    def _embed_reachable_strict(self, name: str) -> Set[str]:
        """Names embed-reachable from ``name`` via at least one edge."""
        seen: Set[str] = set()
        stack = list(self.embed_edges.get(name, ()))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.embed_edges.get(current, ()))
        return seen

    def procedure_roots(self, procedure: ProcedureDef) -> List[str]:
        """Pointer-target names rooted in one procedure signature.

        Covers pointer parameters, pointers buried in by-value struct
        parameters, and the result type.
        """
        roots: Set[str] = set()
        specs: List[TypeSpec] = [param.spec for param in procedure.params]
        if procedure.returns is not None:
            specs.append(procedure.returns)
        for spec in specs:
            pointers: Set[str] = set()
            embeds: Set[str] = set()
            _collect_edges(spec, pointers, embeds)
            roots |= pointers
            # Pointers inside by-value embedded structs are roots too
            # (the embedded value is marshalled as data, its pointer
            # fields swizzle on arrival) — follow embed edges only.
            for name in embeds:
                for reached in self._embed_reachable(name):
                    roots |= self.pointer_edges.get(reached, set())
        return sorted(roots)

    def interface_roots(self, interface: InterfaceDef) -> List[str]:
        """Pointer-target names rooted anywhere in one interface."""
        roots: Set[str] = set()
        for procedure in interface.procedures:
            roots |= set(self.procedure_roots(procedure))
        return sorted(roots)


def _collect_edges(
    spec: TypeSpec, pointers: Set[str], embeds: Set[str]
) -> None:
    """Walk one field/parameter spec, recording its direct edges."""
    if isinstance(spec, PointerType):
        pointers.add(spec.target_type_id)
    elif isinstance(spec, ArrayType):
        _collect_edges(spec.element, pointers, embeds)
    elif isinstance(spec, StructType):
        embeds.add(spec.name)
    elif isinstance(spec, UnionType):
        # Arms are pointer-free by construction; embedded structs in
        # arms still contribute embed edges for size accounting.
        for arm in spec.arms.values():
            _collect_edges(arm, pointers, embeds)


def pointer_specs(spec: TypeSpec) -> List[Tuple[str, PointerType]]:
    """Every pointer spec inside ``spec`` with a path-ish label."""
    found: List[Tuple[str, PointerType]] = []

    def walk(current: TypeSpec, label: str) -> None:
        if isinstance(current, PointerType):
            found.append((label, current))
        elif isinstance(current, ArrayType):
            walk(current.element, label + "[]")
        elif isinstance(current, StructType):
            for field in current.fields:
                walk(field.spec, f"{label}.{field.name}")

    walk(spec, "")
    return found
