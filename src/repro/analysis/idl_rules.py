"""IDL / type-graph analysis rules (``SRPC0xx``).

These rules run over parsed interface definitions — an
:class:`~repro.rpc.idl.IdlDocument`, optionally joined with a
:class:`~repro.xdr.registry.TypeRegistry` of externally known types —
and statically verify the invariants the smart-RPC runtime otherwise
discovers only when a transfer fails:

* every pointer target must resolve to a registered struct
  (``SRPC004``); the runtime would raise on the first swizzle;
* by-value embedding must be acyclic (``SRPC002``); layout would
  recurse forever;
* declared structs should be reachable from some interface signature
  (``SRPC003``); unreachable ones are dead weight in the registry;
* the configured closure budget should admit at least the root datum
  of every pointer parameter (``SRPC005``); otherwise every eager
  shipment truncates to exactly the faulted datum;
* struct layout should not waste excessive padding on any architecture
  profile (``SRPC006``);
* a type should not be both a pointer target and embedded by value
  (``SRPC007``); a pointer into an embedded instance is an interior
  pointer, which is not a heap root and can never be served.

Parse failures are reported as ``SRPC001`` with the parser's
line/column carried into the diagnostic location.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import (
    DiagnosticCollector,
    SourceLocation,
)
from repro.analysis.typegraph import TypeGraph, _collect_edges
from repro.rpc.idl import IdlDocument, IdlError, parse_idl
from repro.xdr.arch import ALPHA64, SPARC32, X86_64, Architecture
from repro.xdr.errors import XdrError
from repro.xdr.registry import TypeRegistry
from repro.xdr.types import StructType

PROFILES: Tuple[Architecture, ...] = (SPARC32, X86_64, ALPHA64)
"""Architecture profiles every layout rule checks against."""

DEFAULT_CLOSURE_SIZE = 8192
"""The paper's closure-size default (mirrors the smart runtime's)."""

# Padding beyond a quarter of the struct is flagged by SRPC006.
_PADDING_RATIO = 4

_POSITION = re.compile(r"line (\d+), column (\d+)")

_SUPPRESS_DIRECTIVE = re.compile(
    r"//\s*smartlint:\s*disable=([A-Z0-9, ]+)"
)


def file_suppressions(text: str) -> List[str]:
    """Rule codes disabled by ``// smartlint: disable=...`` directives."""
    codes: List[str] = []
    for match in _SUPPRESS_DIRECTIVE.finditer(text):
        codes.extend(
            code.strip()
            for code in match.group(1).split(",")
            if code.strip()
        )
    return codes


def analyze_source(
    text: str,
    filename: Optional[str] = None,
    collector: Optional[DiagnosticCollector] = None,
    registry: Optional[TypeRegistry] = None,
    closure_size: int = DEFAULT_CLOSURE_SIZE,
    profiles: Sequence[Architecture] = PROFILES,
) -> DiagnosticCollector:
    """Lint one IDL source text; parse errors become ``SRPC001``."""
    if collector is None:
        collector = DiagnosticCollector()
    collector.suppress |= set(file_suppressions(text))
    try:
        document = parse_idl(text, filename=filename)
    except IdlError as exc:
        collector.emit(
            "SRPC001",
            str(exc),
            location=_error_location(str(exc), filename),
        )
        return collector
    return analyze_document(
        document,
        collector=collector,
        registry=registry,
        closure_size=closure_size,
        profiles=profiles,
    )


def analyze_document(
    document: IdlDocument,
    collector: Optional[DiagnosticCollector] = None,
    registry: Optional[TypeRegistry] = None,
    closure_size: int = DEFAULT_CLOSURE_SIZE,
    profiles: Sequence[Architecture] = PROFILES,
) -> DiagnosticCollector:
    """Run every ``SRPC0xx`` rule over one parsed document."""
    if collector is None:
        collector = DiagnosticCollector()
    graph = _build_graph(document, registry)
    _check_pointer_targets(document, graph, collector)
    _check_embedding_cycles(document, graph, collector)
    _check_reachability(document, graph, collector)
    _check_closure_budget(
        document, graph, collector, closure_size, profiles
    )
    _check_padding(document, collector, profiles)
    _check_interior_pointers(document, graph, collector)
    return collector


def analyze_files(
    paths: Iterable,
    collector: Optional[DiagnosticCollector] = None,
    closure_size: int = DEFAULT_CLOSURE_SIZE,
    profiles: Sequence[Architecture] = PROFILES,
) -> DiagnosticCollector:
    """Lint several ``.x`` files against one shared registry.

    Cross-file conflicts — the same type id bound to different
    definitions in two files — are reported as ``SRPC008``, mirroring
    the name server's refusal to rebind an id.
    """
    if collector is None:
        collector = DiagnosticCollector()
    registry = TypeRegistry()
    first_seen: Dict[str, str] = {}
    for path in paths:
        path = str(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            collector.emit(
                "SRPC001",
                f"cannot read interface file: {exc}",
                location=SourceLocation(file=path),
            )
            continue
        analyze_source(
            text,
            filename=path,
            collector=collector,
            registry=registry,
            closure_size=closure_size,
            profiles=profiles,
        )
        # Feed this file's types into the shared registry.
        try:
            document = parse_idl(text, filename=path)
        except IdlError:
            continue  # already reported as SRPC001
        for name, spec in {
            **document.structs, **document.enums
        }.items():
            try:
                registry.register(name, spec)
                first_seen.setdefault(name, path)
            except XdrError:
                collector.emit(
                    "SRPC008",
                    f"type {name!r} is already bound to a different "
                    f"definition by {first_seen.get(name, '?')}",
                    location=_location(document, "struct", name)
                    or _location(document, "enum", name)
                    or SourceLocation(file=path),
                )
    return collector


# -- individual rules ---------------------------------------------------------


def _build_graph(
    document: IdlDocument, registry: Optional[TypeRegistry]
) -> TypeGraph:
    graph = TypeGraph.from_structs(document.structs)
    if registry is not None:
        for type_id in registry.type_ids:
            spec = registry.resolve(type_id)
            if isinstance(spec, StructType) and not graph.knows(type_id):
                graph.add_struct(type_id, spec)
    return graph


def _check_pointer_targets(
    document: IdlDocument,
    graph: TypeGraph,
    collector: DiagnosticCollector,
) -> None:
    """SRPC004: every pointer target resolves to a known struct."""
    for struct_name in sorted(document.structs):
        for target in sorted(graph.pointer_targets(struct_name)):
            if graph.knows(target):
                continue
            reason = (
                "a non-struct type"
                if target in document.enums
                else "no registered type"
            )
            collector.emit(
                "SRPC004",
                f"struct {struct_name!r} has a pointer to {target!r}, "
                f"which names {reason}: the runtime cannot swizzle it",
                location=_location(document, "struct", struct_name),
                hint="pointer targets must be registered struct types",
            )
    for iface_name, interface in sorted(document.interfaces.items()):
        for procedure in interface.procedures:
            for target in graph.procedure_roots(procedure):
                if graph.knows(target):
                    continue
                reason = (
                    "a non-struct type"
                    if target in document.enums
                    else "no registered type"
                )
                collector.emit(
                    "SRPC004",
                    f"procedure {iface_name}.{procedure.name} passes "
                    f"a pointer to {target!r}, which names {reason}: "
                    "the signature cannot be swizzled",
                    location=_location(
                        document, "proc", iface_name, procedure.name
                    ),
                )


def _check_embedding_cycles(
    document: IdlDocument,
    graph: TypeGraph,
    collector: DiagnosticCollector,
) -> None:
    """SRPC002: by-value embedding must be acyclic."""
    cycle = graph.embedding_cycle()
    if cycle is None:
        return
    chain = " embeds ".join(repr(name) for name in cycle)
    collector.emit(
        "SRPC002",
        f"by-value embedding cycle: {chain}; the type has infinite "
        "size and can never be laid out",
        location=_location(document, "struct", cycle[0]),
        hint="break the cycle with a pointer field",
    )


def _check_reachability(
    document: IdlDocument,
    graph: TypeGraph,
    collector: DiagnosticCollector,
) -> None:
    """SRPC003: every declared struct serves some interface."""
    if not document.interfaces:
        return  # a pure type library: nothing to be reachable from
    roots = set()
    for interface in document.interfaces.values():
        for procedure in interface.procedures:
            specs = [param.spec for param in procedure.params]
            if procedure.returns is not None:
                specs.append(procedure.returns)
            for spec in specs:
                pointers: set = set()
                embeds: set = set()
                _collect_edges(spec, pointers, embeds)
                roots |= pointers | embeds
    reachable = graph.reachable_from(roots)
    for name in sorted(document.structs):
        if name not in reachable:
            collector.emit(
                "SRPC003",
                f"struct {name!r} is not reachable from any interface "
                "procedure: it will never cross an address space",
                location=_location(document, "struct", name),
                hint="remove the declaration or reference it from a "
                "signature",
            )


def _check_closure_budget(
    document: IdlDocument,
    graph: TypeGraph,
    collector: DiagnosticCollector,
    closure_size: int,
    profiles: Sequence[Architecture],
) -> None:
    """SRPC005: the closure budget admits at least each root datum."""
    for iface_name, interface in sorted(document.interfaces.items()):
        for procedure in interface.procedures:
            for target in graph.procedure_roots(procedure):
                sizes = {
                    arch.name: graph.safe_sizeof(target, arch)
                    for arch in profiles
                }
                known = [s for s in sizes.values() if s is not None]
                if not known:
                    continue  # unresolved target: SRPC004 covers it
                worst = max(known)
                if worst < closure_size:
                    continue
                rendered = ", ".join(
                    f"{name}={size}"
                    for name, size in sorted(sizes.items())
                    if size is not None
                )
                collector.emit(
                    "SRPC005",
                    f"procedure {iface_name}.{procedure.name}: one "
                    f"{target!r} datum ({rendered} bytes) meets or "
                    f"exceeds the closure budget ({closure_size}); "
                    "eager shipping will always truncate to the "
                    "faulted datum alone",
                    location=_location(
                        document, "proc", iface_name, procedure.name
                    ),
                    hint="raise the closure size or shrink the struct",
                )


def _check_padding(
    document: IdlDocument,
    collector: DiagnosticCollector,
    profiles: Sequence[Architecture],
) -> None:
    """SRPC006: flag structs dominated by alignment padding."""
    graph = TypeGraph.from_structs(document.structs)
    for name in sorted(document.structs):
        spec = document.structs[name]
        worst: Optional[Tuple[int, int, str]] = None
        sizes = {}
        for arch in profiles:
            size = graph.safe_sizeof(name, arch)
            if size is None:
                # Embedding cycle: SRPC002 already reported it.
                worst = None
                break
            sizes[arch.name] = size
            content = sum(
                field.spec.sizeof(arch) for field in spec.fields
            )
            waste = size - content
            if worst is None or waste > worst[0]:
                worst = (waste, size, arch.name)
        if worst is None:
            continue
        waste, size, arch_name = worst
        if waste * _PADDING_RATIO <= size:
            continue
        rendered = ", ".join(
            f"{profile}={value}" for profile, value in sorted(sizes.items())
        )
        collector.emit(
            "SRPC006",
            f"struct {name!r} wastes {waste} of {size} bytes to "
            f"alignment padding on {arch_name} (sizes: {rendered}); "
            "every cached copy and every transfer pays for it",
            location=_location(document, "struct", name),
            hint="order fields widest-first to pack the layout",
        )


def _check_interior_pointers(
    document: IdlDocument,
    graph: TypeGraph,
    collector: DiagnosticCollector,
) -> None:
    """SRPC007: pointer targets should not also be embedded by value."""
    embedded_in: Dict[str, str] = {}
    for owner, embeds in sorted(graph.embed_edges.items()):
        for name in sorted(embeds):
            embedded_in.setdefault(name, owner)
    pointer_targets = set()
    for targets in graph.pointer_edges.values():
        pointer_targets |= targets
    for interface in document.interfaces.values():
        for procedure in interface.procedures:
            pointer_targets |= set(graph.procedure_roots(procedure))
    for name in sorted(pointer_targets & set(embedded_in)):
        if name not in document.structs:
            continue
        collector.emit(
            "SRPC007",
            f"struct {name!r} is embedded by value in "
            f"{embedded_in[name]!r} and also targeted by pointers; a "
            "pointer into an embedded instance is an interior pointer "
            "and can never be swizzled",
            location=_location(document, "struct", name),
            hint="embed by pointer, or never point at the embedded "
            "type",
        )


# -- helpers ------------------------------------------------------------------


def _location(
    document: IdlDocument, *key: str
) -> Optional[SourceLocation]:
    pos = document.position_of(*key)
    if pos is None:
        if document.filename is not None:
            return SourceLocation(file=document.filename)
        return None
    return SourceLocation(
        file=document.filename, line=pos.line, col=pos.col
    )


def _error_location(
    message: str, filename: Optional[str]
) -> SourceLocation:
    match = _POSITION.search(message)
    if match:
        return SourceLocation(
            file=filename,
            line=int(match.group(1)),
            col=int(match.group(2)),
        )
    return SourceLocation(file=filename)
