"""The shared diagnostic engine ("smartlint" core).

Every layer of the static analyzer — the IDL/type-graph rules, the
trace conformance checker, and the session invariant validator —
reports problems through one vocabulary: a :class:`Diagnostic` carries
a rule code (``SRPC0xx`` for interface analysis, ``SRPC1xx`` for trace
conformance, ``SRPC2xx`` for session invariants, ``SRPC3xx`` for
transfer-policy conformance, ``SRPC4xx`` for happens-before races
found by the coherency sanitizer), a severity, a message, and an
optional source location (``file:line:col``).

:class:`DiagnosticCollector` accumulates diagnostics with per-rule
suppression, and the renderers in :mod:`repro.analysis.render` turn
the collected list into text or JSON.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional


class Severity(enum.Enum):
    """How bad a finding is; errors fail the lint."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Sort key: errors first."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class SourceLocation:
    """Where a diagnostic points (1-based line/column)."""

    file: Optional[str] = None
    line: Optional[int] = None
    col: Optional[int] = None

    def __str__(self) -> str:
        parts = [self.file if self.file is not None else "<input>"]
        if self.line is not None:
            parts.append(str(self.line))
            if self.col is not None:
                parts.append(str(self.col))
        return ":".join(parts)


@dataclass(frozen=True)
class Rule:
    """One entry of the rule catalog."""

    code: str
    severity: Severity
    summary: str


_CATALOG: List[Rule] = [
    # -- IDL / type-graph rules (SRPC0xx) ---------------------------------
    Rule("SRPC001", Severity.ERROR,
         "interface file fails to parse (syntax or semantic IDL error)"),
    Rule("SRPC002", Severity.ERROR,
         "by-value struct embedding cycle: the type has infinite size"),
    Rule("SRPC003", Severity.WARNING,
         "struct is unreachable from every interface procedure"),
    Rule("SRPC004", Severity.ERROR,
         "signature cannot be swizzled: pointer target is unregistered "
         "or not a struct"),
    Rule("SRPC005", Severity.WARNING,
         "closure budget is below the root datum: eager shipping will "
         "always truncate"),
    Rule("SRPC006", Severity.WARNING,
         "struct layout wastes excessive alignment padding on one or "
         "more architecture profiles"),
    Rule("SRPC007", Severity.WARNING,
         "type is both embedded by value and targeted by pointers: "
         "interior pointers cannot be swizzled"),
    Rule("SRPC008", Severity.ERROR,
         "type id bound to conflicting definitions across interface "
         "files"),
    # -- trace conformance rules (SRPC1xx) --------------------------------
    Rule("SRPC100", Severity.ERROR,
         "trace log fails to parse (malformed JSON-lines record)"),
    Rule("SRPC101", Severity.ERROR,
         "cross-space activity transfer without the modified-data-set "
         "piggyback"),
    Rule("SRPC102", Severity.ERROR,
         "session ended with dirty remote data but no write-back to "
         "its home space"),
    Rule("SRPC103", Severity.ERROR,
         "session ended without an invalidation multicast covering "
         "every participant"),
    Rule("SRPC104", Severity.ERROR,
         "write recorded on a cached page without a preceding write "
         "protection fault"),
    Rule("SRPC105", Severity.WARNING,
         "trace ends with a session still open (no session-end record)"),
    # -- session invariant rules (SRPC2xx) --------------------------------
    Rule("SRPC201", Severity.ERROR,
         "allocation table row lies outside the session's cache pages"),
    Rule("SRPC202", Severity.ERROR,
         "page entry list and table page index disagree"),
    Rule("SRPC203", Severity.ERROR,
         "page protection does not match residency/dirtiness"),
    Rule("SRPC204", Severity.ERROR,
         "placeholders overlap within one cache page"),
    Rule("SRPC205", Severity.ERROR,
         "page mixes home spaces under the single-home strategy"),
    Rule("SRPC206", Severity.ERROR,
         "relayed modified-data-set references dead or non-resident "
         "entries"),
    # -- transfer-policy conformance rules (SRPC3xx) ----------------------
    Rule("SRPC300", Severity.ERROR,
         "data-request budget contradicts the session's declared fixed "
         "closure budget"),
    Rule("SRPC301", Severity.ERROR,
         "session declared a zero closure budget (lazy) but shipped "
         "prefetched closure bytes"),
    Rule("SRPC302", Severity.ERROR,
         "session declared graphcopy marshalling (no data plane) but "
         "recorded data-plane requests"),
    Rule("SRPC310", Severity.ERROR,
         "data-batch event contradicts the fetch-pipeline discipline "
         "(uncovered fault, overlapping in-flight fetch, or absorb of "
         "an unissued fetch)"),
    # -- fault-tolerance conformance rules (SRPC32x) ----------------------
    Rule("SRPC320", Severity.ERROR,
         "session aborted at a space without reaping its orphaned "
         "state (pages and table entries leak)"),
    Rule("SRPC321", Severity.ERROR,
         "write-back commit at a space without a preceding staged "
         "prepare for the same session"),
    Rule("SRPC322", Severity.ERROR,
         "space kept using a session's data plane after reaping it "
         "(fault, write or data-batch activity after orphan-reaped)"),
    # -- shared-memory carrier rules (SRPC330) -----------------------------
    Rule("SRPC330", Severity.ERROR,
         "segment-handover record breaks a shm carrier promise "
         "(missing handover field, stale or regressed segment epoch, "
         "torn extent shape, or a non-monotonic causal stamp)"),
    # -- happens-before race rules (SRPC4xx, the coherency sanitizer) -----
    Rule("SRPC400", Severity.ERROR,
         "data race: two writes in one session with concurrent vector "
         "clocks (no happens-before order)"),
    Rule("SRPC401", Severity.ERROR,
         "stale read: a page fault observed a version older than a "
         "happens-before-earlier write to the same page"),
    Rule("SRPC402", Severity.ERROR,
         "lost invalidation: the end-of-session invalidation is "
         "concurrent with data-plane activity at its target space"),
    Rule("SRPC403", Severity.ERROR,
         "use-after-invalidate: data-plane activity at a space "
         "causally after its session's invalidation"),
    Rule("SRPC404", Severity.ERROR,
         "lost update: a write is not happens-before any write-back "
         "commit at the written datum's home space"),
    Rule("SRPC405", Severity.ERROR,
         "distributed deadlock: waits-for cycle of dangling exchanges "
         "(requests whose reply never appears)"),
]

RULES: Dict[str, Rule] = {rule.code: rule for rule in _CATALOG}


def rule(code: str) -> Rule:
    """Look up one rule by code."""
    try:
        return RULES[code]
    except KeyError:
        raise KeyError(f"unknown rule code {code!r}") from None


@dataclass(frozen=True)
class Diagnostic:
    """One finding, ready for rendering."""

    code: str
    severity: Severity
    message: str
    location: Optional[SourceLocation] = None
    hint: Optional[str] = None
    data: Mapping[str, Any] = field(default_factory=dict)

    @property
    def is_error(self) -> bool:
        """Whether this finding alone should fail the lint."""
        return self.severity is Severity.ERROR

    def render(self) -> str:
        """One-line ``file:line:col: severity SRPCnnn: message`` form."""
        where = str(self.location) if self.location is not None else "<input>"
        text = f"{where}: {self.severity.value} {self.code}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def sort_key(self):
        """Stable ordering: file, position, severity, code."""
        loc = self.location or SourceLocation()
        return (
            loc.file or "",
            loc.line if loc.line is not None else -1,
            loc.col if loc.col is not None else -1,
            self.severity.rank,
            self.code,
            self.message,
        )


class DiagnosticCollector:
    """Accumulates diagnostics, applying per-rule suppression.

    ``suppress`` is a set of rule codes that are silently dropped —
    the CLI's ``--suppress`` flag and per-file ``// smartlint:
    disable=...`` directives both feed it.
    """

    def __init__(self, suppress: Optional[Iterable[str]] = None) -> None:
        self.suppress = set(suppress or ())
        self.diagnostics: List[Diagnostic] = []

    def emit(
        self,
        code: str,
        message: str,
        location: Optional[SourceLocation] = None,
        hint: Optional[str] = None,
        severity: Optional[Severity] = None,
        **data: Any,
    ) -> Optional[Diagnostic]:
        """Record one finding under a catalogued rule code.

        The severity defaults to the catalog's; returns the recorded
        diagnostic, or ``None`` when the rule is suppressed.
        """
        catalogued = rule(code)
        if code in self.suppress:
            return None
        diagnostic = Diagnostic(
            code=code,
            severity=severity if severity is not None else catalogued.severity,
            message=message,
            location=location,
            hint=hint,
            data=data,
        )
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        """Merge already-built diagnostics, still honouring suppression."""
        for diagnostic in diagnostics:
            if diagnostic.code not in self.suppress:
                self.diagnostics.append(diagnostic)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        """The error-severity subset."""
        return [d for d in self.diagnostics if d.is_error]

    @property
    def has_errors(self) -> bool:
        """Whether any error-severity diagnostic was collected."""
        return any(d.is_error for d in self.diagnostics)

    def counts(self) -> Dict[str, int]:
        """``{"error": n, "warning": n, "info": n}``."""
        totals = {severity.value: 0 for severity in Severity}
        for diagnostic in self.diagnostics:
            totals[diagnostic.severity.value] += 1
        return totals

    def sorted(self) -> List[Diagnostic]:
        """Diagnostics in stable render order."""
        return sorted(self.diagnostics, key=Diagnostic.sort_key)
