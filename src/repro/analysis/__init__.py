"""Static analysis for smart RPC ("smartlint").

Three layers over one diagnostic engine:

* :mod:`repro.analysis.idl_rules` — IDL/type-graph rules (``SRPC0xx``)
  over parsed interface definitions;
* :mod:`repro.analysis.trace_rules` — offline conformance checking of
  recorded coherency-protocol traces (``SRPC1xx``);
* :mod:`repro.smartrpc.validate` — live session-state invariants
  reported through the same vocabulary (``SRPC2xx``);
* :mod:`repro.analysis.sanitizer` — the coherency sanitizer: vector
  clock happens-before race detection over protocol traces
  (``SRPC4xx``), run via ``python -m repro.analysis race``.

The CLI front end is ``python -m repro.analysis``; see
:mod:`repro.analysis.cli`.
"""

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticCollector,
    Rule,
    RULES,
    Severity,
    SourceLocation,
    rule,
)
from repro.analysis.render import render_json, render_text

__all__ = [
    "Diagnostic",
    "DiagnosticCollector",
    "Rule",
    "RULES",
    "Severity",
    "SourceLocation",
    "render_json",
    "render_text",
    "rule",
]
