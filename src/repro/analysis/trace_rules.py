"""Trace conformance checker (SRPC1xx, SRPC30x–SRPC330).

Replays a recorded simulation trace — a JSON-lines log written by
:func:`repro.simnet.tracefmt.save_trace` — and verifies the coherency
protocol's observable obligations (paper §3.4) offline:

* every cross-space activity transfer carries the modified data set
  piggyback (SRPC101);
* a session that ends holding dirty remote data writes it back to each
  home space (SRPC102);
* the end-of-session invalidation multicast covers every participant
  (SRPC103);
* no write lands on a cached page without a preceding write protection
  fault — the fault is what marks the page dirty, so a missing fault
  means silently lost modifications (SRPC104);
* every session that transferred activity also records its end
  (SRPC105, warning — the trace may simply be truncated).

A session that records a ``policy`` declaration additionally promises
how its data plane behaves, and each recorded ``policy-decision`` is
checked against the declaration:

* a fixed declared budget must match every data request's budget
  (SRPC300);
* a declared zero budget (the lazy policy) must ship no prefetched
  closure bytes — a "lazy" run that prefetches is mislabelled
  (SRPC301);
* graphcopy marshalling has no data plane at all, so any data request
  contradicts it (SRPC302);
* ``data-batch`` events (the fetch pipeline's issue/absorb records)
  must honour the pipeline discipline: every fault a batch claims to
  coalesce must appear as an earlier ``fault`` event, no page may be
  covered by two in-flight fetches at once, and an ``absorb`` must
  name a fetch that was actually issued (SRPC310).

Traces without policy declarations (conventional or pre-policy runs)
skip the SRPC3xx rules entirely.

Crash traces (the fault-tolerance layer, DESIGN.md §12) add three
obligations:

* a space that records a ``session-abort`` must also record the
  matching ``orphan-reaped`` — aborting without rolling back leaks
  protected pages and allocation-table entries (SRPC320);
* a ``writeback-phase`` commit at a space requires that same space's
  earlier prepare for the session — committing unstaged data is
  exactly the half-update the two-phase protocol exists to prevent
  (SRPC321);
* after a space reaps a session, no further ``fault`` / ``write`` /
  ``data-batch`` activity may appear at that space for it — reaping a
  live session would strand the program mid-access (SRPC322).

A session that aborted is excused from the clean-shutdown rules: its
``session-end`` obligations (SRPC102/SRPC103) and the open-session
warning (SRPC105) do not apply.

Shared-memory traces record a ``segment-handover`` event for every
zero-copy extent mapping (the shm carrier ships offsets, not bytes),
and each one is checked against the carrier's promises (SRPC330):

* the record must carry the full handover tuple — src, dst, kind,
  segment, offset, length, extent, epoch, segment_epoch — plus the
  site/seq/vc causal stamp every protocol event carries;
* the frame's epoch must equal the segment's live epoch word at
  mapping time: a mismatch means the reader mapped memory whose owner
  had already restarted or shut down;
* a segment's observed epoch never regresses — epochs only bump;
* every handover of one (segment, extent) stamp agrees on its offset
  and length — disagreement is a torn or recycled extent;
* the receiver's vector clock must dominate the sender (the handover
  happens strictly after the extent was published) and must never
  step backwards between handovers recorded at one site.

Diagnostics point at ``tracefile:line`` where the line number is the
offending record's position in the log.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Sequence

from repro.analysis.diagnostics import (
    DiagnosticCollector,
    SourceLocation,
)
from repro.simnet.stats import TraceEvent
from repro.simnet.tracefmt import TraceFormatError, load_trace

#: Categories the checker interprets; anything else passes through.
PROTOCOL_CATEGORIES = (
    "transfer",
    "fault",
    "write",
    "session-end",
    "write-back",
    "invalidate",
    "policy",
    "policy-decision",
    "data-batch",
    "session-abort",
    "orphan-reaped",
    "writeback-phase",
    "segment-handover",
)

#: Everything one segment-handover record must carry (SRPC330).
HANDOVER_FIELDS = (
    "src",
    "dst",
    "kind",
    "segment",
    "offset",
    "length",
    "extent",
    "epoch",
    "segment_epoch",
    "site",
    "seq",
    "vc",
)


def check_events(
    events: Sequence[TraceEvent],
    collector: DiagnosticCollector,
    filename: Optional[str] = None,
) -> None:
    """Run every trace conformance rule over an in-memory event list."""

    def loc(index: int) -> SourceLocation:
        return SourceLocation(file=filename, line=index + 1)

    write_faults = set()  # (space, session, page) seen as write faults
    fault_pages = set()  # (space, session, page) seen as any fault
    inflight = {}  # (space, session, fetch_id) -> set of covered pages
    first_transfer = {}  # session -> index of its first transfer
    ended = set()  # sessions with a session-end record
    prepared = set()  # (space, session) with a staged writeback-prepare
    reaped_so_far = set()  # (space, session) reaped, in event order
    segment_epochs = {}  # segment name -> highest epoch observed
    extent_shapes = {}  # (segment, extent) -> (offset, length)
    handover_clocks = {}  # recording site -> merged handover vc

    # Policy declarations, gathered up front so a decision is checked
    # against its space's declaration regardless of record order.
    # The abort/reap sets are likewise gathered up front: within one
    # space the reap follows its abort, but merged multi-space crash
    # traces interleave spaces arbitrarily.
    declared = {}  # (space, session) -> the "policy" event data
    aborted_sessions = set()  # session ids with any session-abort
    reaped_anywhere = set()  # (space, session) with an orphan-reaped
    for event in events:
        data = event.data or {}
        if event.category == "policy":
            declared[(data.get("space"), data.get("session"))] = data
        elif event.category == "session-abort":
            aborted_sessions.add(data.get("session"))
        elif event.category == "orphan-reaped":
            reaped_anywhere.add((data.get("space"), data.get("session")))

    for index, event in enumerate(events):
        data = event.data or {}
        session = data.get("session")
        if event.category == "transfer":
            if session is not None and session not in first_transfer:
                first_transfer[session] = index
            piggyback = data.get("piggyback")
            # None marks a conventional-RPC trace: no piggyback is
            # expected, so the rule does not apply.
            if piggyback == 0:
                collector.emit(
                    "SRPC101",
                    f"{data.get('dir', 'transfer')} "
                    f"{data.get('src')}->{data.get('dst')} in session "
                    f"{session!r} carries no modified data set",
                    loc(index),
                    hint="the coherency protocol piggybacks the "
                    "modified data set on every call and reply "
                    "(paper §3.4)",
                    session=session,
                )
        elif event.category == "fault":
            _check_liveness(
                "fault", data, reaped_so_far, collector, loc(index)
            )
            fault_pages.add((data.get("space"), session, data.get("page")))
            if data.get("kind") == "write":
                write_faults.add(
                    (data.get("space"), session, data.get("page"))
                )
        elif event.category == "data-batch":
            _check_liveness(
                "data-batch", data, reaped_so_far, collector, loc(index)
            )
            _check_data_batch(
                data, fault_pages, inflight, collector, loc(index)
            )
        elif event.category == "write":
            _check_liveness(
                "write", data, reaped_so_far, collector, loc(index)
            )
            key = (data.get("space"), session, data.get("page"))
            if key not in write_faults:
                collector.emit(
                    "SRPC104",
                    f"space {data.get('space')!r} wrote cache page "
                    f"{data.get('page')} of session {session!r} "
                    "without a preceding write protection fault",
                    loc(index),
                    hint="clean cached pages must be write-protected "
                    "so the first store faults and marks the page "
                    "dirty",
                    session=session,
                    page=data.get("page"),
                )
        elif event.category == "session-end":
            ended.add(session)
            if session not in aborted_sessions:
                # An aborted session's clean-shutdown obligations are
                # waived: the rollback happened via abort/reap instead.
                _check_session_end(
                    events, index, data, collector, loc(index)
                )
        elif event.category == "session-abort":
            ended.add(session)
            space = data.get("space")
            if (space, session) not in reaped_anywhere:
                collector.emit(
                    "SRPC320",
                    f"space {space!r} aborted session {session!r} "
                    f"({data.get('reason', 'unknown reason')}) but "
                    "never reaped its orphaned state",
                    loc(index),
                    hint="an abort must roll the session back: unmap "
                    "its protected pages, free its allocation-table "
                    "entries and discard its staged write-back",
                    session=session,
                    space=space,
                )
        elif event.category == "orphan-reaped":
            reaped_so_far.add((data.get("space"), session))
        elif event.category == "writeback-phase":
            space = data.get("space")
            phase = data.get("phase")
            if phase == "prepare":
                prepared.add((space, session))
            elif phase == "commit" and (space, session) not in prepared:
                collector.emit(
                    "SRPC321",
                    f"space {space!r} committed a write-back for "
                    f"session {session!r} without a staged prepare",
                    loc(index),
                    hint="the two-phase write-back applies only "
                    "batches every dirty home acknowledged staging; "
                    "a commit without its prepare is exactly the "
                    "half-update the protocol exists to prevent",
                    session=session,
                    space=space,
                )
        elif event.category == "segment-handover":
            _check_segment_handover(
                data,
                segment_epochs,
                extent_shapes,
                handover_clocks,
                collector,
                loc(index),
            )
        elif event.category == "policy-decision":
            declaration = declared.get((data.get("space"), session))
            if declaration is None:
                # Undeclared (conventional or pre-policy) trace: the
                # policy rules make no promise to check.
                continue
            _check_policy_decision(
                declaration, data, collector, loc(index)
            )

    for session, index in sorted(
        first_transfer.items(), key=lambda item: item[1]
    ):
        if session not in ended:
            # ``ended`` counts aborts too: a session torn down by the
            # fault-tolerance layer did not merely trail off.
            collector.emit(
                "SRPC105",
                f"session {session!r} transferred activity but never "
                "recorded its end",
                loc(index),
                hint="close the session so write-back and the "
                "invalidation multicast run (or the trace was "
                "truncated)",
                session=session,
            )


def _check_session_end(
    events: Sequence[TraceEvent],
    index: int,
    data: dict,
    collector: DiagnosticCollector,
    location: SourceLocation,
) -> None:
    """SRPC102/SRPC103: obligations that follow a session-end record."""
    session = data.get("session")
    wrote_back = set()
    invalidated = set()
    for later in events[index + 1 :]:
        later_data = later.data or {}
        if later_data.get("session") != session:
            continue
        if later.category == "write-back":
            wrote_back.add(later_data.get("home"))
        elif later.category == "invalidate":
            invalidated.add(later_data.get("dst"))
    dirty_homes = data.get("dirty_homes") or {}
    for home in sorted(dirty_homes):
        if home not in wrote_back:
            collector.emit(
                "SRPC102",
                f"session {session!r} ended holding "
                f"{dirty_homes[home]} dirty item(s) homed at "
                f"{home!r} but never wrote them back",
                location,
                hint="at session end every modified datum must be "
                "written back to its original address space",
                session=session,
                home=home,
            )
    participants = data.get("participants") or []
    missing = [p for p in participants if p not in invalidated]
    if missing:
        collector.emit(
            "SRPC103",
            f"session {session!r} ended without invalidating "
            f"participant(s) {', '.join(repr(p) for p in missing)}",
            location,
            hint="remote pointers have no meaning after the session; "
            "every participant must drop its cached data",
            session=session,
            missing=list(missing),
        )


def _check_liveness(
    category: str,
    data: dict,
    reaped_so_far: set,
    collector: DiagnosticCollector,
    location: SourceLocation,
) -> None:
    """SRPC322: no data-plane activity at a space after it reaped."""
    space = data.get("space")
    session = data.get("session")
    if (space, session) in reaped_so_far:
        collector.emit(
            "SRPC322",
            f"space {space!r} recorded {category} activity for "
            f"session {session!r} after reaping it",
            location,
            hint="the orphan reaper must only fire on sessions whose "
            "peers are actually dead; activity after the reap means "
            "a live session was torn down under the program",
            session=session,
            space=space,
        )


def _check_data_batch(
    data: dict,
    fault_pages: set,
    inflight: dict,
    collector: DiagnosticCollector,
    location: SourceLocation,
) -> None:
    """SRPC310: one fetch-pipeline record against its discipline.

    ``inflight`` maps (space, session, fetch_id) to the set of cache
    pages the outstanding exchange covers; it is maintained across the
    whole trace replay so overlaps and unissued absorbs are caught in
    event order.
    """
    space = data.get("space")
    session = data.get("session")
    kind = data.get("kind")
    fetch_id = data.get("fetch_id")
    pages = data.get("pages") or []
    faults = data.get("faults") or []
    for page in faults:
        if (space, session, page) not in fault_pages:
            collector.emit(
                "SRPC310",
                f"space {space!r} recorded a {kind} data-batch "
                f"(fetch #{fetch_id}) claiming to cover a fault on "
                f"page {page} of session {session!r}, but no such "
                "fault was recorded",
                location,
                hint="a data-batch may only coalesce faults that "
                "actually happened; the fault event must precede the "
                "batch that serves it",
                session=session,
                page=page,
            )
    if kind == "absorb":
        if inflight.pop((space, session, fetch_id), None) is None:
            collector.emit(
                "SRPC310",
                f"space {space!r} absorbed fetch #{fetch_id} in "
                f"session {session!r} but no such fetch was in flight",
                location,
                hint="an absorb must name an earlier prefetch "
                "data-batch that was not already absorbed",
                session=session,
            )
        return
    covered = {
        page
        for (key_space, key_session, _), fetch_pages in inflight.items()
        if key_space == space and key_session == session
        for page in fetch_pages
    }
    overlap = sorted(set(pages) & covered)
    if overlap:
        collector.emit(
            "SRPC310",
            f"space {space!r} issued a {kind} data-batch "
            f"(fetch #{fetch_id}) in session {session!r} for page(s) "
            f"{', '.join(str(p) for p in overlap)} already covered by "
            "an in-flight fetch",
            location,
            hint="the pending table must suppress duplicate fetches: "
            "a fault on an in-flight page absorbs the outstanding "
            "exchange instead of issuing a new one",
            session=session,
        )
    if kind == "prefetch":
        inflight[(space, session, fetch_id)] = set(pages)


def _check_segment_handover(
    data: dict,
    segment_epochs: dict,
    extent_shapes: dict,
    handover_clocks: dict,
    collector: DiagnosticCollector,
    location: SourceLocation,
) -> None:
    """SRPC330: one zero-copy handover against the carrier's promises.

    The shm carrier ships segment offsets instead of bytes, so the
    trace is the only place the safety argument is visible offline:
    every mapping must reference the segment's *current* epoch (no
    reads of freed memory), extents must be immutable once published,
    and the receiver's clock must prove it mapped the extent after the
    sender published it.
    """
    missing = [f for f in HANDOVER_FIELDS if f not in data]
    if missing:
        collector.emit(
            "SRPC330",
            "segment-handover record lacks field(s) "
            f"{', '.join(missing)}",
            location,
            hint="every zero-copy mapping must record the full "
            "handover tuple (src, dst, kind, segment, offset, length, "
            "extent, epoch, segment_epoch) plus its site/seq/vc stamp",
            missing=missing,
        )
        return
    segment = data["segment"]
    epoch = data["epoch"]
    seg_epoch = data["segment_epoch"]
    if epoch != seg_epoch:
        collector.emit(
            "SRPC330",
            f"space {data['dst']!r} mapped extent {data['extent']} of "
            f"{segment!r} under frame epoch {epoch} while the segment "
            f"was at epoch {seg_epoch}",
            location,
            hint="a handover is only safe against the segment's "
            "current epoch; a stale-epoch mapping reads memory whose "
            "owner restarted or shut down",
            segment=segment,
        )
    highest = segment_epochs.get(segment)
    if highest is not None and seg_epoch < highest:
        collector.emit(
            "SRPC330",
            f"segment {segment!r} regressed from epoch {highest} to "
            f"{seg_epoch}",
            location,
            hint="segment epochs only bump (restart, shutdown, "
            "crash-invalidation); a regression means the segment name "
            "was recycled or the trace is corrupt",
            segment=segment,
        )
    segment_epochs[segment] = max(seg_epoch, highest or 0)
    shape = (data["offset"], data["length"])
    prior = extent_shapes.setdefault((segment, data["extent"]), shape)
    if prior != shape:
        collector.emit(
            "SRPC330",
            f"extent {data['extent']} of {segment!r} was handed over "
            f"as (offset {shape[0]}, {shape[1]}B) after an earlier "
            f"handover saw (offset {prior[0]}, {prior[1]}B)",
            location,
            hint="an extent stamp names one immutable reservation; "
            "two shapes under one stamp is a torn or recycled extent",
            segment=segment,
        )
    site = data["site"]
    vc = dict(data["vc"] or {})
    if not vc.get(data["src"]):
        collector.emit(
            "SRPC330",
            f"space {data['dst']!r} mapped an extent from "
            f"{data['src']!r} whose vector clock has no "
            f"{data['src']!r} component: the handover does not "
            "happen-after the extent was published",
            location,
            segment=segment,
        )
    previous = handover_clocks.get(site)
    if previous is not None and any(
        vc.get(peer, 0) < count for peer, count in previous.items()
    ):
        collector.emit(
            "SRPC330",
            f"site {site!r} recorded a handover whose vector clock "
            "steps backwards from its previous handover",
            location,
            hint="one site's clock only moves forward; a reordered "
            "or rewound stamp breaks the happens-before argument the "
            "sanitizer replays",
            site=site,
        )
    merged = dict(previous or {})
    for peer, count in vc.items():
        merged[peer] = max(merged.get(peer, 0), count)
    handover_clocks[site] = merged


def _check_policy_decision(
    declaration: dict,
    data: dict,
    collector: DiagnosticCollector,
    location: SourceLocation,
) -> None:
    """SRPC300-SRPC302: one data request against its declaration."""
    session = data.get("session")
    policy = declaration.get("policy")
    if declaration.get("marshalling") == "graphcopy":
        collector.emit(
            "SRPC302",
            f"space {data.get('space')!r} declared graphcopy "
            f"marshalling for session {session!r} but issued a data "
            f"request to {data.get('home')!r}",
            location,
            hint="graphcopy deep-copies closures at call time; a "
            "declared-graphcopy session has no fill-on-fault data "
            "plane to make requests from",
            session=session,
            policy=policy,
        )
        return
    promised = declaration.get("budget")
    if promised is not None and data.get("budget") != promised:
        collector.emit(
            "SRPC300",
            f"space {data.get('space')!r} requested a closure budget "
            f"of {data.get('budget')} in session {session!r} but "
            f"declared the fixed budget {promised}",
            location,
            hint="a fixed policy's per-request budget is its declared "
            "budget; only variable policies (declared budget null) "
            "may vary it",
            session=session,
            policy=policy,
        )
    if promised == 0 and (data.get("prefetch_bytes") or 0) > 0:
        collector.emit(
            "SRPC301",
            f"space {data.get('space')!r} declared the zero-budget "
            f"(lazy) policy for session {session!r} but shipped "
            f"{data.get('prefetch_bytes')} prefetched byte(s)",
            location,
            hint="a lazy run transfers exactly the demanded data; "
            "prefetched closure bytes mean the trace is mislabelled "
            "or the budget was not honoured",
            session=session,
            policy=policy,
        )


def analyze_trace_file(
    path,
    collector: DiagnosticCollector,
) -> Optional[List[TraceEvent]]:
    """Load and check one trace log; SRPC100 on I/O or format errors.

    Returns the parsed events, or ``None`` when the file was
    unreadable.
    """
    try:
        events = load_trace(path)
    except (OSError, UnicodeDecodeError) as exc:
        collector.emit(
            "SRPC100",
            f"cannot read trace log: {exc}",
            SourceLocation(file=str(path)),
        )
        return None
    except TraceFormatError as exc:
        collector.emit(
            "SRPC100",
            str(exc),
            _format_error_location(str(exc), str(path)),
        )
        return None
    check_events(events, collector, filename=str(path))
    return events


def analyze_trace_files(
    paths: Iterable,
    suppress: Optional[Iterable[str]] = None,
) -> DiagnosticCollector:
    """Check several trace logs into one fresh collector."""
    collector = DiagnosticCollector(suppress=suppress)
    for path in paths:
        analyze_trace_file(path, collector)
    return collector


def _format_error_location(message: str, filename: str) -> SourceLocation:
    """Pull ``line N`` out of a TraceFormatError message."""
    match = re.search(r"line (\d+)", message)
    line = int(match.group(1)) if match else None
    return SourceLocation(file=filename, line=line)
