"""Coherency sanitizer: happens-before race detection (SRPC4xx).

The conformance checker (:mod:`repro.analysis.trace_rules`) verifies
*per-event* protocol obligations.  This module checks the obligations
that only exist *between* events: it rebuilds the causal order of a
recorded run and reports pairs of events whose ordering violates the
paper's coherency model — which guarantees consistency only for the
single active thread of control (paper §3.4), so any genuine
concurrency between data-plane operations of one session is a bug in
the protocol machinery, not an acceptable interleaving.

Causal order comes from vector clocks.  Schema revision 2 traces
(:data:`repro.simnet.tracefmt.TRACE_SCHEMA`) record a ``vc`` stamp on
every protocol event: both carriers piggyback per-site vector clocks
on their exchanges (synchronously in the simulator, as a frame field
over TCP), and every runtime event is stamped with its site's clock at
emission.  For legacy revision-1 traces the sanitizer derives clocks
by replaying the merged log: each event ticks its site's clock, and
each ``message`` record merges the sender's clock into the receiver's.
Derived clocks over-order (the recorded interleaving is one total
order), so legacy traces still verify clean but seeded races in them
may go undetected — re-record with a stamping runtime to hunt races.

The rules:

* **SRPC400** — two writes in one session with *concurrent* clocks: a
  data race.  One session has one thread of control, so every pair of
  writes must be causally ordered.
* **SRPC401** — a page fault observed a version of a cache page older
  than a causally earlier write to that same page: a stale read (the
  fault served data that a happens-before write had replaced).
* **SRPC402** — an end-of-session invalidation whose clock is
  concurrent with data-plane activity at the participant it targets:
  the invalidation was issued without having observed that activity,
  so the participant's cached state it should cover is lost.
* **SRPC403** — data-plane activity at a participant that causally
  *follows* the invalidation of its session: use-after-invalidate
  (remote pointers have no meaning after the session).
* **SRPC404** — a write whose clock is not ordered before any
  write-back commit at the written datum's home space: the committed
  batch cannot have contained the write, so the update is lost.
* **SRPC405** — a cycle in the waits-for graph of dangling exchanges
  (request kinds whose reply never appears): distributed deadlock.
  Skipped for crash traces (aborts and orphan reaps legitimately
  leave exchanges dangling).

Rules SRPC402/SRPC403/SRPC404 apply only to sessions that ended
cleanly: an aborted session's teardown is best-effort by design and
is covered by the fault-tolerance rules (SRPC32x) instead.
"""

from __future__ import annotations

import re
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.diagnostics import (
    DiagnosticCollector,
    SourceLocation,
)
from repro.simnet.stats import TraceEvent
from repro.simnet.tracefmt import (
    SESSION_CATEGORIES,
    TraceFormatError,
    load_trace,
)
from repro.transport.vclock import concurrent, happens_before

ClockMap = Dict[str, int]

#: Request kind -> the reply kind that completes the exchange (message
#: ``kind`` wire values).  Kinds absent here (INVALIDATE, the reply
#: kinds themselves) are one-way and never leave a site waiting.
EXCHANGE_PAIRS: Dict[str, str] = {
    "call": "reply",
    "data_request": "data_reply",
    "write_back": "write_back_ack",
    "writeback_prepare": "writeback_prepare_ack",
    "writeback_commit": "writeback_commit_ack",
    "memory_batch": "memory_batch_reply",
    "type_query": "type_reply",
    "site_register": "dir_reply",
    "site_deregister": "dir_reply",
    "site_lookup": "dir_reply",
    "site_heartbeat": "dir_reply",
    "site_list": "dir_reply",
    "shutdown": "shutdown_ack",
    "status": "status_reply",
    "run_session": "run_reply",
}

#: Data-plane activity at a participant, for the invalidation rules.
_ACTIVITY_CATEGORIES = ("fault", "write", "data-batch")


# -- causal order -------------------------------------------------------------


def resolve_clocks(
    events: Sequence[TraceEvent],
) -> List[Optional[ClockMap]]:
    """One vector clock per event: recorded stamps, or derived.

    When every protocol event carries a recorded ``vc`` stamp (schema
    revision 2) the stamps are authoritative.  Otherwise clocks are
    derived by replay — see :func:`derive_clocks`.
    """
    stamped = False
    for event in events:
        if event.category in SESSION_CATEGORIES:
            if not isinstance((event.data or {}).get("vc"), dict):
                return derive_clocks(events)
            stamped = True
    if not stamped and not any(
        isinstance((e.data or {}).get("vc"), dict) for e in events
    ):
        return derive_clocks(events)
    return [
        (event.data or {}).get("vc")
        if isinstance((event.data or {}).get("vc"), dict)
        else None
        for event in events
    ]


def derive_clocks(
    events: Sequence[TraceEvent],
) -> List[Optional[ClockMap]]:
    """Derive per-event vector clocks from a legacy (unstamped) trace.

    Replays the merged log in recorded order: every event ticks its
    own site's clock, and every ``message`` record merges the sender's
    clock into the receiver's (the record precedes the receiver's
    handler events, so deliveries order what they should).  The result
    respects the recorded interleaving, which makes it conservative:
    clean traces verify clean, but concurrency the interleaving hid
    stays hidden.
    """
    clocks: Dict[str, ClockMap] = {}

    def tick(site: str) -> ClockMap:
        clock = clocks.setdefault(site, {})
        clock[site] = clock.get(site, 0) + 1
        return dict(clock)

    def merge(src: str, dst: str) -> None:
        target = clocks.setdefault(dst, {})
        for site, count in clocks.get(src, {}).items():
            if target.get(site, 0) < count:
                target[site] = count

    derived: List[Optional[ClockMap]] = []
    for event in events:
        data = event.data or {}
        if event.category == "message":
            src = data.get("src")
            dst = data.get("dst")
            derived.append(tick(src) if src else None)
            if src and dst:
                merge(src, dst)
        elif event.category in SESSION_CATEGORIES:
            site = data.get("site") or data.get("space")
            derived.append(tick(site) if site else None)
        else:
            derived.append(None)
    return derived


# -- the sanitizer ------------------------------------------------------------


def check_events(
    events: Sequence[TraceEvent],
    collector: DiagnosticCollector,
    filename: Optional[str] = None,
) -> None:
    """Run every happens-before rule over an in-memory event list."""
    vcs = resolve_clocks(events)

    def loc(index: int) -> SourceLocation:
        return SourceLocation(file=filename, line=index + 1)

    aborted: Set[Optional[str]] = set()
    reaped = False
    ended: Set[Optional[str]] = set()
    grounds: Dict[Optional[str], str] = {}
    writes: List[Tuple[int, dict, ClockMap]] = []
    faults: List[Tuple[int, dict, ClockMap]] = []
    invalidates: List[Tuple[int, dict, ClockMap]] = []
    activity: List[Tuple[int, str, dict, ClockMap]] = []
    commits: Dict[Tuple[Optional[str], Optional[str]],
                  List[Tuple[int, ClockMap]]] = {}

    for index, event in enumerate(events):
        data = event.data or {}
        vc = vcs[index]
        if event.category == "session-abort":
            aborted.add(data.get("session"))
        elif event.category == "orphan-reaped":
            reaped = True
        elif event.category == "session-end":
            ended.add(data.get("session"))
        if data.get("ground") and data.get("session"):
            grounds.setdefault(data["session"], data["ground"])
        if vc is None:
            continue
        if event.category == "write":
            writes.append((index, data, vc))
        elif event.category == "fault":
            faults.append((index, data, vc))
        elif event.category == "invalidate":
            invalidates.append((index, data, vc))
        elif event.category == "writeback-phase":
            if data.get("phase") == "commit":
                key = (data.get("session"), data.get("space"))
                commits.setdefault(key, []).append((index, vc))
        if event.category in _ACTIVITY_CATEGORIES:
            activity.append((index, event.category, data, vc))

    clean = ended - aborted

    _check_data_races(writes, clean, collector, loc)
    _check_stale_reads(writes, faults, collector, loc)
    _check_invalidations(
        invalidates, activity, clean, collector, loc
    )
    _check_lost_updates(writes, commits, clean, grounds, collector, loc)
    if not aborted and not reaped:
        _check_waits_for_cycles(events, collector, loc)


def _check_data_races(
    writes: Sequence[Tuple[int, dict, ClockMap]],
    clean: Set[Optional[str]],
    collector: DiagnosticCollector,
    loc,
) -> None:
    """SRPC400: every pair of writes in a session must be ordered.

    Only cleanly ended sessions are checked: a crashed participant's
    unacknowledged write is genuinely concurrent with the ground's
    later activity (its clock never merged back), but the abort
    discards it — that is crash recovery, not a race.
    """
    for position, (index, data, vc) in enumerate(writes):
        if data.get("session") not in clean:
            continue
        for later_index, later_data, later_vc in writes[position + 1:]:
            if data.get("session") != later_data.get("session"):
                continue
            if not concurrent(vc, later_vc):
                continue
            collector.emit(
                "SRPC400",
                f"concurrent writes in session "
                f"{data.get('session')!r}: space {data.get('space')!r} "
                f"page {data.get('page')} and space "
                f"{later_data.get('space')!r} page "
                f"{later_data.get('page')} have no happens-before "
                "order",
                loc(later_index),
                hint="a session has one thread of control; two writes "
                "with concurrent vector clocks mean two spaces "
                "modified session data at once — a data race the "
                "coherency protocol cannot repair",
                session=data.get("session"),
                other_line=index + 1,
            )


def _check_stale_reads(
    writes: Sequence[Tuple[int, dict, ClockMap]],
    faults: Sequence[Tuple[int, dict, ClockMap]],
    collector: DiagnosticCollector,
    loc,
) -> None:
    """SRPC401: no fault may observe a version an earlier write beat."""
    by_page: Dict[Tuple, List[Tuple[int, dict, ClockMap]]] = {}
    for index, data, vc in writes:
        key = (data.get("space"), data.get("session"), data.get("page"))
        by_page.setdefault(key, []).append((index, data, vc))
    for index, data, vc in faults:
        observed = data.get("version")
        if not isinstance(observed, int):
            continue
        key = (data.get("space"), data.get("session"), data.get("page"))
        for write_index, write_data, write_vc in by_page.get(key, ()):
            version = write_data.get("version")
            if not isinstance(version, int) or version <= observed:
                continue
            if happens_before(write_vc, vc):
                collector.emit(
                    "SRPC401",
                    f"space {data.get('space')!r} faulted on page "
                    f"{data.get('page')} of session "
                    f"{data.get('session')!r} observing version "
                    f"{observed}, but the write of version {version} "
                    "happens-before the fault",
                    loc(index),
                    hint="the fault served stale data: a causally "
                    "earlier write had already replaced the version "
                    "the fault observed",
                    session=data.get("session"),
                    page=data.get("page"),
                    other_line=write_index + 1,
                )


def _check_invalidations(
    invalidates: Sequence[Tuple[int, dict, ClockMap]],
    activity: Sequence[Tuple[int, str, dict, ClockMap]],
    clean: Set[Optional[str]],
    collector: DiagnosticCollector,
    loc,
) -> None:
    """SRPC402/SRPC403: invalidations versus participant activity.

    For a cleanly ended session, every data-plane event at a
    participant must happen-before the invalidation that targets the
    participant.  Activity concurrent with the invalidation means the
    invalidation was issued blind to it (SRPC402); activity causally
    after it means the participant kept using dead remote pointers
    (SRPC403).
    """
    for inv_index, inv_data, inv_vc in invalidates:
        session = inv_data.get("session")
        if session not in clean:
            continue
        target = inv_data.get("dst")
        for index, category, data, vc in activity:
            if data.get("session") != session:
                continue
            if data.get("space") != target:
                continue
            if happens_before(vc, inv_vc):
                continue
            if happens_before(inv_vc, vc):
                collector.emit(
                    "SRPC403",
                    f"space {target!r} recorded {category} activity "
                    f"for session {session!r} after its invalidation "
                    "(use-after-invalidate)",
                    loc(index),
                    hint="remote pointers have no meaning after the "
                    "session; no data-plane access may causally "
                    "follow the invalidation that ends it",
                    session=session,
                    space=target,
                    other_line=inv_index + 1,
                )
            else:
                collector.emit(
                    "SRPC402",
                    f"invalidation of session {session!r} at "
                    f"{target!r} is concurrent with that space's "
                    f"{category} activity: the invalidation never "
                    "observed it (lost invalidation)",
                    loc(inv_index),
                    hint="the end-of-session invalidation must "
                    "causally follow every participant's last "
                    "data-plane activity, or cached state escapes it",
                    session=session,
                    space=target,
                    other_line=index + 1,
                )


def _check_lost_updates(
    writes: Sequence[Tuple[int, dict, ClockMap]],
    commits: Dict[Tuple[Optional[str], Optional[str]],
                  List[Tuple[int, ClockMap]]],
    clean: Set[Optional[str]],
    grounds: Dict[Optional[str], str],
    collector: DiagnosticCollector,
    loc,
) -> None:
    """SRPC404: every write must be ordered before its home's commit.

    A write-back commit at the home space applies the staged batch; a
    write that is not happens-before any commit at its datum's home
    cannot have been in that batch, so the modification never reached
    the original data — and a cleanly ended session whose home never
    recorded a commit at all lost every write homed there.  Data homed
    at the session's ground space is exempt: the piggyback applies it
    to the originals directly, with no write-back leg.
    """
    for index, data, vc in writes:
        session = data.get("session")
        home = data.get("home")
        if session not in clean or not home:
            continue
        if home == grounds.get(session):
            continue
        home_commits = commits.get((session, home))
        if not home_commits:
            collector.emit(
                "SRPC404",
                f"write at space {data.get('space')!r} (page "
                f"{data.get('page')}, session {session!r}) was never "
                f"committed at its home {home!r}: the session ended "
                "cleanly but the update is lost",
                loc(index),
                hint="a cleanly ended session must run the two-phase "
                "write-back at every home its writes dirtied",
                session=session,
                home=home,
            )
            continue
        if any(
            happens_before(vc, commit_vc)
            for _, commit_vc in home_commits
        ):
            continue
        collector.emit(
            "SRPC404",
            f"write at space {data.get('space')!r} (page "
            f"{data.get('page')}, session {session!r}) is not "
            f"happens-before any write-back commit at its home "
            f"{home!r}: the committed batch lost the update",
            loc(index),
            hint="the two-phase write-back commits only what was "
            "staged; a write concurrent with the commit at its home "
            "never made it into the batch",
            session=session,
            home=home,
        )


def _check_waits_for_cycles(
    events: Sequence[TraceEvent],
    collector: DiagnosticCollector,
    loc,
) -> None:
    """SRPC405: no cycle among sites with dangling exchanges.

    A site *waits on* a peer when it sent a request-kind message and
    the trace holds no completing reply of the paired kind.  A cycle
    in that graph is a distributed deadlock: every site on it is
    blocked in a synchronous exchange that can only complete once its
    own pending work does.
    """
    requests: Dict[Tuple[str, str, str], int] = {}
    replies: Set[Tuple[str, str, str]] = set()
    for index, event in enumerate(events):
        if event.category != "message":
            continue
        data = event.data or {}
        src = data.get("src")
        dst = data.get("dst")
        kind = data.get("kind")
        if not src or not dst or not isinstance(kind, str):
            continue
        if kind in EXCHANGE_PAIRS:
            requests.setdefault((src, dst, kind), index)
        replies.add((src, dst, kind))

    waits: Dict[str, Dict[str, Tuple[str, int]]] = {}
    for (src, dst, kind), index in requests.items():
        if (dst, src, EXCHANGE_PAIRS[kind]) in replies:
            continue
        waits.setdefault(src, {}).setdefault(dst, (kind, index))

    reported: Set[frozenset] = set()
    for start in sorted(waits):
        cycle = _find_cycle(waits, start)
        if cycle is None:
            continue
        key = frozenset(cycle)
        if key in reported:
            continue
        reported.add(key)
        hops = []
        first_index = None
        for position, site in enumerate(cycle):
            peer = cycle[(position + 1) % len(cycle)]
            kind, index = waits[site][peer]
            hops.append(f"{site} waits on {peer} ({kind})")
            if first_index is None or index < first_index:
                first_index = index
        collector.emit(
            "SRPC405",
            "distributed deadlock: " + "; ".join(hops),
            loc(first_index if first_index is not None else 0),
            hint="every exchange is synchronous, so a waits-for cycle "
            "of unanswered requests can never complete; if a crash "
            "caused this, the trace should record the abort",
            sites=list(cycle),
        )


def _find_cycle(
    waits: Dict[str, Dict[str, Tuple[str, int]]],
    start: str,
) -> Optional[List[str]]:
    """One waits-for cycle reachable from ``start``, or ``None``."""
    path: List[str] = []
    on_path: Set[str] = set()
    visited: Set[str] = set()

    def visit(site: str) -> Optional[List[str]]:
        if site in on_path:
            return path[path.index(site):]
        if site in visited:
            return None
        visited.add(site)
        path.append(site)
        on_path.add(site)
        for peer in sorted(waits.get(site, ())):
            found = visit(peer)
            if found is not None:
                return found
        path.pop()
        on_path.discard(site)
        return None

    return visit(start)


# -- file-level entry points --------------------------------------------------


def analyze_trace_file(
    path,
    collector: DiagnosticCollector,
) -> Optional[List[TraceEvent]]:
    """Load and sanitize one trace log; SRPC100 on unreadable input."""
    try:
        events = load_trace(path)
    except (OSError, UnicodeDecodeError) as exc:
        collector.emit(
            "SRPC100",
            f"cannot read trace log: {exc}",
            SourceLocation(file=str(path)),
        )
        return None
    except TraceFormatError as exc:
        match = re.search(r"line (\d+)", str(exc))
        collector.emit(
            "SRPC100",
            str(exc),
            SourceLocation(
                file=str(path),
                line=int(match.group(1)) if match else None,
            ),
        )
        return None
    check_events(events, collector, filename=str(path))
    return events


def analyze_trace_files(
    paths: Iterable,
    suppress: Optional[Iterable[str]] = None,
) -> DiagnosticCollector:
    """Sanitize several trace logs into one fresh collector."""
    collector = DiagnosticCollector(suppress=suppress)
    for path in paths:
        analyze_trace_file(path, collector)
    return collector
