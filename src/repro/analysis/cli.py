"""The smartlint command line.

Run as ``python -m repro.analysis``::

    python -m repro.analysis examples/interfaces/inventory.x
    python -m repro.analysis run.trace --json
    python -m repro.analysis race merged.jsonl
    python -m repro.analysis --self-check

Positional arguments are files to lint.  ``.x`` files go through the
IDL/type-graph rules (``SRPC0xx``, linted together so cross-file type
conflicts surface as ``SRPC008``); everything else is treated as a
JSON-lines trace log and replayed through the conformance rules
(``SRPC1xx``).  Directories are scanned recursively for ``.x`` and
``.trace`` files.

The ``race`` subcommand runs the coherency sanitizer instead: it
rebuilds the happens-before order of each trace from its vector-clock
stamps and reports races (``SRPC4xx``) — see
:mod:`repro.analysis.sanitizer`.  It takes the same ``--json``,
``--suppress`` and ``--self-check`` options.

Options:

``--json``
    Emit the machine-readable report instead of text.
``--suppress CODES``
    Comma-separated rule codes to drop (repeatable).  Files can also
    carry ``// smartlint: disable=CODE`` directives.
``--closure-size N``
    Budget for the SRPC005 closure check (default 8192, the runtime's).
``--self-check``
    Lint the repository's own shipped interfaces and recorded example
    trace; fails if anything is reported at all.

Exit status: 0 when clean, 1 when anything was reported at error or
warning severity (suppress rules you accept), 2 on usage errors (bad
flags, missing files).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.analysis import idl_rules, sanitizer, trace_rules
from repro.analysis.diagnostics import DiagnosticCollector
from repro.analysis.render import render_json, render_text

#: Directories --self-check lints, relative to the repository root.
SELF_CHECK_PATHS = (
    "examples/interfaces",
    "tests/analysis/fixtures/traces/ok",
    "tests/analysis/fixtures/races/ok",
)

_TRACE_SUFFIXES = (".trace", ".jsonl")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "race":
        return _race_main(argv[1:])
    parser = _build_parser()
    options = parser.parse_args(argv)
    suppress = _gather_suppressions(options.suppress)

    if options.self_check:
        if options.paths:
            parser.error("--self-check takes no positional paths")
        return _self_check(options, suppress)

    if not options.paths:
        parser.error("no files to lint (or use --self-check)")

    try:
        idl_paths, trace_paths = _partition(options.paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    collector = DiagnosticCollector(suppress=suppress)
    idl_rules.analyze_files(
        idl_paths, collector, closure_size=options.closure_size
    )
    for path in trace_paths:
        trace_rules.analyze_trace_file(path, collector)

    report = (
        render_json(collector) if options.json else render_text(collector)
    )
    print(report)
    return _exit_status(collector)


def _race_main(argv: Sequence[str]) -> int:
    """The ``race`` subcommand: the coherency sanitizer over traces."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis race",
        description="Happens-before race detection (SRPC4xx) over "
        "recorded protocol traces (the coherency sanitizer).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="trace logs or directories to sanitize",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the JSON report instead of text",
    )
    parser.add_argument(
        "--suppress",
        action="append",
        default=[],
        metavar="CODES",
        help="comma-separated rule codes to drop (repeatable)",
    )
    parser.add_argument(
        "--self-check",
        action="store_true",
        help="sanitize the repository's recorded good traces; any "
        "finding fails",
    )
    parser.add_argument(
        "--root",
        default=".",
        metavar="DIR",
        help="repository root for --self-check (default: cwd)",
    )
    options = parser.parse_args(argv)
    suppress = _gather_suppressions(options.suppress)

    if options.self_check:
        if options.paths:
            parser.error("--self-check takes no positional paths")
        trace_paths, missing = _self_check_traces(Path(options.root))
        if not trace_paths:
            print(
                "error: --self-check found no recorded traces under "
                + ", ".join(SELF_CHECK_PATHS),
                file=sys.stderr,
            )
            return 2
        collector = sanitizer.analyze_trace_files(
            trace_paths, suppress=suppress
        )
        if not options.json:
            print(f"self-check: {len(trace_paths)} trace(s) sanitized")
            for relative in missing:
                print(f"self-check: skipped missing {relative}")
        print(
            render_json(collector)
            if options.json
            else render_text(collector)
        )
        return 1 if len(collector) else 0

    if not options.paths:
        parser.error("no traces to sanitize (or use --self-check)")
    try:
        _, trace_paths = _partition(options.paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    collector = sanitizer.analyze_trace_files(
        trace_paths, suppress=suppress
    )
    print(
        render_json(collector)
        if options.json
        else render_text(collector)
    )
    return _exit_status(collector)


def _self_check_traces(root: Path) -> Tuple[List[Path], List[str]]:
    """(trace files, missing dirs) under the self-check paths."""
    traces: List[Path] = []
    missing: List[str] = []
    for relative in SELF_CHECK_PATHS:
        candidate = root / relative
        if not candidate.exists():
            missing.append(relative)
            continue
        for suffix in _TRACE_SUFFIXES:
            traces.extend(sorted(candidate.rglob(f"*{suffix}")))
    return traces, missing


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis for smart-RPC interfaces and "
        "trace logs (smartlint).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=".x interface files, trace logs, or directories",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the JSON report instead of text",
    )
    parser.add_argument(
        "--suppress",
        action="append",
        default=[],
        metavar="CODES",
        help="comma-separated rule codes to drop (repeatable)",
    )
    parser.add_argument(
        "--closure-size",
        type=int,
        default=idl_rules.DEFAULT_CLOSURE_SIZE,
        metavar="BYTES",
        help="closure budget for the SRPC005 check "
        f"(default {idl_rules.DEFAULT_CLOSURE_SIZE})",
    )
    parser.add_argument(
        "--self-check",
        action="store_true",
        help="lint the repository's shipped interfaces and example "
        "trace; any finding fails",
    )
    parser.add_argument(
        "--root",
        default=".",
        metavar="DIR",
        help="repository root for --self-check (default: cwd)",
    )
    return parser


def _gather_suppressions(values: Sequence[str]) -> List[str]:
    codes: List[str] = []
    for value in values:
        codes.extend(
            code.strip() for code in value.split(",") if code.strip()
        )
    return codes


def _partition(paths: Sequence[str]) -> Tuple[List[Path], List[Path]]:
    """Split inputs into (idl files, trace files), expanding dirs."""
    idl_paths: List[Path] = []
    trace_paths: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            idl_paths.extend(sorted(path.rglob("*.x")))
            for suffix in _TRACE_SUFFIXES:
                trace_paths.extend(sorted(path.rglob(f"*{suffix}")))
            continue
        if not path.exists():
            raise FileNotFoundError(f"no such file: {path}")
        if path.suffix == ".x":
            idl_paths.append(path)
        else:
            trace_paths.append(path)
    return idl_paths, trace_paths


def _self_check(options, suppress: List[str]) -> int:
    """Lint the repo's own shipped artifacts; anything found fails."""
    root = Path(options.root)
    targets: List[str] = []
    missing: List[str] = []
    for relative in SELF_CHECK_PATHS:
        candidate = root / relative
        if candidate.exists():
            targets.append(str(candidate))
        else:
            missing.append(relative)
    if not targets:
        print(
            "error: --self-check found none of: "
            + ", ".join(SELF_CHECK_PATHS),
            file=sys.stderr,
        )
        return 2

    idl_paths, trace_paths = _partition(targets)
    collector = DiagnosticCollector(suppress=suppress)
    idl_rules.analyze_files(
        idl_paths, collector, closure_size=options.closure_size
    )
    for path in trace_paths:
        trace_rules.analyze_trace_file(path, collector)
        # The recorded good traces must also be race-free (SRPC4xx).
        sanitizer.analyze_trace_file(path, collector)

    report = (
        render_json(collector) if options.json else render_text(collector)
    )
    checked = len(idl_paths) + len(trace_paths)
    if not options.json:
        print(f"self-check: {checked} file(s) linted")
        for relative in missing:
            print(f"self-check: skipped missing {relative}")
    print(report)
    # Self-check demands a spotless repo: any diagnostic at all fails.
    return 1 if len(collector) else 0


def _exit_status(collector: DiagnosticCollector) -> int:
    """Lint-gate policy: any error or warning fails (info does not)."""
    failing = ("error", "warning")
    if any(d.severity.value in failing for d in collector):
        return 1
    return 0
