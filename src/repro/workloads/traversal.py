"""Remote tree procedures: the bodies the evaluation measures.

All three procedures run identically on the proposed method and on
both baselines — they see only ordinary pointers through
:class:`~repro.xdr.view.StructView`, which is the paper's transparency
claim made executable.

* ``search`` — depth-first visit until a target number of nodes has
  been visited (Figs. 4/5: target = ratio x total nodes);
* ``search_update`` — the same visit, updating each visited node's
  data (Fig. 7);
* ``path_search`` — repeated seeded root-to-leaf descents (Fig. 6:
  upper-level nodes are reused across searches, which is the caching
  effect the experiment repeats searches to expose).
"""

from __future__ import annotations

import random
from typing import Dict

from repro.rpc.interface import InterfaceDef, Param, ProcedureDef
from repro.rpc.runtime import CallContext, RpcRuntime
from repro.rpc.stubgen import ClientStub, bind_server
from repro.workloads.trees import TREE_NODE_TYPE_ID, local_tree_checksum
from repro.xdr.types import PointerType, int32, int64

TREE_OPS = InterfaceDef(
    "tree_ops",
    [
        ProcedureDef(
            "search",
            [
                Param("root", PointerType(TREE_NODE_TYPE_ID)),
                Param("target_nodes", int32),
            ],
            returns=int64,
        ),
        ProcedureDef(
            "search_update",
            [
                Param("root", PointerType(TREE_NODE_TYPE_ID)),
                Param("target_nodes", int32),
            ],
            returns=int64,
        ),
        ProcedureDef(
            "search_repeat",
            [
                Param("root", PointerType(TREE_NODE_TYPE_ID)),
                Param("target_nodes", int32),
                Param("repeats", int32),
            ],
            returns=int64,
        ),
        ProcedureDef(
            "path_search",
            [
                Param("root", PointerType(TREE_NODE_TYPE_ID)),
                Param("repeats", int32),
                Param("seed", int32),
            ],
            returns=int64,
        ),
    ],
)
"""The tree-search interface used by every tree experiment."""


def _visit(
    ctx: CallContext, root: int, target_nodes: int, update: bool
) -> int:
    """Depth-first visit of up to ``target_nodes`` nodes; checksum back."""
    spec = ctx.runtime.resolver.resolve(TREE_NODE_TYPE_ID)
    visited = 0
    checksum = 0
    stack = [root]
    while stack and visited < target_nodes:
        address = stack.pop()
        if address == 0:
            continue
        view = ctx.struct_view(address, spec)
        data = view.get("data")
        checksum += int.from_bytes(data, "big")
        if update:
            value = int.from_bytes(data, "big") + 1
            view.set("data", value.to_bytes(8, "big"))
        visited += 1
        ctx.runtime.clock.advance(ctx.runtime.cost_model.visit_compute)
        # Visit left before right: push right first.  Both child
        # pointers come back in one bulk access run — the page is
        # already resident after the ``data`` read above, so the run
        # never moves a fault, only the per-field checks.
        right, left = view.get_run("right", "left")
        stack.append(right)
        stack.append(left)
    return checksum


def search(ctx: CallContext, root: int, target_nodes: int) -> int:
    """Visit-only depth-first search (Figs. 4 and 5)."""
    return _visit(ctx, root, target_nodes, update=False)


def search_update(ctx: CallContext, root: int, target_nodes: int) -> int:
    """Depth-first search that updates every visited node (Fig. 7)."""
    return _visit(ctx, root, target_nodes, update=True)


def search_repeat(
    ctx: CallContext, root: int, target_nodes: int, repeats: int
) -> int:
    """The Figure 6 subject: the depth-first search repeated.

    "The nodes of the tree were remotely visited from the root to the
    leaves for 10 times.  The reason for repeating searches is to
    increase the effect of caching; nodes in the upper level will be
    reused in the subsequent searches."  The first pass pays all the
    transfers; later passes run at local-access speed.
    """
    checksum = 0
    for _ in range(repeats):
        checksum += _visit(ctx, root, target_nodes, update=False)
    return checksum


def path_search(ctx: CallContext, root: int, repeats: int, seed: int) -> int:
    """``repeats`` seeded random root-to-leaf descents (Fig. 6)."""
    spec = ctx.runtime.resolver.resolve(TREE_NODE_TYPE_ID)
    rng = random.Random(seed)
    checksum = 0
    for _ in range(repeats):
        address = root
        while address != 0:
            view = ctx.struct_view(address, spec)
            checksum += int.from_bytes(view.get("data"), "big")
            ctx.runtime.clock.advance(ctx.runtime.cost_model.visit_compute)
            left, right = view.get_run("left", "right")
            address = left if rng.random() < 0.5 else right
    return checksum


def bind_tree_server(runtime: RpcRuntime) -> None:
    """Register the tree procedures on a callee runtime."""
    bind_server(
        runtime,
        TREE_OPS,
        {
            "search": search,
            "search_update": search_update,
            "search_repeat": search_repeat,
            "path_search": path_search,
        },
    )


def tree_client(runtime: RpcRuntime, dst: str) -> ClientStub:
    """A caller-side stub for the tree procedures."""
    return ClientStub(runtime, TREE_OPS, dst)


TREE_EXPOSE = InterfaceDef(
    "tree_expose",
    [
        ProcedureDef(
            "tree_root", [], returns=PointerType(TREE_NODE_TYPE_ID)
        ),
        ProcedureDef("tree_checksum", [], returns=int64),
    ],
)
"""A server exposing a tree *it* homes, by returning its root pointer.

This inverts the usual experiment (caller-homed data walked by the
callee): here the caller receives a remote pointer into the callee's
space and may dereference — and modify — the callee's data directly.
A modifying caller exercises the session-end WRITE_BACK path, since
at close time the ground holds dirty data whose home is the callee.
``tree_checksum`` reads the tree in its home space, so a later call
observes whether written-back updates really landed (and landed once).
"""


def bind_tree_expose(runtime: RpcRuntime, root: int) -> None:
    """Serve ``TREE_EXPOSE`` for the tree rooted at ``root``."""

    def tree_root(ctx: CallContext) -> int:
        return root

    def tree_checksum(ctx: CallContext) -> int:
        return local_tree_checksum(runtime, root)

    bind_server(
        runtime,
        TREE_EXPOSE,
        {"tree_root": tree_root, "tree_checksum": tree_checksum},
    )


def tree_expose_client(runtime: RpcRuntime, dst: str) -> ClientStub:
    """A caller-side stub for the exposed-tree procedures."""
    return ClientStub(runtime, TREE_EXPOSE, dst)


def expected_search_checksum(target_nodes: int, total_nodes: int) -> int:
    """Checksum ``search`` returns on a heap-ordered complete tree.

    The depth-first left-first visit of a heap-ordered tree enumerates
    node indices in DFS order; this recomputes the same sum without a
    tree, for test assertions.
    """
    checksum = 0
    visited = 0
    stack = [0]
    while stack and visited < target_nodes:
        index = stack.pop()
        if index >= total_nodes:
            continue
        checksum += index
        visited += 1
        stack.append(2 * index + 2)
        stack.append(2 * index + 1)
    return checksum


def visit_counts(target_ratio: float, total_nodes: int) -> Dict[str, int]:
    """Translate an access ratio into a node budget (bench helper)."""
    target = int(round(target_ratio * total_nodes))
    return {"target_nodes": max(0, min(total_nodes, target))}
