"""The complete binary tree of the paper's evaluation.

"Each node of the tree has 16 bytes (two 4-byte pointers and 8-byte
data)" on the SPARC testbed.  The node type here is two pointers plus
8 opaque bytes, which lays out to exactly 16 bytes on
:data:`~repro.xdr.arch.SPARC32`.

The 8 data bytes hold the node's heap-order index (big-endian), so any
traversal can checksum what it visited and tests can verify that the
right data arrived at the right shape.
"""

from __future__ import annotations

from typing import List

from repro.rpc.runtime import RpcRuntime
from repro.xdr.types import Field, OpaqueType, PointerType, StructType

TREE_NODE_TYPE_ID = "tree_node"


def tree_node_spec() -> StructType:
    """The 16-byte (on 32-bit machines) tree node type."""
    return StructType(
        TREE_NODE_TYPE_ID,
        [
            Field("left", PointerType(TREE_NODE_TYPE_ID)),
            Field("right", PointerType(TREE_NODE_TYPE_ID)),
            Field("data", OpaqueType(8)),
        ],
    )


def register_tree_types(runtime: RpcRuntime) -> StructType:
    """Register the node type with a runtime's resolver."""
    spec = tree_node_spec()
    runtime.resolver.register(TREE_NODE_TYPE_ID, spec)
    return spec


def complete_tree_depth(num_nodes: int) -> int:
    """Depth of a complete tree of ``num_nodes`` (must be 2^k - 1)."""
    depth = num_nodes.bit_length() - 1
    if num_nodes <= 0 or num_nodes != (1 << (depth + 1)) - 1:
        raise ValueError(
            f"a complete binary tree has 2^k - 1 nodes, not {num_nodes}"
        )
    return depth


def build_complete_tree(runtime: RpcRuntime, num_nodes: int) -> int:
    """Build a complete binary tree in ``runtime``'s heap; return the root.

    Nodes are laid out in heap order: node ``i`` has children ``2i+1``
    and ``2i+2``; its data bytes are ``i`` big-endian.  Construction
    uses the raw (runtime) plane — it is experimental setup, not part
    of any measured remote procedure.
    """
    complete_tree_depth(num_nodes)  # validates the count
    spec = runtime.resolver.resolve(TREE_NODE_TYPE_ID)
    size = spec.sizeof(runtime.arch)
    layout = spec.layout(runtime.arch)
    left_off = layout.offsets["left"]
    right_off = layout.offsets["right"]
    data_off = layout.offsets["data"]
    addresses: List[int] = [
        runtime.heap.malloc(size, TREE_NODE_TYPE_ID)
        for _ in range(num_nodes)
    ]
    codec = runtime.codec
    space = runtime.space
    for index, address in enumerate(addresses):
        left_index = 2 * index + 1
        right_index = 2 * index + 2
        codec.write_pointer(
            address + left_off,
            addresses[left_index] if left_index < num_nodes else 0,
        )
        codec.write_pointer(
            address + right_off,
            addresses[right_index] if right_index < num_nodes else 0,
        )
        space.write_raw(address + data_off, index.to_bytes(8, "big"))
    return addresses[0]


def local_tree_checksum(runtime: RpcRuntime, root: int) -> int:
    """Sum of data values reachable from ``root`` (raw plane, no faults).

    Only valid in the tree's home space; used by tests and examples to
    verify what a remote traversal should have seen.
    """
    spec = runtime.resolver.resolve(TREE_NODE_TYPE_ID)
    layout = spec.layout(runtime.arch)
    total = 0
    stack = [root]
    while stack:
        address = stack.pop()
        if address == 0:
            continue
        data = runtime.space.read_raw(address + layout.offsets["data"], 8)
        total += int.from_bytes(data, "big")
        stack.append(
            runtime.codec.read_pointer(address + layout.offsets["left"])
        )
        stack.append(
            runtime.codec.read_pointer(address + layout.offsets["right"])
        )
    return total
