"""Workloads: the paper's experimental subjects.

* :mod:`repro.workloads.trees` — the complete binary tree of 16-byte
  nodes (two pointers + 8 bytes of data) used by every experiment in
  the evaluation;
* :mod:`repro.workloads.traversal` — the remote procedures run against
  the tree: depth-first visit-to-ratio (Figs. 4, 5), repeated
  root-to-leaf path search (Fig. 6), visit-with-update (Fig. 7);
* :mod:`repro.workloads.hashtable` — a bucketed hash table whose
  retrieval pattern ("a small portion of the large data") is the
  paper's example of a workload that favours laziness;
* :mod:`repro.workloads.linked_list` — list construction and mutation,
  exercising ``extended_malloc``/``extended_free``.
"""

from repro.workloads.trees import (
    TREE_NODE_TYPE_ID,
    build_complete_tree,
    local_tree_checksum,
    register_tree_types,
    tree_node_spec,
)

__all__ = [
    "TREE_NODE_TYPE_ID",
    "build_complete_tree",
    "local_tree_checksum",
    "register_tree_types",
    "tree_node_spec",
]
