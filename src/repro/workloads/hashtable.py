"""A bucketed hash table: the paper's pro-lazy workload.

"The fully lazy method is expected to show good performance when a
small portion of the large data is accessed (for example, retrieval of
a hash table)."  A lookup touches one bucket header and a short chain,
so eagerly shipping the whole table is pure waste — the workload that
sits at the opposite end of the spectrum from the full tree scan.

The table is a struct holding a fixed array of bucket-head pointers;
chain nodes hold a 64-bit key, a 16-byte value and a next pointer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.rpc.interface import InterfaceDef, Param, ProcedureDef
from repro.rpc.runtime import CallContext, RpcRuntime
from repro.rpc.stubgen import ClientStub, bind_server
from repro.xdr.types import (
    ArrayType,
    Field,
    OpaqueType,
    PointerType,
    StructType,
    int64,
)

HASH_TABLE_TYPE_ID = "hash_table"
HASH_NODE_TYPE_ID = "hash_node"
NUM_BUCKETS = 256


def hash_node_spec() -> StructType:
    """One chain node."""
    return StructType(
        HASH_NODE_TYPE_ID,
        [
            Field("next", PointerType(HASH_NODE_TYPE_ID)),
            Field("key", int64),
            Field("value", OpaqueType(16)),
        ],
    )


def hash_table_spec() -> StructType:
    """The table header: a fixed array of bucket-head pointers."""
    return StructType(
        HASH_TABLE_TYPE_ID,
        [
            Field(
                "buckets",
                ArrayType(PointerType(HASH_NODE_TYPE_ID), NUM_BUCKETS),
            ),
        ],
    )


def register_hash_types(runtime: RpcRuntime) -> None:
    """Register both hash types with a runtime's resolver."""
    runtime.resolver.register(HASH_NODE_TYPE_ID, hash_node_spec())
    runtime.resolver.register(HASH_TABLE_TYPE_ID, hash_table_spec())


def bucket_of(key: int) -> int:
    """The bucket a key chains under (a cheap multiplicative hash)."""
    return ((key * 2654435761) >> 16) % NUM_BUCKETS


def value_for(key: int) -> bytes:
    """The deterministic 16-byte value stored under ``key``."""
    return (key * key).to_bytes(16, "big", signed=False)


def build_hash_table(
    runtime: RpcRuntime, keys: List[int]
) -> Tuple[int, Dict[int, int]]:
    """Build a table holding ``keys`` in the runtime's heap.

    Returns the table address and a bucket -> chain-length histogram
    (handy for tests).  Built on the raw plane: experimental setup.
    """
    table_spec = runtime.resolver.resolve(HASH_TABLE_TYPE_ID)
    node_spec = runtime.resolver.resolve(HASH_NODE_TYPE_ID)
    arch = runtime.arch
    table = runtime.heap.malloc(table_spec.sizeof(arch), HASH_TABLE_TYPE_ID)
    buckets_field = table_spec.field("buckets")
    stride = buckets_field.spec.stride(arch)  # type: ignore[union-attr]
    base = table + table_spec.layout(arch).offsets["buckets"]
    codec = runtime.codec
    for index in range(NUM_BUCKETS):
        codec.write_pointer(base + index * stride, 0)
    node_layout = node_spec.layout(arch)
    lengths: Dict[int, int] = {}
    for key in keys:
        bucket = bucket_of(key)
        node = runtime.heap.malloc(node_spec.sizeof(arch), HASH_NODE_TYPE_ID)
        head_address = base + bucket * stride
        codec.write_pointer(
            node + node_layout.offsets["next"],
            codec.read_pointer(head_address),
        )
        runtime.space.write_raw(
            node + node_layout.offsets["key"],
            key.to_bytes(8, arch.byteorder, signed=True),
        )
        runtime.space.write_raw(
            node + node_layout.offsets["value"], value_for(key)
        )
        codec.write_pointer(head_address, node)
        lengths[bucket] = lengths.get(bucket, 0) + 1
    return table, lengths


HASH_OPS = InterfaceDef(
    "hash_ops",
    [
        ProcedureDef(
            "lookup",
            [
                Param("table", PointerType(HASH_TABLE_TYPE_ID)),
                Param("key", int64),
            ],
            returns=int64,
        ),
        ProcedureDef(
            "lookup_many",
            [
                Param("table", PointerType(HASH_TABLE_TYPE_ID)),
                Param("first_key", int64),
                Param("count", int64),
            ],
            returns=int64,
        ),
    ],
)
"""Remote hash-table retrieval interface."""


def _chain_lookup(ctx: CallContext, table: int, key: int) -> Optional[bytes]:
    # Stays on per-field access (no ``get_run``): which members are
    # read depends on the key comparison — a miss reads ``key`` and
    # ``next``, a hit reads ``key`` and ``value`` — so a fixed bulk run
    # would charge accesses the conditional walk never performs.
    table_spec = ctx.runtime.resolver.resolve(HASH_TABLE_TYPE_ID)
    node_spec = ctx.runtime.resolver.resolve(HASH_NODE_TYPE_ID)
    view = ctx.struct_view(table, table_spec)
    address = view.element("buckets", bucket_of(key))
    while address != 0:
        node = ctx.struct_view(address, node_spec)
        if node.get("key") == key:
            value = node.get("value")
            assert isinstance(value, bytes)
            return value
        next_address = node.get("next")
        assert isinstance(next_address, int)
        address = next_address
    return None


def lookup(ctx: CallContext, table: int, key: int) -> int:
    """Retrieve one key; returns the value's low 8 bytes (or -1)."""
    value = _chain_lookup(ctx, table, key)
    if value is None:
        return -1
    return int.from_bytes(value[8:], "big")


def lookup_many(
    ctx: CallContext, table: int, first_key: int, count: int
) -> int:
    """Retrieve ``count`` consecutive keys; sum of found low words."""
    total = 0
    for key in range(first_key, first_key + count):
        value = _chain_lookup(ctx, table, key)
        if value is not None:
            total += int.from_bytes(value[8:], "big")
    return total


def bind_hash_server(runtime: RpcRuntime) -> None:
    """Register the hash procedures on a callee runtime."""
    bind_server(
        runtime, HASH_OPS, {"lookup": lookup, "lookup_many": lookup_many}
    )


def hash_client(runtime: RpcRuntime, dst: str) -> ClientStub:
    """A caller-side stub for the hash procedures."""
    return ClientStub(runtime, HASH_OPS, dst)
