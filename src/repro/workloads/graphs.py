"""General object graphs: cycles and shared structure.

The tree workload never shares substructure; real heap data does.
This workload builds seeded random directed graphs — with cycles,
diamonds and multiple components — and traverses them remotely, which
exercises the parts of the method that trees cannot: closure-walk
cycle termination, swizzle cache hits on shared children, and
duplicate suppression when overlapping cones arrive.
"""

from __future__ import annotations

import random
from typing import List, Set

from repro.rpc.interface import InterfaceDef, Param, ProcedureDef
from repro.rpc.runtime import CallContext, RpcRuntime
from repro.rpc.stubgen import ClientStub, bind_server
from repro.xdr.types import (
    ArrayType,
    Field,
    PointerType,
    StructType,
    int64,
)

GRAPH_NODE_TYPE_ID = "graph_node"
OUT_DEGREE = 3


def graph_node_spec() -> StructType:
    """A node with a fixed out-edge array and a 64-bit weight."""
    return StructType(
        GRAPH_NODE_TYPE_ID,
        [
            Field("edges", ArrayType(PointerType(GRAPH_NODE_TYPE_ID),
                                     OUT_DEGREE)),
            Field("weight", int64),
        ],
    )


def register_graph_types(runtime: RpcRuntime) -> None:
    """Register the graph node type with a runtime's resolver."""
    runtime.resolver.register(GRAPH_NODE_TYPE_ID, graph_node_spec())


def build_random_graph(
    runtime: RpcRuntime, num_nodes: int, seed: int
) -> List[int]:
    """Build a seeded random directed graph; returns node addresses.

    Each node gets up to ``OUT_DEGREE`` edges to uniformly random
    nodes (self-loops and duplicates allowed — that is what makes it a
    stress test) and weight ``index + 1``.  Built on the raw plane.
    """
    spec = runtime.resolver.resolve(GRAPH_NODE_TYPE_ID)
    size = spec.sizeof(runtime.arch)
    layout = spec.layout(runtime.arch)
    stride = spec.field("edges").spec.stride(runtime.arch)  # type: ignore
    rng = random.Random(seed)
    addresses = [
        runtime.heap.malloc(size, GRAPH_NODE_TYPE_ID)
        for _ in range(num_nodes)
    ]
    for index, address in enumerate(addresses):
        for slot in range(OUT_DEGREE):
            if rng.random() < 0.75:
                target = rng.choice(addresses)
            else:
                target = 0
            runtime.codec.write_pointer(
                address + layout.offsets["edges"] + slot * stride, target
            )
        runtime.space.write_raw(
            address + layout.offsets["weight"],
            (index + 1).to_bytes(8, runtime.arch.byteorder, signed=True),
        )
    return addresses


def local_reachable_weight(runtime: RpcRuntime, start: int) -> int:
    """Raw-plane reference: sum of weights reachable from ``start``."""
    spec = runtime.resolver.resolve(GRAPH_NODE_TYPE_ID)
    layout = spec.layout(runtime.arch)
    stride = spec.field("edges").spec.stride(runtime.arch)  # type: ignore
    seen: Set[int] = set()
    stack = [start]
    total = 0
    while stack:
        address = stack.pop()
        if address == 0 or address in seen:
            continue
        seen.add(address)
        raw = runtime.space.read_raw(
            address + layout.offsets["weight"], 8
        )
        total += int.from_bytes(raw, runtime.arch.byteorder, signed=True)
        for slot in range(OUT_DEGREE):
            stack.append(
                runtime.codec.read_pointer(
                    address + layout.offsets["edges"] + slot * stride
                )
            )
    return total


GRAPH_OPS = InterfaceDef(
    "graph_ops",
    [
        ProcedureDef(
            "reachable_weight",
            [Param("start", PointerType(GRAPH_NODE_TYPE_ID))],
            returns=int64,
        ),
        ProcedureDef(
            "reachable_count",
            [Param("start", PointerType(GRAPH_NODE_TYPE_ID))],
            returns=int64,
        ),
    ],
)
"""Remote graph traversal interface."""


def _walk(ctx: CallContext, start: int):
    spec = ctx.runtime.resolver.resolve(GRAPH_NODE_TYPE_ID)
    seen: Set[int] = set()
    stack = [start]
    while stack:
        address = stack.pop()
        if address == 0 or address in seen:
            continue
        seen.add(address)
        # One bulk run covers the whole node: the weight plus every
        # out-edge slot (array members flatten into the run), charged
        # one local access per element exactly as the per-field loop
        # was.
        run = ctx.struct_view(address, spec).get_run("weight", "edges")
        yield run[0]
        stack.extend(run[1:])


def reachable_weight(ctx: CallContext, start: int) -> int:
    """Sum of weights reachable from ``start`` (cycles handled)."""
    return sum(_walk(ctx, start))


def reachable_count(ctx: CallContext, start: int) -> int:
    """Number of nodes reachable from ``start``."""
    return sum(1 for _ in _walk(ctx, start))


def bind_graph_server(runtime: RpcRuntime) -> None:
    """Register the graph procedures on a callee runtime."""
    bind_server(
        runtime,
        GRAPH_OPS,
        {
            "reachable_weight": reachable_weight,
            "reachable_count": reachable_count,
        },
    )


def graph_client(runtime: RpcRuntime, dst: str) -> ClientStub:
    """A caller-side stub for the graph procedures."""
    return ClientStub(runtime, GRAPH_OPS, dst)
