"""Linked lists: mutation and remote memory management workloads.

Beyond reads, the evaluation's machinery must handle writes (coherency)
and allocation (``extended_malloc`` batching).  These procedures build,
sum, extend and destroy singly linked lists across address spaces.
"""

from __future__ import annotations

from typing import List

from repro.rpc.interface import InterfaceDef, Param, ProcedureDef
from repro.rpc.runtime import CallContext, RpcRuntime
from repro.rpc.stubgen import ClientStub, bind_server
from repro.smartrpc.runtime import SmartRpcRuntime
from repro.xdr.types import Field, PointerType, StructType, int32, int64

LIST_NODE_TYPE_ID = "list_node"


def list_node_spec() -> StructType:
    """One list cell: a next pointer and a 32-bit value."""
    return StructType(
        LIST_NODE_TYPE_ID,
        [
            Field("next", PointerType(LIST_NODE_TYPE_ID)),
            Field("value", int32),
        ],
    )


def register_list_types(runtime: RpcRuntime) -> None:
    """Register the list node type with a runtime's resolver."""
    runtime.resolver.register(LIST_NODE_TYPE_ID, list_node_spec())


def build_list(runtime: RpcRuntime, values: List[int]) -> int:
    """Build a list holding ``values`` in heap order; return the head."""
    spec = runtime.resolver.resolve(LIST_NODE_TYPE_ID)
    layout = spec.layout(runtime.arch)
    head = 0
    for value in reversed(values):
        node = runtime.heap.malloc(
            spec.sizeof(runtime.arch), LIST_NODE_TYPE_ID
        )
        runtime.codec.write_pointer(node + layout.offsets["next"], head)
        runtime.space.write_raw(
            node + layout.offsets["value"],
            value.to_bytes(4, runtime.arch.byteorder, signed=True),
        )
        head = node
    return head


def read_list(runtime: RpcRuntime, head: int) -> List[int]:
    """Raw-plane readback of a local list (test/verification helper)."""
    spec = runtime.resolver.resolve(LIST_NODE_TYPE_ID)
    layout = spec.layout(runtime.arch)
    values = []
    address = head
    while address != 0:
        raw = runtime.space.read_raw(address + layout.offsets["value"], 4)
        values.append(
            int.from_bytes(raw, runtime.arch.byteorder, signed=True)
        )
        address = runtime.codec.read_pointer(
            address + layout.offsets["next"]
        )
    return values


LIST_OPS = InterfaceDef(
    "list_ops",
    [
        ProcedureDef(
            "total",
            [Param("head", PointerType(LIST_NODE_TYPE_ID))],
            returns=int64,
        ),
        ProcedureDef(
            "scale",
            [
                Param("head", PointerType(LIST_NODE_TYPE_ID)),
                Param("factor", int32),
            ],
            returns=int32,
        ),
        ProcedureDef(
            "append_range",
            [
                Param("head", PointerType(LIST_NODE_TYPE_ID)),
                Param("start", int32),
                Param("count", int32),
            ],
            returns=int32,
        ),
        ProcedureDef(
            "drop_negatives",
            [Param("head", PointerType(LIST_NODE_TYPE_ID))],
            returns=PointerType(LIST_NODE_TYPE_ID),
        ),
    ],
)
"""Remote list-manipulation interface."""


def total(ctx: CallContext, head: int) -> int:
    """Sum every value in the list.

    The hot loop reads both members of every node through one bulk
    access run per node: one protection check per node instead of one
    per field, with identical modelled charges.  The run plan is
    compiled once before the loop, so each node costs a single
    ``load_run`` plus one precompiled unpack — no per-node view
    construction.
    """
    from repro.xdr.view import compile_run_plan

    spec = ctx.runtime.resolver.resolve(LIST_NODE_TYPE_ID)
    plan = compile_run_plan(spec, ctx.runtime.arch, ("value", "next"))
    load_run = ctx.mem.load_run
    start, span, accesses, unpack = (
        plan.start, plan.span, plan.accesses, plan.unpack,
    )
    result = 0
    address = head
    while address != 0:
        value, address = unpack(load_run(address + start, span, accesses))
        result += value
    return result


def scale(ctx: CallContext, head: int, factor: int) -> int:
    """Multiply every value in place; returns the node count.

    Stays on per-field access: the read-modify-write per node puts a
    write fault between the first read and the next-pointer read, so
    coalescing the reads into one run would move the fault relative to
    the access charges and change the simulated timeline.
    """
    spec = ctx.runtime.resolver.resolve(LIST_NODE_TYPE_ID)
    count = 0
    address = head
    while address != 0:
        view = ctx.struct_view(address, spec)
        view.set("value", view.get("value") * factor)
        count += 1
        address = view.get("next")
    return count


def append_range(ctx: CallContext, head: int, start: int, count: int) -> int:
    """Append ``count`` fresh nodes, allocated in the *caller's* space.

    Exercises ``extended_malloc``: the callee allocates remote memory
    in the list's home space so the appended nodes survive the session.
    """
    runtime = ctx.runtime
    if not isinstance(runtime, SmartRpcRuntime):
        raise TypeError("append_range needs a smart-RPC runtime")
    spec = runtime.resolver.resolve(LIST_NODE_TYPE_ID)
    view = ctx.struct_view(head, spec)
    while view.get("next") != 0:
        next_address = view.get("next")
        assert isinstance(next_address, int)
        view = ctx.struct_view(next_address, spec)
    home = ctx.caller_site
    for index in range(count):
        node = runtime.extended_malloc(ctx, home, LIST_NODE_TYPE_ID)
        fresh = ctx.struct_view(node, spec)
        fresh.set("next", 0)
        fresh.set("value", start + index)
        view.set("next", node)
        view = fresh
    return count


def drop_negatives(ctx: CallContext, head: int) -> int:
    """Unlink and free every node with a negative value; new head back.

    Exercises ``extended_free`` on remote data and returning a pointer
    from a remote procedure.
    """
    runtime = ctx.runtime
    if not isinstance(runtime, SmartRpcRuntime):
        raise TypeError("drop_negatives needs a smart-RPC runtime")
    spec = runtime.resolver.resolve(LIST_NODE_TYPE_ID)
    while head != 0:
        view = ctx.struct_view(head, spec)
        if view.get("value") >= 0:
            break
        successor = view.get("next")
        assert isinstance(successor, int)
        runtime.extended_free(ctx, head)
        head = successor
    if head == 0:
        return 0
    previous = ctx.struct_view(head, spec)
    address = previous.get("next")
    while address != 0:
        assert isinstance(address, int)
        view = ctx.struct_view(address, spec)
        successor = view.get("next")
        assert isinstance(successor, int)
        if view.get("value") < 0:
            previous.set("next", successor)
            runtime.extended_free(ctx, address)
        else:
            previous = view
        address = successor
    return head


def bind_list_server(runtime: RpcRuntime) -> None:
    """Register the list procedures on a callee runtime."""
    bind_server(
        runtime,
        LIST_OPS,
        {
            "total": total,
            "scale": scale,
            "append_range": append_range,
            "drop_negatives": drop_negatives,
        },
    )


def list_client(runtime: RpcRuntime, dst: str) -> ClientStub:
    """A caller-side stub for the list procedures."""
    return ClientStub(runtime, LIST_OPS, dst)
