"""Smart Remote Procedure Calls: transparent treatment of remote pointers.

A from-scratch reproduction of Kono, Kato & Masuda (ICDCS 1994) as a
simulated distributed system:

* :mod:`repro.simnet` — simulated clock, cost model, network, sites;
* :mod:`repro.memory` — paged virtual memory with page protection and
  user-level fault handling (the MMU substrate);
* :mod:`repro.xdr` — the canonical data representation, type system and
  per-architecture layouts (the heterogeneity substrate);
* :mod:`repro.namesvc` — the type name server;
* :mod:`repro.rpc` — the conventional RPC substrate (stubs, sessions,
  nested calls, callbacks);
* :mod:`repro.smartrpc` — the paper's contribution: long pointers,
  pointer swizzling, the data allocation table, fault-driven caching
  with eager closures, the session coherency protocol, and
  ``extended_malloc`` / ``extended_free``;
* :mod:`repro.baselines` — the fully eager and fully lazy baselines,
  now presets of :mod:`repro.smartrpc.policy`;
* :mod:`repro.workloads` — the evaluation's subjects;
* :mod:`repro.bench` — the harness that regenerates every figure and
  table in the paper's evaluation.

Quickstart::

    from repro.simnet import Network
    from repro.smartrpc import SmartRpcRuntime
    from repro.xdr import SPARC32

    network = Network()
    caller = SmartRpcRuntime(network, network.add_site("A"), SPARC32)
    callee = SmartRpcRuntime(network, network.add_site("B"), SPARC32)
    # ... define an interface with PointerType parameters, bind_server
    # on the callee, and call through a ClientStub inside a session.

See ``examples/quickstart.py`` for the complete version.
"""

from repro.baselines import FullyEagerRpc
from repro.memory import AddressSpace, Heap, Mem, Protection
from repro.namesvc import TypeNameServer, TypeResolver
from repro.rpc import (
    CallContext,
    ClientStub,
    InterfaceDef,
    Param,
    ProcedureDef,
    RpcRuntime,
    RpcSession,
    bind_server,
)
from repro.simnet import CostModel, Network, SimClock
from repro.smartrpc import LongPointer, SmartRpcRuntime

__version__ = "1.0.0"

__all__ = [
    "AddressSpace",
    "CallContext",
    "ClientStub",
    "CostModel",
    "FullyEagerRpc",
    "Heap",
    "InterfaceDef",
    "LongPointer",
    "Mem",
    "Network",
    "Param",
    "ProcedureDef",
    "Protection",
    "RpcRuntime",
    "RpcSession",
    "SimClock",
    "SmartRpcRuntime",
    "TypeNameServer",
    "TypeResolver",
    "bind_server",
    "__version__",
]
