"""Typed program-level views over memory.

Workload code reads and writes struct fields through
:class:`StructView`, which goes through the *checked* access plane
(:class:`~repro.memory.accessor.Mem`).  This is the simulation's stand-in
for compiled field accesses: a protected page faults exactly once, the
fault handler fills it, and the access then completes — transparently
to the workload, which is the paper's headline property.
"""

from __future__ import annotations

import operator
import struct
from typing import Dict, Tuple, Union

from repro.memory.accessor import Mem
from repro.xdr.arch import Architecture
from repro.xdr.errors import XdrError
from repro.xdr.types import (
    ArrayType,
    EnumType,
    OpaqueType,
    PointerType,
    ScalarType,
    StructType,
    TypeSpec,
)

FieldValue = Union[int, float, bytes]


class RunPlan:
    """A compiled bulk-read plan for a run of struct members.

    One checked access covers the byte span ``[start, start + span)``
    relative to the struct base; :meth:`unpack` decodes the named
    members out of the blob with one precompiled :class:`struct.Struct`
    call.  ``accesses`` is the modelled access count the run replaces
    (one per member; one per element for array members), which the
    accessor charges so simulated time stays identical to a per-field
    loop.
    """

    __slots__ = ("start", "span", "accesses", "_struct", "_order")

    def __init__(
        self,
        start: int,
        span: int,
        accesses: int,
        codec: struct.Struct,
        order: Tuple[int, ...],
    ) -> None:
        self.start = start
        self.span = span
        self.accesses = accesses
        self._struct = codec
        if order == tuple(range(len(order))):
            self._order = None
        elif len(order) == 1:
            index = order[0]
            self._order = lambda values: (values[index],)
        else:
            # itemgetter with several indices returns a tuple at C speed.
            self._order = operator.itemgetter(*order)

    def unpack(self, blob: bytes) -> tuple:
        """Decode the run's values (``names`` order, arrays flattened)."""
        values = self._struct.unpack(blob)
        if self._order is None:
            return values
        return self._order(values)


def _field_codes(spec: TypeSpec, arch: Architecture) -> Tuple[str, int, int, int]:
    """(struct codes, in-memory size, value count, access count)."""
    if isinstance(spec, ScalarType):
        return spec.kind.struct_code, spec.kind.size, 1, 1
    if isinstance(spec, PointerType):
        code = {4: "I", 8: "Q"}.get(arch.pointer_size)
        if code is None:
            raise XdrError(
                f"no run codec for {arch.pointer_size}-byte pointers"
            )
        return code, arch.pointer_size, 1, 1
    if isinstance(spec, OpaqueType):
        return f"{spec.length}s", spec.length, 1, 1
    if isinstance(spec, EnumType):
        return "i", 4, 1, 1
    if isinstance(spec, ArrayType):
        codes, size, nvalues, accesses = _field_codes(spec.element, arch)
        if nvalues != 1 or size != spec.stride(arch):
            raise XdrError(
                f"array of {spec.element!r} cannot join an access run"
            )
        return codes * spec.count, size * spec.count, spec.count, accesses * spec.count
    raise XdrError(f"cannot load field of type {spec!r} in an access run")


def compile_run_plan(
    spec: StructType, arch: Architecture, names: Tuple[str, ...]
) -> RunPlan:
    """The (memoised) bulk-read plan for ``names`` of ``spec``.

    Plans are cached on the struct spec itself, keyed by architecture
    and name tuple, so hot traversal loops compile each run once.
    """
    cache: Dict[Tuple[str, Tuple[str, ...]], RunPlan]
    cache = getattr(spec, "_run_plans", None)
    if cache is None:
        cache = {}
        spec._run_plans = cache  # type: ignore[attr-defined]
    key = (arch.name, names)
    plan = cache.get(key)
    if plan is None:
        plan = _compile_run_plan(spec, arch, names)
        cache[key] = plan
    return plan


def _compile_run_plan(
    spec: StructType, arch: Architecture, names: Tuple[str, ...]
) -> RunPlan:
    if not names:
        raise XdrError("an access run needs at least one field")
    layout = spec.layout(arch)
    items = []
    for name in names:
        field = spec.field(name)
        codes, size, nvalues, accesses = _field_codes(field.spec, arch)
        items.append((layout.offsets[name], size, codes, nvalues, accesses, name))
    items.sort()
    start = items[0][0]
    fmt = ">" if arch.byteorder == "big" else "<"
    cursor = start
    accesses_total = 0
    positions: Dict[str, Tuple[int, int]] = {}
    index = 0
    for offset, size, codes, nvalues, accesses, name in items:
        if offset < cursor:
            raise XdrError(
                f"fields of {spec.name!r} overlap in access run {names!r}"
            )
        if offset > cursor:
            fmt += f"{offset - cursor}x"
        fmt += codes
        positions[name] = (index, nvalues)
        index += nvalues
        cursor = offset + size
        accesses_total += accesses
    order = []
    for name in names:
        first, nvalues = positions[name]
        order.extend(range(first, first + nvalues))
    return RunPlan(
        start, cursor - start, accesses_total,
        struct.Struct(fmt), tuple(order),
    )


class StructView:
    """One struct instance at a fixed address, seen through ``Mem``."""

    def __init__(
        self,
        mem: Mem,
        address: int,
        spec: StructType,
        arch: Architecture,
    ) -> None:
        self.mem = mem
        self.address = address
        self.spec = spec
        self.arch = arch
        self._layout = spec.layout(arch)

    def field_address(self, name: str) -> int:
        """Absolute address of a member."""
        return self.address + self._layout.offsets[name]

    def get(self, name: str) -> FieldValue:
        """Load a member (pointer members load as integer addresses)."""
        field = self.spec.field(name)
        return self._load(self.field_address(name), field.spec)

    def set(self, name: str, value: FieldValue) -> None:
        """Store a member."""
        field = self.spec.field(name)
        self._store(self.field_address(name), field.spec, value)

    def element(self, name: str, index: int) -> FieldValue:
        """Load one element of an array member."""
        field = self.spec.field(name)
        if not isinstance(field.spec, ArrayType):
            raise XdrError(f"field {name!r} is not an array")
        if not 0 <= index < field.spec.count:
            raise XdrError(f"array index {index!r} out of range")
        stride = field.spec.stride(self.arch)
        return self._load(
            self.field_address(name) + index * stride, field.spec.element
        )

    def get_run(self, *names: str) -> tuple:
        """Load several members with one checked access run.

        The named members' contiguous byte span (padding included) is
        read in a single :meth:`Mem.load_run`, so the protection check
        and fault retry are paid once per struct instead of once per
        field; the clock is still charged once per member (per element
        for array members) and the observer sees one coalesced
        callback.  Values come back in argument order, array members
        flattened into individual elements.
        """
        plan = compile_run_plan(self.spec, self.arch, names)
        blob = self.mem.load_run(
            self.address + plan.start, plan.span, plan.accesses
        )
        return plan.unpack(blob)

    def view(self, name: str, spec: StructType) -> "StructView":
        """Follow a pointer member to a struct of type ``spec``."""
        pointer = self.get(name)
        if not isinstance(pointer, int) or pointer == 0:
            raise XdrError(f"field {name!r} is not a valid pointer")
        return StructView(self.mem, pointer, spec, self.arch)

    # -- internals ----------------------------------------------------------

    def _load(self, address: int, spec: TypeSpec) -> FieldValue:
        if isinstance(spec, ScalarType):
            raw = self.mem.load(address, spec.kind.size)
            return spec.unpack_raw(raw, self.arch)
        if isinstance(spec, PointerType):
            raw = self.mem.load(address, self.arch.pointer_size)
            return int.from_bytes(raw, self.arch.byteorder)
        if isinstance(spec, OpaqueType):
            return self.mem.load(address, spec.length)
        if isinstance(spec, EnumType):
            raw = self.mem.load(address, 4)
            return int.from_bytes(raw, self.arch.byteorder, signed=True)
        raise XdrError(f"cannot load aggregate field of type {spec!r}")

    def _store(self, address: int, spec: TypeSpec, value: FieldValue) -> None:
        if isinstance(spec, ScalarType):
            if isinstance(value, bytes):
                raise XdrError(f"scalar field given bytes value {value!r}")
            self.mem.store(address, spec.pack_raw(value, self.arch))
        elif isinstance(spec, PointerType):
            if not isinstance(value, int):
                raise XdrError(f"pointer field given {value!r}")
            self.mem.store(
                address,
                value.to_bytes(self.arch.pointer_size, self.arch.byteorder),
            )
        elif isinstance(spec, OpaqueType):
            if not isinstance(value, bytes) or len(value) != spec.length:
                raise XdrError(
                    f"opaque field of {spec.length} bytes given {value!r}"
                )
            self.mem.store(address, value)
        elif isinstance(spec, EnumType):
            if isinstance(value, str):
                value = spec.value_of(value)
            if not isinstance(value, int) or not spec.is_valid(value):
                raise XdrError(
                    f"enum field {spec.name!r} given {value!r}"
                )
            self.mem.store(
                address,
                value.to_bytes(4, self.arch.byteorder, signed=True),
            )
        else:
            raise XdrError(f"cannot store aggregate field of type {spec!r}")
