"""Typed program-level views over memory.

Workload code reads and writes struct fields through
:class:`StructView`, which goes through the *checked* access plane
(:class:`~repro.memory.accessor.Mem`).  This is the simulation's stand-in
for compiled field accesses: a protected page faults exactly once, the
fault handler fills it, and the access then completes — transparently
to the workload, which is the paper's headline property.
"""

from __future__ import annotations

from typing import Union

from repro.memory.accessor import Mem
from repro.xdr.arch import Architecture
from repro.xdr.errors import XdrError
from repro.xdr.types import (
    ArrayType,
    EnumType,
    OpaqueType,
    PointerType,
    ScalarType,
    StructType,
    TypeSpec,
)

FieldValue = Union[int, float, bytes]


class StructView:
    """One struct instance at a fixed address, seen through ``Mem``."""

    def __init__(
        self,
        mem: Mem,
        address: int,
        spec: StructType,
        arch: Architecture,
    ) -> None:
        self.mem = mem
        self.address = address
        self.spec = spec
        self.arch = arch
        self._layout = spec.layout(arch)

    def field_address(self, name: str) -> int:
        """Absolute address of a member."""
        return self.address + self._layout.offsets[name]

    def get(self, name: str) -> FieldValue:
        """Load a member (pointer members load as integer addresses)."""
        field = self.spec.field(name)
        return self._load(self.field_address(name), field.spec)

    def set(self, name: str, value: FieldValue) -> None:
        """Store a member."""
        field = self.spec.field(name)
        self._store(self.field_address(name), field.spec, value)

    def element(self, name: str, index: int) -> FieldValue:
        """Load one element of an array member."""
        field = self.spec.field(name)
        if not isinstance(field.spec, ArrayType):
            raise XdrError(f"field {name!r} is not an array")
        if not 0 <= index < field.spec.count:
            raise XdrError(f"array index {index!r} out of range")
        stride = field.spec.stride(self.arch)
        return self._load(
            self.field_address(name) + index * stride, field.spec.element
        )

    def view(self, name: str, spec: StructType) -> "StructView":
        """Follow a pointer member to a struct of type ``spec``."""
        pointer = self.get(name)
        if not isinstance(pointer, int) or pointer == 0:
            raise XdrError(f"field {name!r} is not a valid pointer")
        return StructView(self.mem, pointer, spec, self.arch)

    # -- internals ----------------------------------------------------------

    def _load(self, address: int, spec: TypeSpec) -> FieldValue:
        if isinstance(spec, ScalarType):
            raw = self.mem.load(address, spec.kind.size)
            return spec.unpack_raw(raw, self.arch)
        if isinstance(spec, PointerType):
            raw = self.mem.load(address, self.arch.pointer_size)
            return int.from_bytes(raw, self.arch.byteorder)
        if isinstance(spec, OpaqueType):
            return self.mem.load(address, spec.length)
        if isinstance(spec, EnumType):
            raw = self.mem.load(address, 4)
            return int.from_bytes(raw, self.arch.byteorder, signed=True)
        raise XdrError(f"cannot load aggregate field of type {spec!r}")

    def _store(self, address: int, spec: TypeSpec, value: FieldValue) -> None:
        if isinstance(spec, ScalarType):
            if isinstance(value, bytes):
                raise XdrError(f"scalar field given bytes value {value!r}")
            self.mem.store(address, spec.pack_raw(value, self.arch))
        elif isinstance(spec, PointerType):
            if not isinstance(value, int):
                raise XdrError(f"pointer field given {value!r}")
            self.mem.store(
                address,
                value.to_bytes(self.arch.pointer_size, self.arch.byteorder),
            )
        elif isinstance(spec, OpaqueType):
            if not isinstance(value, bytes) or len(value) != spec.length:
                raise XdrError(
                    f"opaque field of {spec.length} bytes given {value!r}"
                )
            self.mem.store(address, value)
        elif isinstance(spec, EnumType):
            if isinstance(value, str):
                value = spec.value_of(value)
            if not isinstance(value, int) or not spec.is_valid(value):
                raise XdrError(
                    f"enum field {spec.name!r} given {value!r}"
                )
            self.mem.store(
                address,
                value.to_bytes(4, self.arch.byteorder, signed=True),
            )
        else:
            raise XdrError(f"cannot store aggregate field of type {spec!r}")
