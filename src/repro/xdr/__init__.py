"""Canonical data representation (XDR) and the heterogeneity machinery.

The original system used Sun XDR (RFC 1014) as the canonical wire
representation so that SPARCs and other CPUs could interchange typed
data.  This package rebuilds that stack from scratch:

* :class:`~repro.xdr.arch.Architecture` — byte order, pointer width and
  alignment rules of one machine;
* :mod:`repro.xdr.types` — the data-type specifiers (scalars, opaque,
  fixed arrays, structs, pointers) with per-architecture layout
  (sizeof / alignment / field offsets);
* :mod:`repro.xdr.stream` — ``XdrEncoder`` / ``XdrDecoder``, the
  big-endian 4-byte-unit canonical stream every message body uses;
* :mod:`repro.xdr.raw` — converting between a type's raw in-memory
  bytes on some architecture and its canonical form, with pluggable
  pointer hooks (that is where swizzling plugs in);
* :class:`~repro.xdr.registry.TypeRegistry` — the database mapping data
  type specifiers (string ids) to actual structures.
"""

from repro.xdr.arch import ALPHA64, SPARC32, X86_64, Architecture
from repro.xdr.errors import XdrError
from repro.xdr.raw import RawCodec
from repro.xdr.registry import TypeRegistry
from repro.xdr.stream import XdrDecoder, XdrEncoder
from repro.xdr.types import (
    ArrayType,
    EnumType,
    Field,
    OpaqueType,
    PointerType,
    ScalarKind,
    ScalarType,
    StructType,
    TypeSpec,
    UnionType,
    float32,
    float64,
    int8,
    int16,
    int32,
    int64,
    uint8,
    uint16,
    uint32,
    uint64,
)

__all__ = [
    "ALPHA64",
    "Architecture",
    "ArrayType",
    "EnumType",
    "Field",
    "UnionType",
    "OpaqueType",
    "PointerType",
    "RawCodec",
    "ScalarKind",
    "ScalarType",
    "SPARC32",
    "StructType",
    "TypeRegistry",
    "TypeSpec",
    "X86_64",
    "XdrDecoder",
    "XdrEncoder",
    "XdrError",
    "float32",
    "float64",
    "int8",
    "int16",
    "int32",
    "int64",
    "uint8",
    "uint16",
    "uint32",
    "uint64",
]
