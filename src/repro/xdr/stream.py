"""XDR canonical streams (RFC 1014 discipline, rebuilt from scratch).

Everything that crosses the simulated wire — RPC headers, arguments,
data-transfer batches, coherency traffic — is produced by
:class:`XdrEncoder` and consumed by :class:`XdrDecoder`.  The canonical
form is big-endian with every item padded to a multiple of 4 bytes,
matching the XDR the original system used, so encoded sizes (and thus
the simulated wire costs) are realistic.

The streams are built for a zero-copy wire path:

* :class:`XdrEncoder` writes into one growable ``bytearray`` (grown
  geometrically, packed in place with ``struct.pack_into``) instead of
  accumulating per-field ``bytes`` chunks; :meth:`XdrEncoder.getbuffer`
  exposes the encoded region as a ``memoryview`` so framing can copy a
  payload onto the wire exactly once.  Buffers can be pooled across
  messages via :meth:`XdrEncoder.pooled` / :meth:`XdrEncoder.release`.
* :class:`XdrDecoder` reads through a ``memoryview`` with
  ``unpack_from`` — no intermediate slice objects — and accepts
  ``bytes``, ``bytearray`` or ``memoryview`` input, so nested decoders
  (frame -> batch -> item) can share one buffer.  The ``*_view``
  readers hand back sub-views without copying.
"""

from __future__ import annotations

import struct
from typing import List, Union

from repro.xdr.errors import XdrError

_UINT32_MAX = 0xFFFFFFFF
_UINT64_MAX = 0xFFFFFFFFFFFFFFFF

_U32 = struct.Struct(">I")
_I32 = struct.Struct(">i")
_U64 = struct.Struct(">Q")
_I64 = struct.Struct(">q")
_F32 = struct.Struct(">f")
_F64 = struct.Struct(">d")

_ZEROS = bytes(4)

#: Free list of encoder buffers (see :meth:`XdrEncoder.pooled`).  Plain
#: list append/pop are atomic under the GIL, which is all the thread
#: safety the transport's handler pool needs.
_BUFFER_POOL: List[bytearray] = []
_BUFFER_POOL_LIMIT = 16
_POOLED_BUFFER_BYTES = 8192

Readable = Union[bytes, bytearray, memoryview]


class XdrEncoder:
    """Append-only canonical stream writer over one growable buffer.

    Fields are packed straight onto a single ``bytearray`` (amortised
    in-place growth), so a message costs one buffer instead of one
    ``bytes`` chunk per field plus a join.
    """

    __slots__ = ("_buf",)

    def __init__(self, buffer: bytearray = None) -> None:
        self._buf = bytearray() if buffer is None else buffer

    @classmethod
    def pooled(cls) -> "XdrEncoder":
        """An encoder backed by a recycled buffer (see :meth:`release`)."""
        try:
            buffer = _BUFFER_POOL.pop()
        except IndexError:
            buffer = bytearray()
        return cls(buffer=buffer)

    def release(self) -> None:
        """Return the backing buffer to the pool; the encoder is dead."""
        buffer, self._buf = self._buf, bytearray()
        try:
            del buffer[:]
        except BufferError:
            return  # a live view still pins the buffer; leave it to GC
        if len(_BUFFER_POOL) < _BUFFER_POOL_LIMIT:
            _BUFFER_POOL.append(buffer)

    # -- integers -----------------------------------------------------------

    def pack_uint32(self, value: int) -> None:
        """Append an unsigned 32-bit integer."""
        if not 0 <= value <= _UINT32_MAX:
            raise XdrError(f"uint32 out of range: {value!r}")
        self._buf += _U32.pack(value)

    def pack_int32(self, value: int) -> None:
        """Append a signed 32-bit integer."""
        if not -(2**31) <= value < 2**31:
            raise XdrError(f"int32 out of range: {value!r}")
        self._buf += _I32.pack(value)

    def pack_uint64(self, value: int) -> None:
        """Append an unsigned 64-bit integer (XDR "unsigned hyper")."""
        if not 0 <= value <= _UINT64_MAX:
            raise XdrError(f"uint64 out of range: {value!r}")
        self._buf += _U64.pack(value)

    def pack_int64(self, value: int) -> None:
        """Append a signed 64-bit integer (XDR "hyper")."""
        if not -(2**63) <= value < 2**63:
            raise XdrError(f"int64 out of range: {value!r}")
        self._buf += _I64.pack(value)

    def pack_bool(self, value: bool) -> None:
        """Append a boolean as a 32-bit 0/1."""
        self.pack_uint32(1 if value else 0)

    # -- floats -------------------------------------------------------------

    def pack_float(self, value: float) -> None:
        """Append an IEEE single."""
        self._buf += _F32.pack(value)

    def pack_double(self, value: float) -> None:
        """Append an IEEE double."""
        self._buf += _F64.pack(value)

    # -- byte sequences -------------------------------------------------------

    def pack_fixed_opaque(self, data: Readable) -> None:
        """Append fixed-length opaque data, padded to 4 bytes."""
        buf = self._buf
        buf += data
        padding = -len(buf) % 4
        if padding:
            buf += _ZEROS[:padding]

    def pack_opaque(self, data: Readable) -> None:
        """Append variable-length opaque data (length prefix + padding)."""
        self.pack_uint32(len(data))
        self.pack_fixed_opaque(data)

    def pack_string(self, text: str) -> None:
        """Append a UTF-8 string as variable-length opaque."""
        self.pack_opaque(text.encode("utf-8"))

    # -- result ---------------------------------------------------------------

    def getvalue(self) -> bytes:
        """The canonical byte string written so far (one copy)."""
        return bytes(self._buf)

    def getbuffer(self) -> memoryview:
        """Zero-copy view of the encoded region.

        The view aliases the live buffer: consume (or copy) it before
        encoding anything further or releasing the encoder.
        """
        return memoryview(self._buf)

    @property
    def size(self) -> int:
        """Bytes written so far."""
        return len(self._buf)

    def reset(self) -> None:
        """Rewind to empty, keeping the backing buffer object."""
        del self._buf[:]


class XdrDecoder:
    """Sequential canonical stream reader over a ``memoryview``."""

    __slots__ = ("_view", "_len", "_cursor")

    def __init__(self, data: Readable) -> None:
        view = data if isinstance(data, memoryview) else memoryview(data)
        if view.format != "B":
            view = view.cast("B")
        self._view = view
        self._len = len(view)
        self._cursor = 0

    # -- integers -----------------------------------------------------------

    def unpack_uint32(self) -> int:
        """Read an unsigned 32-bit integer."""
        return _U32.unpack_from(self._view, self._advance(4))[0]

    def unpack_int32(self) -> int:
        """Read a signed 32-bit integer."""
        return _I32.unpack_from(self._view, self._advance(4))[0]

    def unpack_uint64(self) -> int:
        """Read an unsigned 64-bit integer."""
        return _U64.unpack_from(self._view, self._advance(8))[0]

    def unpack_int64(self) -> int:
        """Read a signed 64-bit integer."""
        return _I64.unpack_from(self._view, self._advance(8))[0]

    def unpack_bool(self) -> bool:
        """Read a boolean."""
        value = self.unpack_uint32()
        if value not in (0, 1):
            raise XdrError(f"bad boolean encoding {value!r}")
        return bool(value)

    # -- floats -------------------------------------------------------------

    def unpack_float(self) -> float:
        """Read an IEEE single."""
        return _F32.unpack_from(self._view, self._advance(4))[0]

    def unpack_double(self) -> float:
        """Read an IEEE double."""
        return _F64.unpack_from(self._view, self._advance(8))[0]

    # -- byte sequences -------------------------------------------------------

    def unpack_fixed_opaque(self, length: int) -> bytes:
        """Read fixed-length opaque data (and its padding): one copy."""
        return bytes(self.unpack_fixed_view(length))

    def unpack_fixed_view(self, length: int) -> memoryview:
        """Zero-copy view of fixed-length opaque data (and its padding).

        The view aliases the decoder's input buffer; copy it if it must
        outlive the buffer.
        """
        offset = self._advance(length)
        data = self._view[offset : offset + length]
        self._skip_pad(length)
        return data

    def unpack_opaque(self) -> bytes:
        """Read variable-length opaque data."""
        return self.unpack_fixed_opaque(self.unpack_uint32())

    def unpack_opaque_view(self) -> memoryview:
        """Zero-copy view of variable-length opaque data."""
        return self.unpack_fixed_view(self.unpack_uint32())

    def unpack_string(self) -> str:
        """Read a UTF-8 string."""
        return str(self.unpack_fixed_view(self.unpack_uint32()), "utf-8")

    # -- cursor ---------------------------------------------------------------

    @property
    def remaining(self) -> int:
        """Bytes left unread."""
        return self._len - self._cursor

    def done(self) -> bool:
        """Whether the whole stream has been consumed."""
        return self._cursor == self._len

    def expect_done(self) -> None:
        """Raise unless the stream is fully consumed (framing check)."""
        if not self.done():
            raise XdrError(f"{self.remaining} trailing bytes in XDR stream")

    def _advance(self, size: int) -> int:
        """Consume ``size`` bytes; return their offset (no slicing)."""
        offset = self._cursor
        if offset + size > self._len:
            raise XdrError(
                f"XDR underflow: need {size} bytes, "
                f"have {self._len - offset}"
            )
        self._cursor = offset + size
        return offset

    def _skip_pad(self, length: int) -> None:
        padding = -length % 4
        if padding:
            offset = self._advance(padding)
            pad = self._view[offset : offset + padding]
            if pad != _ZEROS[:padding]:
                raise XdrError(f"nonzero XDR padding {bytes(pad)!r}")
