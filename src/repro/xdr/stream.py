"""XDR canonical streams (RFC 1014 discipline, rebuilt from scratch).

Everything that crosses the simulated wire — RPC headers, arguments,
data-transfer batches, coherency traffic — is produced by
:class:`XdrEncoder` and consumed by :class:`XdrDecoder`.  The canonical
form is big-endian with every item padded to a multiple of 4 bytes,
matching the XDR the original system used, so encoded sizes (and thus
the simulated wire costs) are realistic.
"""

from __future__ import annotations

import struct
from typing import List

from repro.xdr.errors import XdrError

_UINT32_MAX = 0xFFFFFFFF
_UINT64_MAX = 0xFFFFFFFFFFFFFFFF


class XdrEncoder:
    """Append-only canonical stream writer."""

    def __init__(self) -> None:
        self._chunks: List[bytes] = []
        self._size = 0

    # -- integers -----------------------------------------------------------

    def pack_uint32(self, value: int) -> None:
        """Append an unsigned 32-bit integer."""
        if not 0 <= value <= _UINT32_MAX:
            raise XdrError(f"uint32 out of range: {value!r}")
        self._append(struct.pack(">I", value))

    def pack_int32(self, value: int) -> None:
        """Append a signed 32-bit integer."""
        if not -(2**31) <= value < 2**31:
            raise XdrError(f"int32 out of range: {value!r}")
        self._append(struct.pack(">i", value))

    def pack_uint64(self, value: int) -> None:
        """Append an unsigned 64-bit integer (XDR "unsigned hyper")."""
        if not 0 <= value <= _UINT64_MAX:
            raise XdrError(f"uint64 out of range: {value!r}")
        self._append(struct.pack(">Q", value))

    def pack_int64(self, value: int) -> None:
        """Append a signed 64-bit integer (XDR "hyper")."""
        if not -(2**63) <= value < 2**63:
            raise XdrError(f"int64 out of range: {value!r}")
        self._append(struct.pack(">q", value))

    def pack_bool(self, value: bool) -> None:
        """Append a boolean as a 32-bit 0/1."""
        self.pack_uint32(1 if value else 0)

    # -- floats -------------------------------------------------------------

    def pack_float(self, value: float) -> None:
        """Append an IEEE single."""
        self._append(struct.pack(">f", value))

    def pack_double(self, value: float) -> None:
        """Append an IEEE double."""
        self._append(struct.pack(">d", value))

    # -- byte sequences -------------------------------------------------------

    def pack_fixed_opaque(self, data: bytes) -> None:
        """Append fixed-length opaque data, padded to 4 bytes."""
        self._append(data)
        self._pad()

    def pack_opaque(self, data: bytes) -> None:
        """Append variable-length opaque data (length prefix + padding)."""
        self.pack_uint32(len(data))
        self.pack_fixed_opaque(data)

    def pack_string(self, text: str) -> None:
        """Append a UTF-8 string as variable-length opaque."""
        self.pack_opaque(text.encode("utf-8"))

    # -- result ---------------------------------------------------------------

    def getvalue(self) -> bytes:
        """The canonical byte string written so far."""
        return b"".join(self._chunks)

    @property
    def size(self) -> int:
        """Bytes written so far."""
        return self._size

    def _append(self, data: bytes) -> None:
        self._chunks.append(data)
        self._size += len(data)

    def _pad(self) -> None:
        remainder = self._size % 4
        if remainder:
            self._append(b"\x00" * (4 - remainder))


class XdrDecoder:
    """Sequential canonical stream reader."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._cursor = 0

    # -- integers -----------------------------------------------------------

    def unpack_uint32(self) -> int:
        """Read an unsigned 32-bit integer."""
        return struct.unpack(">I", self._take(4))[0]

    def unpack_int32(self) -> int:
        """Read a signed 32-bit integer."""
        return struct.unpack(">i", self._take(4))[0]

    def unpack_uint64(self) -> int:
        """Read an unsigned 64-bit integer."""
        return struct.unpack(">Q", self._take(8))[0]

    def unpack_int64(self) -> int:
        """Read a signed 64-bit integer."""
        return struct.unpack(">q", self._take(8))[0]

    def unpack_bool(self) -> bool:
        """Read a boolean."""
        value = self.unpack_uint32()
        if value not in (0, 1):
            raise XdrError(f"bad boolean encoding {value!r}")
        return bool(value)

    # -- floats -------------------------------------------------------------

    def unpack_float(self) -> float:
        """Read an IEEE single."""
        return struct.unpack(">f", self._take(4))[0]

    def unpack_double(self) -> float:
        """Read an IEEE double."""
        return struct.unpack(">d", self._take(8))[0]

    # -- byte sequences -------------------------------------------------------

    def unpack_fixed_opaque(self, length: int) -> bytes:
        """Read fixed-length opaque data (and its padding)."""
        data = self._take(length)
        self._skip_pad(length)
        return data

    def unpack_opaque(self) -> bytes:
        """Read variable-length opaque data."""
        length = self.unpack_uint32()
        return self.unpack_fixed_opaque(length)

    def unpack_string(self) -> str:
        """Read a UTF-8 string."""
        return self.unpack_opaque().decode("utf-8")

    # -- cursor ---------------------------------------------------------------

    @property
    def remaining(self) -> int:
        """Bytes left unread."""
        return len(self._data) - self._cursor

    def done(self) -> bool:
        """Whether the whole stream has been consumed."""
        return self.remaining == 0

    def expect_done(self) -> None:
        """Raise unless the stream is fully consumed (framing check)."""
        if not self.done():
            raise XdrError(f"{self.remaining} trailing bytes in XDR stream")

    def _take(self, size: int) -> bytes:
        if self._cursor + size > len(self._data):
            raise XdrError(
                f"XDR underflow: need {size} bytes, "
                f"have {self.remaining}"
            )
        data = self._data[self._cursor : self._cursor + size]
        self._cursor += size
        return data

    def _skip_pad(self, length: int) -> None:
        remainder = length % 4
        if remainder:
            pad = self._take(4 - remainder)
            if pad != b"\x00" * len(pad):
                raise XdrError(f"nonzero XDR padding {pad!r}")
