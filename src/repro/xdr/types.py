"""Data type specifiers and per-architecture layout.

A :class:`TypeSpec` describes the *logical* type of heap data; its
in-memory representation (size, alignment, field offsets, byte order)
is computed per :class:`~repro.xdr.arch.Architecture`.  This split is
what lets two sites with different CPUs share the same logical data:
both resolve the same type id, each lays it out natively, and the
canonical XDR form bridges them.

Pointers are first-class field types.  In memory a pointer is an
unsigned integer of the architecture's pointer width; on the wire it is
a *long pointer* (or NULL), but that encoding belongs to the transfer
layer (:mod:`repro.xdr.raw` takes pointer hooks), because only the RPC
runtime knows how to swizzle.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple, Union

from repro.xdr.arch import Architecture
from repro.xdr.errors import XdrError


class ScalarKind(enum.Enum):
    """Primitive machine scalars; value = (struct code, size, signed)."""

    INT8 = ("b", 1, True)
    UINT8 = ("B", 1, False)
    INT16 = ("h", 2, True)
    UINT16 = ("H", 2, False)
    INT32 = ("i", 4, True)
    UINT32 = ("I", 4, False)
    INT64 = ("q", 8, True)
    UINT64 = ("Q", 8, False)
    FLOAT32 = ("f", 4, False)
    FLOAT64 = ("d", 8, False)

    @property
    def struct_code(self) -> str:
        """Format character for :mod:`struct`."""
        return self.value[0]

    @property
    def size(self) -> int:
        """Width in bytes."""
        return self.value[1]

    @property
    def is_float(self) -> bool:
        """Whether the scalar is a floating-point type."""
        return self in (ScalarKind.FLOAT32, ScalarKind.FLOAT64)


class TypeSpec:
    """Base class for all data type specifiers."""

    def sizeof(self, arch: Architecture) -> int:
        """In-memory size on ``arch``, including padding."""
        raise NotImplementedError

    def alignment(self, arch: Architecture) -> int:
        """In-memory alignment requirement on ``arch``."""
        raise NotImplementedError

    def canonical_size(self) -> int:
        """Size of the XDR canonical form, excluding pointer fields.

        Pointer fields have a variable canonical form (long pointers),
        so this reports them at their 4-byte NULL-marker minimum; the
        transfer layer accounts the actual long-pointer bytes.
        """
        raise NotImplementedError

    def pointer_fields(
        self, arch: Architecture
    ) -> Iterator[Tuple[int, "PointerType"]]:
        """Yield ``(byte offset, pointer spec)`` for every pointer inside."""
        raise NotImplementedError

    def has_pointers(self, arch: Architecture) -> bool:
        """Whether any pointer field exists anywhere inside."""
        return next(self.pointer_fields(arch), None) is not None


@dataclass(frozen=True)
class ScalarType(TypeSpec):
    """A primitive scalar."""

    kind: ScalarKind

    def sizeof(self, arch: Architecture) -> int:
        return self.kind.size

    def alignment(self, arch: Architecture) -> int:
        return arch.align_of(self.kind.size)

    def canonical_size(self) -> int:
        # XDR encodes every scalar in 4-byte units; 8-byte scalars
        # ("hyper", double) take two units.
        return max(4, self.kind.size)

    def pointer_fields(
        self, arch: Architecture
    ) -> Iterator[Tuple[int, "PointerType"]]:
        return iter(())

    def pack_raw(self, value: Union[int, float], arch: Architecture) -> bytes:
        """Native in-memory bytes of ``value`` on ``arch``."""
        prefix = ">" if arch.byteorder == "big" else "<"
        try:
            return struct.pack(prefix + self.kind.struct_code, value)
        except struct.error as exc:
            raise XdrError(f"cannot pack {value!r} as {self.kind}") from exc

    def unpack_raw(
        self, data: bytes, arch: Architecture
    ) -> Union[int, float]:
        """Decode native in-memory bytes from ``arch``."""
        prefix = ">" if arch.byteorder == "big" else "<"
        try:
            return struct.unpack(prefix + self.kind.struct_code, data)[0]
        except struct.error as exc:
            raise XdrError(f"cannot unpack {data!r} as {self.kind}") from exc


@dataclass(frozen=True)
class OpaqueType(TypeSpec):
    """``n`` uninterpreted bytes (XDR fixed-length opaque)."""

    length: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise XdrError(f"bad opaque length {self.length!r}")

    def sizeof(self, arch: Architecture) -> int:
        return self.length

    def alignment(self, arch: Architecture) -> int:
        return 1

    def canonical_size(self) -> int:
        return _pad4(self.length)

    def pointer_fields(
        self, arch: Architecture
    ) -> Iterator[Tuple[int, "PointerType"]]:
        return iter(())


@dataclass(frozen=True)
class PointerType(TypeSpec):
    """A pointer to heap data of type ``target_type_id``.

    The target is named by id, not by spec, so recursive types (list
    nodes, tree nodes) are expressible; the id resolves through the
    :class:`~repro.xdr.registry.TypeRegistry`.
    """

    target_type_id: str

    def sizeof(self, arch: Architecture) -> int:
        return arch.pointer_size

    def alignment(self, arch: Architecture) -> int:
        return arch.align_of(arch.pointer_size)

    def canonical_size(self) -> int:
        return 4  # the NULL/present discriminant; long-pointer body varies

    def pointer_fields(
        self, arch: Architecture
    ) -> Iterator[Tuple[int, "PointerType"]]:
        yield (0, self)


@dataclass(frozen=True)
class ArrayType(TypeSpec):
    """A fixed-length array of homogeneous elements."""

    element: TypeSpec
    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise XdrError(f"bad array count {self.count!r}")

    def stride(self, arch: Architecture) -> int:
        """Distance between consecutive elements."""
        size = self.element.sizeof(arch)
        return _round_up(size, self.element.alignment(arch))

    def sizeof(self, arch: Architecture) -> int:
        return self.stride(arch) * self.count

    def alignment(self, arch: Architecture) -> int:
        return self.element.alignment(arch)

    def canonical_size(self) -> int:
        return self.element.canonical_size() * self.count

    def pointer_fields(
        self, arch: Architecture
    ) -> Iterator[Tuple[int, "PointerType"]]:
        stride = self.stride(arch)
        for index in range(self.count):
            for offset, spec in self.element.pointer_fields(arch):
                yield (index * stride + offset, spec)


@dataclass(frozen=True)
class Field:
    """One named member of a struct."""

    name: str
    spec: TypeSpec


class EnumType(TypeSpec):
    """A named integer enumeration (XDR ``enum``).

    In memory an enum is a 32-bit signed integer; on the wire it is a
    validated int32 — a value outside the declared members is a type
    error, exactly as RFC 1014 prescribes.
    """

    def __init__(self, name: str, members: Dict[str, int]) -> None:
        if not members:
            raise XdrError(f"enum {name!r} has no members")
        values = list(members.values())
        if len(set(values)) != len(values):
            raise XdrError(f"enum {name!r} has duplicate values")
        self.name = name
        self.members = dict(members)
        self._names_by_value = {v: k for k, v in members.items()}

    def value_of(self, member: str) -> int:
        """The integer value of a member name."""
        try:
            return self.members[member]
        except KeyError:
            raise XdrError(
                f"enum {self.name!r} has no member {member!r}"
            ) from None

    def name_of(self, value: int) -> str:
        """The member name of an integer value."""
        try:
            return self._names_by_value[value]
        except KeyError:
            raise XdrError(
                f"{value!r} is not a member of enum {self.name!r}"
            ) from None

    def is_valid(self, value: int) -> bool:
        """Whether ``value`` names a member."""
        return value in self._names_by_value

    def sizeof(self, arch: Architecture) -> int:
        return 4

    def alignment(self, arch: Architecture) -> int:
        return arch.align_of(4)

    def canonical_size(self) -> int:
        return 4

    def pointer_fields(
        self, arch: Architecture
    ) -> Iterator[Tuple[int, "PointerType"]]:
        return iter(())

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, EnumType)
            and self.name == other.name
            and self.members == other.members
        )

    def __hash__(self) -> int:
        return hash((self.name, tuple(sorted(self.members.items()))))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EnumType({self.name!r})"


class UnionType(TypeSpec):
    """A discriminated union (XDR ``union ... switch``).

    In memory: a 32-bit discriminant followed by storage big enough
    for the largest arm (C-style tagged union).  The discriminant must
    be a member value of ``discriminant`` (an :class:`EnumType`).

    Arms must be pointer-free: the active arm — and therefore where
    any pointers would live — depends on the data, but transfer-time
    pointer discovery (closure walking, swizzling) requires static
    layout.  The constructor enforces this; put the pointer next to
    the union, not inside it.
    """

    def __init__(
        self,
        name: str,
        discriminant: EnumType,
        arms: Dict[str, TypeSpec],
    ) -> None:
        if not arms:
            raise XdrError(f"union {name!r} has no arms")
        for member in arms:
            discriminant.value_of(member)  # validates membership
        missing = set(discriminant.members) - set(arms)
        if missing:
            raise XdrError(
                f"union {name!r} lacks arms for {sorted(missing)}"
            )
        self.name = name
        self.discriminant = discriminant
        self.arms = dict(arms)
        for member, spec in arms.items():
            if _spec_has_pointers(spec):
                raise XdrError(
                    f"union {name!r} arm {member!r} contains pointers; "
                    "union arms must be pointer-free"
                )

    def arm_for(self, value: int) -> TypeSpec:
        """The arm spec selected by a discriminant value."""
        return self.arms[self.discriminant.name_of(value)]

    def body_offset(self, arch: Architecture) -> int:
        """Offset of the arm storage after the discriminant."""
        return _round_up(4, self.alignment(arch))

    def sizeof(self, arch: Architecture) -> int:
        body = max(spec.sizeof(arch) for spec in self.arms.values())
        return _round_up(
            self.body_offset(arch) + body, self.alignment(arch)
        )

    def alignment(self, arch: Architecture) -> int:
        return max(
            arch.align_of(4),
            max(spec.alignment(arch) for spec in self.arms.values()),
        )

    def canonical_size(self) -> int:
        # Variable: 4 for the discriminant plus the active arm.
        return 4 + min(
            spec.canonical_size() for spec in self.arms.values()
        )

    def pointer_fields(
        self, arch: Architecture
    ) -> Iterator[Tuple[int, "PointerType"]]:
        return iter(())  # arms are pointer-free by construction

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, UnionType)
            and self.name == other.name
            and self.discriminant == other.discriminant
            and self.arms == other.arms
        )

    def __hash__(self) -> int:
        return hash((self.name, self.discriminant))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UnionType({self.name!r})"


def _spec_has_pointers(spec: TypeSpec) -> bool:
    if isinstance(spec, PointerType):
        return True
    if isinstance(spec, ArrayType):
        return _spec_has_pointers(spec.element)
    if isinstance(spec, StructType):
        return any(
            _spec_has_pointers(field.spec) for field in spec.fields
        )
    if isinstance(spec, UnionType):
        return False  # enforced pointer-free
    return False


class StructType(TypeSpec):
    """A record with natural (C-style) per-architecture layout."""

    def __init__(self, name: str, fields: Sequence[Field]) -> None:
        if not fields:
            raise XdrError(f"struct {name!r} has no fields")
        seen = set()
        for field in fields:
            if field.name in seen:
                raise XdrError(
                    f"struct {name!r} has duplicate field {field.name!r}"
                )
            seen.add(field.name)
        self.name = name
        self.fields: Tuple[Field, ...] = tuple(fields)
        self._fields_by_name = {field.name: field for field in fields}
        self._layouts: Dict[str, "StructLayout"] = {}

    def layout(self, arch: Architecture) -> "StructLayout":
        """Field offsets, size and alignment on ``arch`` (memoised)."""
        cached = self._layouts.get(arch.name)
        if cached is None:
            cached = StructLayout.compute(self, arch)
            self._layouts[arch.name] = cached
        return cached

    def sizeof(self, arch: Architecture) -> int:
        return self.layout(arch).size

    def alignment(self, arch: Architecture) -> int:
        return self.layout(arch).alignment

    def canonical_size(self) -> int:
        return sum(field.spec.canonical_size() for field in self.fields)

    def pointer_fields(
        self, arch: Architecture
    ) -> Iterator[Tuple[int, PointerType]]:
        layout = self.layout(arch)
        for field in self.fields:
            base = layout.offsets[field.name]
            for offset, spec in field.spec.pointer_fields(arch):
                yield (base + offset, spec)

    def field(self, name: str) -> Field:
        """Look up a member by name."""
        found = self._fields_by_name.get(name)
        if found is None:
            raise XdrError(f"struct {self.name!r} has no field {name!r}")
        return found

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, StructType)
            and self.name == other.name
            and self.fields == other.fields
        )

    def __hash__(self) -> int:
        return hash((self.name, self.fields))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(field.name for field in self.fields)
        return f"StructType({self.name!r}: {names})"


@dataclass(frozen=True)
class StructLayout:
    """Computed layout of a struct on one architecture."""

    size: int
    alignment: int
    offsets: "Dict[str, int]"

    @staticmethod
    def compute(spec: StructType, arch: Architecture) -> "StructLayout":
        """Natural C layout: align each field, pad the tail."""
        offsets: Dict[str, int] = {}
        cursor = 0
        alignment = 1
        for field in spec.fields:
            field_align = field.spec.alignment(arch)
            alignment = max(alignment, field_align)
            cursor = _round_up(cursor, field_align)
            offsets[field.name] = cursor
            cursor += field.spec.sizeof(arch)
        return StructLayout(
            size=_round_up(cursor, alignment),
            alignment=alignment,
            offsets=offsets,
        )


def _round_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


def _pad4(value: int) -> int:
    return _round_up(value, 4)


# Convenience singletons mirroring <stdint.h>.
int8 = ScalarType(ScalarKind.INT8)
uint8 = ScalarType(ScalarKind.UINT8)
int16 = ScalarType(ScalarKind.INT16)
uint16 = ScalarType(ScalarKind.UINT16)
int32 = ScalarType(ScalarKind.INT32)
uint32 = ScalarType(ScalarKind.UINT32)
int64 = ScalarType(ScalarKind.INT64)
uint64 = ScalarType(ScalarKind.UINT64)
float32 = ScalarType(ScalarKind.FLOAT32)
float64 = ScalarType(ScalarKind.FLOAT64)

ScalarValue = Union[int, float]
FieldPath = List[str]
