"""Machine architectures.

The paper's central heterogeneity claim is that *only the logical type*
of shared data is shared; each machine keeps its own representation.
An :class:`Architecture` captures exactly what representation depends
on: byte order, pointer width, and alignment.  Unlike the heterogeneous
DSM systems the paper criticises (Mermaid), no two sites need to agree
on word alignment or record layout.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Architecture:
    """Representation parameters of one machine.

    Attributes:
        name: human-readable tag.
        byteorder: ``"big"`` or ``"little"``.
        pointer_size: bytes per ordinary pointer (4 or 8).
        max_alignment: cap on natural alignment (a type never requires
            stricter alignment than this).
    """

    name: str
    byteorder: str
    pointer_size: int
    max_alignment: int = 8

    def __post_init__(self) -> None:
        if self.byteorder not in ("big", "little"):
            raise ValueError(f"bad byte order {self.byteorder!r}")
        if self.pointer_size not in (4, 8):
            raise ValueError(f"bad pointer size {self.pointer_size!r}")
        if self.max_alignment not in (1, 2, 4, 8, 16):
            raise ValueError(f"bad max alignment {self.max_alignment!r}")

    def align_of(self, natural: int) -> int:
        """Clamp a natural alignment to this machine's maximum."""
        return min(natural, self.max_alignment)


SPARC32 = Architecture("sparc32", "big", 4)
"""The paper's testbed: 32-bit big-endian Sun SPARC."""

X86_64 = Architecture("x86_64", "little", 8)
"""A modern 64-bit little-endian peer for heterogeneity scenarios."""

ALPHA64 = Architecture("alpha64", "little", 8, max_alignment=8)
"""A second 64-bit machine, used in tests to triangulate conversions."""
