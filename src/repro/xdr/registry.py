"""The data-type specifier database.

Long pointers carry a *data type specifier* — a string id.  The paper
assumes "the system can obtain an actual data structure from a data
type specifier by querying a database that serves as a network name
server."  :class:`TypeRegistry` is that database; the network-reachable
service wrapping it lives in :mod:`repro.namesvc`.

Type specs are self-describing on the wire (``encode_spec`` /
``decode_spec``) so the name server can ship a definition to a site
that has never seen it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.xdr.errors import XdrError
from repro.xdr.stream import XdrDecoder, XdrEncoder
from repro.xdr.types import (
    ArrayType,
    EnumType,
    Field,
    OpaqueType,
    PointerType,
    ScalarKind,
    ScalarType,
    StructType,
    TypeSpec,
    UnionType,
)

_TAG_SCALAR = 0
_TAG_OPAQUE = 1
_TAG_POINTER = 2
_TAG_ARRAY = 3
_TAG_STRUCT = 4
_TAG_ENUM = 5
_TAG_UNION = 6


class TypeRegistry:
    """Maps type ids to :class:`~repro.xdr.types.TypeSpec` objects."""

    def __init__(self) -> None:
        self._specs: Dict[str, TypeSpec] = {}

    def register(self, type_id: str, spec: TypeSpec) -> None:
        """Bind ``type_id`` to ``spec``.

        Re-registering the same definition is idempotent; rebinding an
        id to a *different* definition is an error, because remote sites
        may already have cached the old one.
        """
        existing = self._specs.get(type_id)
        if existing is not None and existing != spec:
            raise XdrError(f"type id {type_id!r} already bound differently")
        self._specs[type_id] = spec

    def resolve(self, type_id: str) -> TypeSpec:
        """Return the spec bound to ``type_id``."""
        try:
            return self._specs[type_id]
        except KeyError:
            raise XdrError(f"unknown type id {type_id!r}") from None

    def knows(self, type_id: str) -> bool:
        """Whether ``type_id`` is bound."""
        return type_id in self._specs

    @property
    def type_ids(self) -> List[str]:
        """All bound ids, sorted."""
        return sorted(self._specs)


# -- wire form of type specs ----------------------------------------------


def encode_spec(spec: TypeSpec, encoder: XdrEncoder) -> None:
    """Append the self-describing canonical form of ``spec``."""
    if isinstance(spec, ScalarType):
        encoder.pack_uint32(_TAG_SCALAR)
        encoder.pack_string(spec.kind.name)
    elif isinstance(spec, OpaqueType):
        encoder.pack_uint32(_TAG_OPAQUE)
        encoder.pack_uint32(spec.length)
    elif isinstance(spec, PointerType):
        encoder.pack_uint32(_TAG_POINTER)
        encoder.pack_string(spec.target_type_id)
    elif isinstance(spec, ArrayType):
        encoder.pack_uint32(_TAG_ARRAY)
        encoder.pack_uint32(spec.count)
        encode_spec(spec.element, encoder)
    elif isinstance(spec, StructType):
        encoder.pack_uint32(_TAG_STRUCT)
        encoder.pack_string(spec.name)
        encoder.pack_uint32(len(spec.fields))
        for field in spec.fields:
            encoder.pack_string(field.name)
            encode_spec(field.spec, encoder)
    elif isinstance(spec, EnumType):
        encoder.pack_uint32(_TAG_ENUM)
        encoder.pack_string(spec.name)
        encoder.pack_uint32(len(spec.members))
        for member, value in sorted(spec.members.items()):
            encoder.pack_string(member)
            encoder.pack_int32(value)
    elif isinstance(spec, UnionType):
        encoder.pack_uint32(_TAG_UNION)
        encoder.pack_string(spec.name)
        encode_spec(spec.discriminant, encoder)
        encoder.pack_uint32(len(spec.arms))
        for member, arm in sorted(spec.arms.items()):
            encoder.pack_string(member)
            encode_spec(arm, encoder)
    else:
        raise XdrError(f"cannot encode type spec {spec!r}")


def decode_spec(decoder: XdrDecoder) -> TypeSpec:
    """Read one self-describing type spec."""
    tag = decoder.unpack_uint32()
    if tag == _TAG_SCALAR:
        name = decoder.unpack_string()
        try:
            kind = ScalarKind[name]
        except KeyError:
            raise XdrError(f"unknown scalar kind {name!r}") from None
        return ScalarType(kind)
    if tag == _TAG_OPAQUE:
        return OpaqueType(decoder.unpack_uint32())
    if tag == _TAG_POINTER:
        return PointerType(decoder.unpack_string())
    if tag == _TAG_ARRAY:
        count = decoder.unpack_uint32()
        return ArrayType(decode_spec(decoder), count)
    if tag == _TAG_STRUCT:
        name = decoder.unpack_string()
        field_count = decoder.unpack_uint32()
        fields = []
        for _ in range(field_count):
            field_name = decoder.unpack_string()
            fields.append(Field(field_name, decode_spec(decoder)))
        return StructType(name, fields)
    if tag == _TAG_ENUM:
        name = decoder.unpack_string()
        member_count = decoder.unpack_uint32()
        members = {}
        for _ in range(member_count):
            member = decoder.unpack_string()
            members[member] = decoder.unpack_int32()
        return EnumType(name, members)
    if tag == _TAG_UNION:
        name = decoder.unpack_string()
        discriminant = decode_spec(decoder)
        if not isinstance(discriminant, EnumType):
            raise XdrError(f"union {name!r} discriminant is not an enum")
        arm_count = decoder.unpack_uint32()
        arms = {}
        for _ in range(arm_count):
            member = decoder.unpack_string()
            arms[member] = decode_spec(decoder)
        return UnionType(name, discriminant, arms)
    raise XdrError(f"unknown type-spec tag {tag!r}")


def spec_to_bytes(spec: TypeSpec) -> bytes:
    """Standalone canonical encoding of one spec."""
    encoder = XdrEncoder()
    encode_spec(spec, encoder)
    return encoder.getvalue()


def spec_from_bytes(data: bytes) -> TypeSpec:
    """Decode one standalone spec, checking framing."""
    decoder = XdrDecoder(data)
    spec = decode_spec(decoder)
    decoder.expect_done()
    return spec


def shared_registry(*registries: TypeRegistry) -> Optional[TypeRegistry]:
    """Merge registries into a fresh one (testing helper)."""
    merged = TypeRegistry()
    for registry in registries:
        for type_id in registry.type_ids:
            merged.register(type_id, registry.resolve(type_id))
    return merged
