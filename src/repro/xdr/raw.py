"""Raw-memory <-> canonical-form conversion.

The home runtime reads typed data out of its heap in the machine's
native representation, encodes it canonically for the wire, and the
receiving runtime decodes it into *its* native representation — the
endianness/width/alignment translation that makes the system
heterogeneous.

Pointer fields are delegated to hooks because their wire form (long
pointers) and their local form (swizzled addresses) are RPC-runtime
concerns:

* ``encode`` calls ``pointer_out(pointer_value, target_type_id)`` and
  the hook appends the long-pointer encoding to the stream
  (*unswizzling*);
* ``decode`` calls ``pointer_in(target_type_id)`` and the hook consumes
  the long-pointer encoding and returns the local address to store
  (*swizzling*).
"""

from __future__ import annotations

from typing import Callable, Union

from repro.memory.address_space import AddressSpace
from repro.xdr.arch import Architecture
from repro.xdr.errors import XdrError
from repro.xdr.stream import XdrDecoder, XdrEncoder
from repro.xdr.types import (
    ArrayType,
    EnumType,
    OpaqueType,
    PointerType,
    ScalarKind,
    ScalarType,
    StructType,
    TypeSpec,
    UnionType,
)

PointerOut = Callable[[int, str], None]
PointerIn = Callable[[str], int]


def raw_identity_size(spec: TypeSpec, arch: Architecture):
    """Bytes per value when native memory *is* the canonical form.

    Returns ``None`` when the two representations differ.  Identity
    holds for big-endian 4/8-byte scalars (XDR is big-endian and packs
    in 4-byte units) and for opaque blocks whose length is already a
    multiple of 4 (so no inter-element padding is owed).  Arrays of
    such elements can then be shipped with one bulk copy instead of a
    per-element encode/decode loop — the page codec of the zero-copy
    wire path.
    """
    if isinstance(spec, ScalarType):
        size = spec.kind.size
        if size >= 4 and arch.byteorder == "big":
            return size
        return None
    if isinstance(spec, OpaqueType):
        if spec.length % 4 == 0:
            return spec.length
        return None
    return None


class RawCodec:
    """Converts typed raw memory to/from the canonical form."""

    def __init__(self, space: AddressSpace, arch: Architecture) -> None:
        self.space = space
        self.arch = arch

    def _bulk_array_bytes(self, spec: ArrayType):
        """Total byte count for a bulk array copy, or ``None``."""
        if spec.count == 0:
            return None
        unit = raw_identity_size(spec.element, self.arch)
        if unit is None or unit != spec.stride(self.arch):
            return None
        return unit * spec.count

    # -- encoding (native memory -> canonical) ------------------------------

    def encode(
        self,
        address: int,
        spec: TypeSpec,
        encoder: XdrEncoder,
        pointer_out: PointerOut,
    ) -> None:
        """Append the canonical form of the value at ``address``."""
        if isinstance(spec, ScalarType):
            raw = self.space.read_raw(address, spec.kind.size)
            value = spec.unpack_raw(raw, self.arch)
            _pack_scalar(encoder, spec.kind, value)
        elif isinstance(spec, OpaqueType):
            encoder.pack_fixed_opaque(
                self.space.read_raw(address, spec.length)
            )
        elif isinstance(spec, PointerType):
            pointer = self.read_pointer(address)
            pointer_out(pointer, spec.target_type_id)
        elif isinstance(spec, ArrayType):
            bulk = self._bulk_array_bytes(spec)
            if bulk is not None:
                encoder.pack_fixed_opaque(self.space.read_raw(address, bulk))
                return
            stride = spec.stride(self.arch)
            for index in range(spec.count):
                self.encode(
                    address + index * stride,
                    spec.element,
                    encoder,
                    pointer_out,
                )
        elif isinstance(spec, StructType):
            layout = spec.layout(self.arch)
            for field in spec.fields:
                self.encode(
                    address + layout.offsets[field.name],
                    field.spec,
                    encoder,
                    pointer_out,
                )
        elif isinstance(spec, EnumType):
            raw = self.space.read_raw(address, 4)
            value = int.from_bytes(raw, self.arch.byteorder, signed=True)
            spec.name_of(value)  # validates membership
            encoder.pack_int32(value)
        elif isinstance(spec, UnionType):
            raw = self.space.read_raw(address, 4)
            value = int.from_bytes(raw, self.arch.byteorder, signed=True)
            arm = spec.arm_for(value)
            encoder.pack_int32(value)
            self.encode(
                address + spec.body_offset(self.arch),
                arm,
                encoder,
                pointer_out,
            )
        else:
            raise XdrError(f"cannot encode spec {spec!r}")

    # -- decoding (canonical -> native memory) --------------------------------

    def decode(
        self,
        decoder: XdrDecoder,
        address: int,
        spec: TypeSpec,
        pointer_in: PointerIn,
    ) -> None:
        """Materialise one canonical value into memory at ``address``.

        Writes through the raw (kernel) plane: the destination is
        typically a protected cache page being filled by the runtime.
        """
        if isinstance(spec, ScalarType):
            value = _unpack_scalar(decoder, spec.kind)
            self.space.write_raw(address, spec.pack_raw(value, self.arch))
        elif isinstance(spec, OpaqueType):
            self.space.write_raw(
                address, decoder.unpack_fixed_view(spec.length)
            )
        elif isinstance(spec, PointerType):
            pointer = pointer_in(spec.target_type_id)
            self.write_pointer(address, pointer)
        elif isinstance(spec, ArrayType):
            bulk = self._bulk_array_bytes(spec)
            if bulk is not None:
                self.space.write_raw(
                    address, decoder.unpack_fixed_view(bulk)
                )
                return
            stride = spec.stride(self.arch)
            for index in range(spec.count):
                self.decode(
                    decoder, address + index * stride, spec.element, pointer_in
                )
        elif isinstance(spec, StructType):
            layout = spec.layout(self.arch)
            for field in spec.fields:
                self.decode(
                    decoder,
                    address + layout.offsets[field.name],
                    field.spec,
                    pointer_in,
                )
        elif isinstance(spec, EnumType):
            value = decoder.unpack_int32()
            spec.name_of(value)  # validates membership
            self.space.write_raw(
                address,
                value.to_bytes(4, self.arch.byteorder, signed=True),
            )
        elif isinstance(spec, UnionType):
            value = decoder.unpack_int32()
            arm = spec.arm_for(value)
            self.space.write_raw(
                address,
                value.to_bytes(4, self.arch.byteorder, signed=True),
            )
            self.decode(
                decoder,
                address + spec.body_offset(self.arch),
                arm,
                pointer_in,
            )
        else:
            raise XdrError(f"cannot decode spec {spec!r}")

    # -- pointer words --------------------------------------------------------

    def read_pointer(self, address: int) -> int:
        """Read one ordinary pointer word (raw plane)."""
        raw = self.space.read_raw(address, self.arch.pointer_size)
        return int.from_bytes(raw, self.arch.byteorder)

    def write_pointer(self, address: int, value: int) -> None:
        """Write one ordinary pointer word (raw plane)."""
        if value < 0 or value >= 1 << (8 * self.arch.pointer_size):
            raise XdrError(
                f"pointer {value:#x} does not fit in "
                f"{self.arch.pointer_size} bytes on {self.arch.name}"
            )
        self.space.write_raw(
            address,
            value.to_bytes(self.arch.pointer_size, self.arch.byteorder),
        )


def _pack_scalar(
    encoder: XdrEncoder, kind: ScalarKind, value: Union[int, float]
) -> None:
    if kind is ScalarKind.FLOAT32:
        encoder.pack_float(float(value))
    elif kind is ScalarKind.FLOAT64:
        encoder.pack_double(float(value))
    elif kind in (ScalarKind.INT64,):
        encoder.pack_int64(int(value))
    elif kind in (ScalarKind.UINT64,):
        encoder.pack_uint64(int(value))
    elif kind in (ScalarKind.INT8, ScalarKind.INT16, ScalarKind.INT32):
        encoder.pack_int32(int(value))
    else:
        encoder.pack_uint32(int(value))


def _unpack_scalar(decoder: XdrDecoder, kind: ScalarKind) -> Union[int, float]:
    if kind is ScalarKind.FLOAT32:
        return decoder.unpack_float()
    if kind is ScalarKind.FLOAT64:
        return decoder.unpack_double()
    if kind is ScalarKind.INT64:
        return decoder.unpack_int64()
    if kind is ScalarKind.UINT64:
        return decoder.unpack_uint64()
    if kind in (ScalarKind.INT8, ScalarKind.INT16, ScalarKind.INT32):
        return decoder.unpack_int32()
    return decoder.unpack_uint32()
