"""XDR error type."""


class XdrError(Exception):
    """Malformed canonical data or a type/value mismatch while encoding."""
