"""The smart RPC runtime.

:class:`SmartRpcRuntime` extends the conventional runtime with the
paper's three techniques:

* **virtual memory manipulation** — it owns the address space's fault
  handler and dispatches cache-page faults to the owning session's
  :class:`~repro.smartrpc.cache.CacheManager`;
* **pointer swizzling** — it replaces the pointer marshalling hooks, so
  pointers pass freely as arguments, results, and fields;
* **coherency protocol** — it piggybacks the modified data set on every
  activity transfer and performs write-back + invalidation at session
  end.

It also serves the data plane (fault-driven requests with eager
closure) and implements ``extended_malloc`` / ``extended_free``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.memory.address_space import AddressSpace
from repro.memory.faults import AccessViolation
from repro.namesvc.client import TypeResolver
from repro.rpc import marshal
from repro.rpc.errors import SessionError
from repro.rpc.runtime import RpcRuntime
from repro.rpc.session import SessionState
from repro.simnet.message import MessageKind
from repro.transport.base import Endpoint, Transport
from repro.smartrpc import coherency, remote_heap, transfer
from repro.smartrpc.alloc_table import AllocEntry
from repro.smartrpc.cache import SINGLE_HOME, CacheManager
from repro.smartrpc.closure import BREADTH_FIRST
from repro.smartrpc.errors import SmartRpcError
from repro.smartrpc.hints import ClosureHints
from repro.smartrpc.long_pointer import (
    LongPointer,
    decode_long_pointer,
    encode_long_pointer,
)
from repro.smartrpc.swizzle import Swizzler
from repro.xdr.arch import Architecture
from repro.xdr.stream import XdrDecoder, XdrEncoder

DEFAULT_CLOSURE_SIZE = 8192
"""The paper's experimental default (§4.1, §4.3)."""


class SmartSessionState(SessionState):
    """Per-space session state: cache, swizzler, batches, dirty relay."""

    def __init__(
        self,
        session_id: str,
        ground_site: str,
        runtime: "SmartRpcRuntime",
    ) -> None:
        super().__init__(session_id, ground_site)
        self.cache = CacheManager(
            runtime, self, strategy=runtime.allocation_strategy
        )
        self.swizzler = Swizzler(runtime, self)
        self.relayed_dirty: Set[AllocEntry] = set()
        self.pending_allocs: List[AllocEntry] = []
        self.pending_frees: List[LongPointer] = []


class SmartRpcRuntime(RpcRuntime):
    """RPC runtime with transparent remote pointers."""

    _piggyback_expected = True

    def __init__(
        self,
        network: Transport,
        site: Endpoint,
        arch: Architecture,
        resolver: Optional[TypeResolver] = None,
        space: Optional[AddressSpace] = None,
        closure_size: int = DEFAULT_CLOSURE_SIZE,
        allocation_strategy: str = SINGLE_HOME,
        closure_order: str = BREADTH_FIRST,
        batch_memory_ops: bool = True,
        closure_hints: Optional["ClosureHints"] = None,
    ) -> None:
        super().__init__(network, site, arch, resolver=resolver, space=space)
        if closure_size < 0:
            raise SmartRpcError(f"bad closure size {closure_size!r}")
        self.closure_size = closure_size
        self.allocation_strategy = allocation_strategy
        self.closure_order = closure_order
        self.batch_memory_ops = batch_memory_ops
        self.closure_hints = closure_hints
        self._page_cache: Dict[int, CacheManager] = {}
        self.space.set_fault_handler(self._handle_fault)
        site.register_handler(
            MessageKind.DATA_REQUEST,
            lambda message: transfer.handle_data_request(self, message),
        )
        site.register_handler(
            MessageKind.WRITE_BACK,
            lambda message: coherency.handle_write_back(self, message),
        )
        site.register_handler(
            MessageKind.INVALIDATE,
            lambda message: coherency.handle_invalidate(self, message),
        )
        site.register_handler(
            MessageKind.MEMORY_BATCH,
            lambda message: remote_heap.handle_memory_batch(self, message),
        )

    # -- cache page fault dispatch --------------------------------------------

    def register_cache_page(
        self, page_number: int, cache: CacheManager
    ) -> None:
        """Route faults on ``page_number`` to ``cache``."""
        self._page_cache[page_number] = cache

    def unregister_cache_page(self, page_number: int) -> None:
        """Stop routing faults for an unmapped cache page."""
        self._page_cache.pop(page_number, None)

    def _handle_fault(self, fault: AccessViolation) -> None:
        cache = self._page_cache.get(fault.page_number)
        if cache is None:
            # Not a cache page: a genuine protection bug — surface it.
            raise fault
        cache.handle_fault(fault)

    # -- session plumbing -----------------------------------------------------

    def _make_session_state(
        self, session_id: str, ground_site: str
    ) -> SmartSessionState:
        return SmartSessionState(session_id, ground_site, self)

    def ensure_smart_session(
        self, session_id: str, ground_site: str
    ) -> SmartSessionState:
        """Typed access to (or lazy creation of) a session's state."""
        state = self._ensure_session(session_id, ground_site)
        if not isinstance(state, SmartSessionState):
            raise SessionError(
                f"session {session_id!r} is not a smart-RPC session"
            )
        return state

    def _teardown_session(self, state: SessionState) -> None:
        assert isinstance(state, SmartSessionState)
        coherency.end_session(self, state)

    def invalidate_session(self, session_id: str) -> None:
        """Drop a session on the invalidation multicast."""
        state = self._sessions.pop(session_id, None)
        if state is None:
            return
        state.closed = True
        if isinstance(state, SmartSessionState):
            state.cache.invalidate()
            state.relayed_dirty.clear()

    # -- coherency / memory-batch piggyback -----------------------------------

    def _make_piggyback(self, state: SessionState, dst: str) -> bytes:
        assert isinstance(state, SmartSessionState)
        remote_heap.flush(self, state)
        return coherency.encode_piggyback(self, state)

    def _apply_piggyback(
        self, state: SessionState, src: str, data: bytes
    ) -> None:
        assert isinstance(state, SmartSessionState)
        coherency.apply_piggyback(self, state, data)

    def flush_memory_batch(self, state: SmartSessionState) -> None:
        """Flush pending extended_malloc/free operations now."""
        remote_heap.flush(self, state)

    # -- pointer marshalling hooks --------------------------------------------

    def _bind_pointer_out(self, state: SessionState) -> marshal.PointerOut:
        assert isinstance(state, SmartSessionState)

        def pointer_out(
            encoder: XdrEncoder, pointer: int, _target_type_id: str
        ) -> None:
            long_pointer = state.swizzler.unswizzle(pointer)
            if long_pointer is not None and long_pointer.is_provisional:
                raise SmartRpcError(
                    f"provisional {long_pointer!r} leaked into arguments; "
                    "the memory batch must flush first"
                )
            encode_long_pointer(encoder, long_pointer)

        return pointer_out

    def _bind_pointer_in(self, state: SessionState) -> marshal.PointerIn:
        assert isinstance(state, SmartSessionState)

        def pointer_in(decoder: XdrDecoder, _target_type_id: str) -> int:
            return state.swizzler.swizzle(decode_long_pointer(decoder))

        return pointer_in

    # -- data plane -----------------------------------------------------------

    def request_data(
        self,
        state: SmartSessionState,
        home: str,
        pointers: List[LongPointer],
    ) -> int:
        """Fetch data (plus closure) from its home space."""
        return transfer.request_data(self, state, home, pointers)

    # -- the §3.5 primitives --------------------------------------------------

    def extended_malloc(
        self, session: Any, space_id: str, type_id: str
    ) -> int:
        """Allocate ``type_id`` data in ``space_id``; local pointer back.

        ``session`` is anything exposing ``.state`` (an ``RpcSession``
        or a ``CallContext``).
        """
        state = session.state
        if not isinstance(state, SmartSessionState):
            raise SessionError("extended_malloc needs a smart-RPC session")
        pointer = remote_heap.extended_malloc(self, state, space_id, type_id)
        if not self.batch_memory_ops:
            # Ablation mode: the paper's rejected design — one remote
            # message per allocation instead of batching.
            remote_heap.flush(self, state)
        return pointer

    def extended_free(self, session: Any, pointer: int) -> None:
        """Release the data referenced by ``pointer`` wherever it lives."""
        state = session.state
        if not isinstance(state, SmartSessionState):
            raise SessionError("extended_free needs a smart-RPC session")
        remote_heap.extended_free(self, state, pointer)
        if not self.batch_memory_ops:
            remote_heap.flush(self, state)
