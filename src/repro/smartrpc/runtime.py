"""The smart RPC runtime.

:class:`SmartRpcRuntime` extends the conventional runtime with the
paper's three techniques:

* **virtual memory manipulation** — it owns the address space's fault
  handler and dispatches cache-page faults to the owning session's
  :class:`~repro.smartrpc.cache.CacheManager`;
* **pointer swizzling** — it replaces the pointer marshalling hooks, so
  pointers pass freely as arguments, results, and fields;
* **coherency protocol** — it piggybacks the modified data set on every
  activity transfer and performs write-back + invalidation at session
  end.

It also serves the data plane (fault-driven requests with eager
closure) and implements ``extended_malloc`` / ``extended_free``.

Every transfer/eagerness decision — marshalling style, closure budget,
traversal order, hints, placeholder strategy, malloc batching, whether
coherency runs at all — lives in the runtime's
:class:`~repro.smartrpc.policy.TransferPolicy`.  The legacy constructor
knobs (``closure_size=``, ``allocation_strategy=``, ...) still work and
build a fixed policy, so existing code keeps its meaning; the paper's
baselines are now just the ``lazy`` and ``graphcopy`` presets of this
one runtime.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Union

from repro.memory.address_space import AddressSpace
from repro.memory.faults import AccessViolation
from repro.namesvc.client import TypeResolver
from repro.rpc import marshal
from repro.rpc.errors import SessionError
from repro.rpc.runtime import RpcRuntime
from repro.rpc.session import SessionState
from repro.simnet.message import MessageKind
from repro.simnet.stats import TransferLedger
from repro.transport.base import Endpoint, Transport, TransportError
from repro.smartrpc import coherency, graphcopy, remote_heap, transfer
from repro.smartrpc.alloc_table import AllocEntry
from repro.smartrpc.cache import SINGLE_HOME, CacheManager
from repro.smartrpc.closure import BREADTH_FIRST
from repro.smartrpc.errors import SessionAbortedError, SmartRpcError
from repro.smartrpc.hints import ClosureHints
from repro.smartrpc.long_pointer import (
    LongPointer,
    decode_long_pointer,
    encode_long_pointer,
)
from repro.smartrpc.pipeline import FetchPipeline
from repro.smartrpc.policy import (
    DEFAULT_CLOSURE_SIZE,
    GRAPHCOPY,
    FixedPolicy,
    TransferPolicy,
    make_policy,
)
from repro.smartrpc.swizzle import Swizzler
from repro.xdr.arch import Architecture
from repro.xdr.stream import XdrDecoder, XdrEncoder


class SmartSessionState(SessionState):
    """Per-space session state: cache, swizzler, batches, dirty relay.

    Also the unit of policy feedback: ``transfer_stats`` is this
    session's shipped-vs-touched ledger and ``policy_data`` the
    policy's per-session scratch (the adaptive budget lives here, so
    concurrent sessions tune independently).
    """

    def __init__(
        self,
        session_id: str,
        ground_site: str,
        runtime: "SmartRpcRuntime",
    ) -> None:
        super().__init__(session_id, ground_site)
        self.policy = runtime.policy
        self.cache = CacheManager(
            runtime, self, strategy=self.policy.allocation_strategy
        )
        self.swizzler = Swizzler(runtime, self)
        self.pipeline = FetchPipeline(runtime, self)
        self.relayed_dirty: Set[AllocEntry] = set()
        self.pending_allocs: List[AllocEntry] = []
        self.pending_frees: List[LongPointer] = []
        self.transfer_stats = TransferLedger()
        self.policy_data: Dict[str, Any] = {}
        # Fault-tolerance state (DESIGN.md §12): the write-back batch a
        # home space has staged but not yet committed, why this session
        # was torn down early (``None`` while healthy), and when it
        # opened (the session-deadline anchor).
        self.staged_writeback: Optional[bytes] = None
        # The carrier lease pinning a zero-copy staged batch in the
        # ground's shared-memory segment (None on owned payloads);
        # released whenever the staged batch is applied or discarded.
        self.staged_writeback_lease: Optional[object] = None
        self.abort_reason: Optional[str] = None
        self.opened_at = runtime.clock.now
        runtime.trace_event(
            "policy",
            f"{runtime.site_id}: session {session_id} under policy "
            f"{self.policy.name!r}",
            session=session_id,
            space=runtime.site_id,
            ground=ground_site,
            **self.policy.describe(),
        )


class SmartRpcRuntime(RpcRuntime):
    """RPC runtime with transparent remote pointers."""

    def __init__(
        self,
        network: Transport,
        site: Endpoint,
        arch: Architecture,
        resolver: Optional[TypeResolver] = None,
        space: Optional[AddressSpace] = None,
        policy: Optional[Union[str, TransferPolicy]] = None,
        closure_size: Optional[int] = None,
        allocation_strategy: Optional[str] = None,
        closure_order: Optional[str] = None,
        batch_memory_ops: Optional[bool] = None,
        closure_hints: Optional["ClosureHints"] = None,
    ) -> None:
        super().__init__(network, site, arch, resolver=resolver, space=space)
        self.policy = self._resolve_policy(
            policy,
            closure_size,
            allocation_strategy,
            closure_order,
            batch_memory_ops,
            closure_hints,
        )
        self._page_cache: Dict[int, CacheManager] = {}
        self.space.set_fault_handler(self._handle_fault)
        self.mem.observer = self._note_program_access
        site.register_handler(
            MessageKind.DATA_REQUEST,
            lambda message: transfer.handle_data_request(self, message),
        )
        site.register_handler(
            MessageKind.WRITE_BACK,
            lambda message: coherency.handle_write_back(self, message),
        )
        site.register_handler(
            MessageKind.WRITEBACK_PREPARE,
            lambda message: coherency.handle_writeback_prepare(self, message),
        )
        site.register_handler(
            MessageKind.WRITEBACK_COMMIT,
            lambda message: coherency.handle_writeback_commit(self, message),
        )
        site.register_handler(
            MessageKind.INVALIDATE,
            lambda message: coherency.handle_invalidate(self, message),
        )
        site.register_handler(
            MessageKind.MEMORY_BATCH,
            lambda message: remote_heap.handle_memory_batch(self, message),
        )

    @staticmethod
    def _resolve_policy(
        policy: Optional[Union[str, TransferPolicy]],
        closure_size: Optional[int],
        allocation_strategy: Optional[str],
        closure_order: Optional[str],
        batch_memory_ops: Optional[bool],
        closure_hints: Optional["ClosureHints"],
    ) -> TransferPolicy:
        if isinstance(policy, TransferPolicy):
            knobs = (
                closure_size,
                allocation_strategy,
                closure_order,
                batch_memory_ops,
                closure_hints,
            )
            if any(knob is not None for knob in knobs):
                raise SmartRpcError(
                    "pass either a TransferPolicy instance or the "
                    "legacy knobs, not both"
                )
            return policy.fresh()
        if isinstance(policy, str):
            return make_policy(
                policy,
                closure_size=closure_size,
                allocation_strategy=allocation_strategy,
                closure_order=closure_order,
                batch_memory_ops=batch_memory_ops,
                closure_hints=closure_hints,
            )
        if policy is not None:
            raise SmartRpcError(f"bad policy {policy!r}")
        defaults = (
            closure_size is None
            and allocation_strategy is None
            and closure_order is None
            and closure_hints is None
        )
        return FixedPolicy(
            DEFAULT_CLOSURE_SIZE if closure_size is None else closure_size,
            name="paper" if defaults else "fixed",
            allocation_strategy=(
                SINGLE_HOME
                if allocation_strategy is None
                else allocation_strategy
            ),
            closure_order=(
                BREADTH_FIRST if closure_order is None else closure_order
            ),
            hints=closure_hints,
            batch_memory_ops=(
                True if batch_memory_ops is None else batch_memory_ops
            ),
        )

    # -- policy views (the legacy knob surface) -------------------------------

    @property
    def closure_size(self) -> int:
        """The policy's per-request budget (fixed policies only)."""
        budget = self.policy.declared_budget
        if budget is None:
            raise SmartRpcError(
                f"policy {self.policy.name!r} has no fixed closure size"
            )
        return budget

    @closure_size.setter
    def closure_size(self, budget: int) -> None:
        setter = getattr(self.policy, "set_budget", None)
        if setter is None:
            raise SmartRpcError(
                f"policy {self.policy.name!r} does not take a fixed "
                "closure size"
            )
        setter(budget)

    @property
    def allocation_strategy(self) -> str:
        """The policy's placeholder-page allocation strategy."""
        return self.policy.allocation_strategy

    @property
    def closure_order(self) -> str:
        """The policy's closure traversal order."""
        return self.policy.closure_order

    @property
    def batch_memory_ops(self) -> bool:
        """Whether extended_malloc/free batch per activity transfer."""
        return self.policy.batch_memory_ops

    @property
    def closure_hints(self) -> Optional["ClosureHints"]:
        """The policy's programmer closure hints (paper §6)."""
        return self.policy.hints

    @property
    def _piggyback_expected(self) -> bool:
        # Coherency-free policies (graphcopy) make no piggyback
        # promises, so transfer traces record ``piggyback: null`` as
        # the conventional runtime's do.
        return self.policy.coherency

    # -- cache page fault dispatch --------------------------------------------

    def register_cache_page(
        self, page_number: int, cache: CacheManager
    ) -> None:
        """Route faults on ``page_number`` to ``cache``."""
        self._page_cache[page_number] = cache

    def unregister_cache_page(self, page_number: int) -> None:
        """Stop routing faults for an unmapped cache page."""
        self._page_cache.pop(page_number, None)

    def _handle_fault(self, fault: AccessViolation) -> None:
        cache = self._page_cache.get(fault.page_number)
        if cache is None:
            # Not a cache page: a genuine protection bug — surface it.
            raise fault
        cache.handle_fault(fault)

    def _note_program_access(
        self, address: int, size: int, _write: bool
    ) -> None:
        # The Mem observer: the program plane touched local memory.
        # Only cache pages matter for shipped-vs-touched accounting.
        # Bulk runs arrive as one coalesced callback covering the whole
        # byte range; every overlapping entry is scored.
        page_size = self.space.page_size
        first = address // page_size
        last = (address + size - 1) // page_size if size > 1 else first
        if first == last:
            cache = self._page_cache.get(first)
            if cache is not None:
                cache.note_touch_range(address, size)
            return
        cursor = address
        remaining = size
        for number in range(first, last + 1):
            chunk = min(remaining, (number + 1) * page_size - cursor)
            cache = self._page_cache.get(number)
            if cache is not None:
                cache.note_touch_range(cursor, chunk)
            cursor += chunk
            remaining -= chunk

    # -- session plumbing -----------------------------------------------------

    def _make_session_state(
        self, session_id: str, ground_site: str
    ) -> SmartSessionState:
        return SmartSessionState(session_id, ground_site, self)

    def ensure_smart_session(
        self, session_id: str, ground_site: str
    ) -> SmartSessionState:
        """Typed access to (or lazy creation of) a session's state."""
        state = self._ensure_session(session_id, ground_site)
        if not isinstance(state, SmartSessionState):
            raise SessionError(
                f"session {session_id!r} is not a smart-RPC session"
            )
        return state

    def _teardown_session(self, state: SessionState) -> None:
        assert isinstance(state, SmartSessionState)
        state.pipeline.drain()
        if self.policy.coherency:
            coherency.end_session(self, state)

    def invalidate_session(self, session_id: str) -> None:
        """Drop a session on the invalidation multicast.

        Also the presumed-abort path: a staged-but-uncommitted
        write-back batch is discarded here, so an aborted two-phase
        session leaves this space's originals untouched.
        """
        state = self._sessions.pop(session_id, None)
        if state is None:
            return
        state.closed = True
        if isinstance(state, SmartSessionState):
            state.pipeline.abandon()
            state.cache.invalidate()
            state.relayed_dirty.clear()
            state.pending_allocs.clear()
            state.pending_frees.clear()
            self._discard_staged(state)

    @staticmethod
    def _discard_staged(state: "SmartSessionState") -> None:
        """Drop an uncommitted staged batch, releasing its carrier pin."""
        state.staged_writeback = None
        lease = getattr(state, "staged_writeback_lease", None)
        state.staged_writeback_lease = None
        if lease is not None:
            lease.release()

    # -- fault tolerance (DESIGN.md §12) --------------------------------------

    def _session_send(
        self,
        state: SessionState,
        dst: str,
        kind: MessageKind,
        payload: bytes,
        reply_kind: Optional[MessageKind] = None,
    ) -> bytes:
        assert isinstance(state, SmartSessionState)
        return self.session_send(
            state, dst, kind, payload, reply_kind=reply_kind
        )

    def session_send(
        self,
        state: SmartSessionState,
        dst: str,
        kind: MessageKind,
        payload: bytes,
        reply_kind: Optional[MessageKind] = None,
    ) -> bytes:
        """One guarded session-scoped exchange.

        Enforces the policy's session deadline and per-exchange timeout
        and converts a transport failure (dead peer, exhausted retries)
        into an immediate local abort plus a typed
        :class:`SessionAbortedError` — a crashed peer never hangs the
        surviving site.  With both knobs at zero this is exactly the
        unguarded send the protocol always used.
        """
        deadline = state.policy.session_deadline
        if deadline > 0 and self.clock.now - state.opened_at > deadline:
            self.abort_session(state, reason="deadline")
            raise SessionAbortedError(
                f"session {state.session_id!r} exceeded its "
                f"{deadline}s deadline",
                session_id=state.session_id,
                reason="deadline",
            )
        kwargs = {}
        if state.policy.exchange_timeout > 0:
            kwargs["timeout"] = state.policy.exchange_timeout
        try:
            return self.site.send(
                dst, kind, payload, reply_kind=reply_kind, **kwargs
            )
        except TransportError as exc:
            reason = f"peer-unreachable:{dst}"
            self.abort_session(state, reason=reason)
            raise SessionAbortedError(
                f"session {state.session_id!r} aborted: {kind.value} "
                f"exchange with {dst!r} failed ({exc})",
                session_id=state.session_id,
                reason=reason,
            ) from exc

    def abort_session(
        self,
        state: SmartSessionState,
        reason: str,
        notify: bool = True,
    ) -> None:
        """Tear a session down early, rolling its cached state back.

        Idempotent — a session aborts at most once.  When this space
        grounds the session (and ``notify`` is set) the surviving
        participants get a best-effort INVALIDATE so they roll back
        now instead of waiting for their orphan reapers.
        """
        if state.abort_reason is not None:
            return
        state.abort_reason = reason
        state.closed = True
        self._sessions.pop(state.session_id, None)
        self.stats.sessions_aborted += 1
        self.trace_event(
            "session-abort",
            f"{self.site_id}: session {state.session_id} aborted "
            f"({reason})",
            session=state.session_id,
            space=self.site_id,
            ground=state.ground_site,
            reason=reason,
        )
        if notify and state.ground_site == self.site_id:
            # The notify is best-effort, so don't let a dead peer's
            # full retry schedule stall the abort: the exchange cap
            # (when configured) bounds each attempt too.
            kwargs = {}
            if state.policy.exchange_timeout > 0:
                kwargs["timeout"] = state.policy.exchange_timeout
            for participant in sorted(
                state.participants - {self.site_id}
            ):
                encoder = XdrEncoder()
                encoder.pack_string(state.session_id)
                try:
                    self.site.send(
                        participant,
                        MessageKind.INVALIDATE,
                        encoder.getvalue(),
                        **kwargs,
                    )
                except TransportError:
                    # Dead peers clean up via their own reapers.
                    continue
                self.trace_event(
                    "invalidate",
                    f"{self.site_id}: session {state.session_id} "
                    f"invalidated at {participant}",
                    session=state.session_id,
                    space=self.site_id,
                    dst=participant,
                )
        self._reap_state(state, reason)

    def _reap_state(self, state: SmartSessionState, reason: str) -> None:
        """Roll back everything a dead session pinned in this space."""
        state.pipeline.abandon()
        pages, entries = state.cache.footprint()
        state.cache.invalidate()
        state.relayed_dirty.clear()
        state.pending_allocs.clear()
        state.pending_frees.clear()
        self._discard_staged(state)
        self.stats.orphans_reaped += 1
        self.trace_event(
            "orphan-reaped",
            f"{self.site_id}: session {state.session_id} reaped "
            f"({pages} page(s), {entries} table entr(ies), {reason})",
            session=state.session_id,
            space=self.site_id,
            ground=state.ground_site,
            pages=pages,
            entries=entries,
            reason=reason,
        )

    def reap_orphans(
        self,
        ages: Dict[str, float],
        grace: Optional[float] = None,
    ) -> List[str]:
        """Abort sessions whose peers stopped heartbeating.

        ``ages`` maps live site ids to seconds since their last
        directory heartbeat (:meth:`DirectoryClient.list`); a watched
        peer missing from the map, or older than the grace period,
        counts as dead.  The ground space watches every participant;
        a participant watches only the ground (the ground's own
        reaper tells it about third-site deaths).  Returns the ids of
        the sessions reaped.
        """
        if grace is None:
            grace = self.policy.orphan_grace
        if grace <= 0:
            return []
        reaped: List[str] = []
        for state in list(self._sessions.values()):
            if not isinstance(state, SmartSessionState):
                continue
            if state.ground_site == self.site_id:
                watched = sorted(state.participants - {self.site_id})
            else:
                watched = [state.ground_site]
            for peer in watched:
                age = ages.get(peer)
                if age is not None and age <= grace:
                    continue
                self.abort_session(state, reason=f"peer-dead:{peer}")
                reaped.append(state.session_id)
                break
        return reaped

    # -- coherency / memory-batch piggyback -----------------------------------

    def _make_piggyback(self, state: SessionState, dst: str) -> bytes:
        assert isinstance(state, SmartSessionState)
        # Activity is about to transfer: while another space runs it
        # may mutate its home data, so unabsorbed prefetched replies
        # would go stale — drop them before control leaves.
        state.pipeline.discard_pending()
        if not self.policy.coherency:
            return b""
        remote_heap.flush(self, state)
        return coherency.encode_piggyback(self, state)

    def _apply_piggyback(
        self, state: SessionState, src: str, data: bytes
    ) -> None:
        assert isinstance(state, SmartSessionState)
        if not self.policy.coherency:
            if data:
                raise SmartRpcError(
                    f"policy {self.policy.name!r} runs no coherency "
                    "protocol but received piggyback data"
                )
            return
        coherency.apply_piggyback(self, state, data)

    def flush_memory_batch(self, state: SmartSessionState) -> None:
        """Flush pending extended_malloc/free operations now."""
        # The batch can free home data an in-flight prefetch covers;
        # settle the pending table before mutating remote heaps.
        state.pipeline.discard_pending()
        remote_heap.flush(self, state)

    # -- pointer marshalling hooks --------------------------------------------

    def _bind_pointer_out(self, state: SessionState) -> marshal.PointerOut:
        assert isinstance(state, SmartSessionState)
        if self.policy.marshalling == GRAPHCOPY:

            def copy_out(
                encoder: XdrEncoder, pointer: int, target_type_id: str
            ) -> None:
                graphcopy.encode_graph(self, encoder, pointer, target_type_id)

            return copy_out

        def pointer_out(
            encoder: XdrEncoder, pointer: int, _target_type_id: str
        ) -> None:
            long_pointer = state.swizzler.unswizzle(pointer)
            if long_pointer is not None and long_pointer.is_provisional:
                raise SmartRpcError(
                    f"provisional {long_pointer!r} leaked into arguments; "
                    "the memory batch must flush first"
                )
            encode_long_pointer(encoder, long_pointer)

        return pointer_out

    def _bind_pointer_in(self, state: SessionState) -> marshal.PointerIn:
        assert isinstance(state, SmartSessionState)
        if self.policy.marshalling == GRAPHCOPY:

            def copy_in(decoder: XdrDecoder, target_type_id: str) -> int:
                return graphcopy.decode_graph(self, decoder, target_type_id)

            return copy_in

        def pointer_in(decoder: XdrDecoder, _target_type_id: str) -> int:
            return state.swizzler.swizzle(decode_long_pointer(decoder))

        return pointer_in

    # -- data plane -----------------------------------------------------------

    def request_data(
        self,
        state: SmartSessionState,
        home: str,
        pointers: List[LongPointer],
    ) -> int:
        """Fetch data (plus closure) from its home space."""
        return transfer.request_data(self, state, home, pointers)

    # -- the §3.5 primitives --------------------------------------------------

    def extended_malloc(
        self, session: Any, space_id: str, type_id: str
    ) -> int:
        """Allocate ``type_id`` data in ``space_id``; local pointer back.

        ``session`` is anything exposing ``.state`` (an ``RpcSession``
        or a ``CallContext``).
        """
        state = session.state
        if not isinstance(state, SmartSessionState):
            raise SessionError("extended_malloc needs a smart-RPC session")
        if not self.policy.coherency:
            raise SmartRpcError(
                f"policy {self.policy.name!r} has no coherency protocol "
                "to carry extended_malloc"
            )
        pointer = remote_heap.extended_malloc(self, state, space_id, type_id)
        if not self.policy.batch_memory_ops:
            # Ablation mode: the paper's rejected design — one remote
            # message per allocation instead of batching.
            self.flush_memory_batch(state)
        return pointer

    def extended_free(self, session: Any, pointer: int) -> None:
        """Release the data referenced by ``pointer`` wherever it lives."""
        state = session.state
        if not isinstance(state, SmartSessionState):
            raise SessionError("extended_free needs a smart-RPC session")
        if not self.policy.coherency:
            raise SmartRpcError(
                f"policy {self.policy.name!r} has no coherency protocol "
                "to carry extended_free"
            )
        remote_heap.extended_free(self, state, pointer)
        if not self.policy.batch_memory_ops:
            self.flush_memory_batch(state)
