"""The data allocation table (paper §3.2, Table 1).

Per address space and session, the runtime "maintains a data allocation
table that records what data should be transferred from remote address
spaces.  The entries of the table are the page number, the offset
within the page, and a long pointer."

This implementation additionally tracks each entry's local size and
residency, and provides the two lookups the method needs constantly:

* by long pointer — "has this remote datum already been swizzled here?"
  (the caching effect);
* by local address — unswizzling an ordinary pointer back to its long
  pointer;
* by page — "which data are allocated to the faulted page?".
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.smartrpc.errors import SmartRpcError
from repro.smartrpc.long_pointer import LongPointer


@dataclass(eq=False)
class AllocEntry:
    """One row of the data allocation table.

    Identity-hashed (``eq=False``): two rows are the same row only if
    they are the same object, which lets sets of entries (the relayed
    modified-data-set) survive provisional-pointer repointing.
    """

    pointer: LongPointer
    local_address: int
    size: int
    page_number: int
    offset: int
    resident: bool = False
    #: Shipped-vs-touched accounting (the adaptive policy's signal):
    #: ``shipped`` marks data that arrived on the fault-driven fill
    #: path, ``prefetched`` the subset shipped beyond the demanded
    #: roots, ``touched`` whether the program ever accessed it.
    shipped: bool = False
    prefetched: bool = False
    touched: bool = False

    @property
    def end(self) -> int:
        """One past the entry's last local byte."""
        return self.local_address + self.size

    def contains(self, address: int) -> bool:
        """Whether a local address falls inside this entry."""
        return self.local_address <= address < self.end


@dataclass
class _PageIndex:
    entries: List[AllocEntry] = field(default_factory=list)


class DataAllocationTable:
    """The per-space, per-session data allocation table."""

    def __init__(self) -> None:
        self._by_pointer: Dict[LongPointer, AllocEntry] = {}
        self._by_page: Dict[int, _PageIndex] = {}
        self._sorted_addresses: List[int] = []
        self._by_address: Dict[int, AllocEntry] = {}

    # -- mutation -----------------------------------------------------------

    def add(self, entry: AllocEntry) -> None:
        """Insert a new row; the long pointer must be new."""
        if entry.pointer in self._by_pointer:
            raise SmartRpcError(
                f"allocation table already has {entry.pointer!r}"
            )
        if entry.local_address in self._by_address:
            raise SmartRpcError(
                f"allocation table already maps local address "
                f"{entry.local_address:#x}"
            )
        self._by_pointer[entry.pointer] = entry
        self._by_page.setdefault(
            entry.page_number, _PageIndex()
        ).entries.append(entry)
        bisect.insort(self._sorted_addresses, entry.local_address)
        self._by_address[entry.local_address] = entry

    def remove(self, entry: AllocEntry) -> None:
        """Delete a row (extended_free of a cached datum)."""
        stored = self._by_pointer.pop(entry.pointer, None)
        if stored is not entry:
            raise SmartRpcError(
                f"allocation table does not hold {entry.pointer!r}"
            )
        page = self._by_page[entry.page_number]
        page.entries.remove(entry)
        if not page.entries:
            del self._by_page[entry.page_number]
        index = bisect.bisect_left(
            self._sorted_addresses, entry.local_address
        )
        del self._sorted_addresses[index]
        del self._by_address[entry.local_address]

    def repoint(self, entry: AllocEntry, pointer: LongPointer) -> None:
        """Replace an entry's long pointer (provisional -> real address).

        The local placeholder does not move: ordinary pointers already
        swizzled into memory stay valid, only the table row changes.
        """
        if pointer in self._by_pointer:
            raise SmartRpcError(
                f"allocation table already has {pointer!r}"
            )
        if self._by_pointer.pop(entry.pointer, None) is not entry:
            raise SmartRpcError(
                f"allocation table does not hold {entry.pointer!r}"
            )
        entry.pointer = pointer
        self._by_pointer[pointer] = entry

    # -- lookups --------------------------------------------------------------

    def entry_for(self, pointer: LongPointer) -> Optional[AllocEntry]:
        """The row for a long pointer, if already swizzled here."""
        return self._by_pointer.get(pointer)

    def entry_containing(self, local_address: int) -> Optional[AllocEntry]:
        """The row whose placeholder contains a local address."""
        index = bisect.bisect_right(self._sorted_addresses, local_address)
        if index == 0:
            return None
        entry = self._by_address[self._sorted_addresses[index - 1]]
        return entry if entry.contains(local_address) else None

    def entries_overlapping(self, address: int, size: int) -> List[AllocEntry]:
        """Rows whose placeholders intersect ``[address, address+size)``.

        The bulk access path's lookup: one coalesced observer callback
        covers a whole run, and every entry the run crossed must be
        scored touched.  ``size <= 0`` degrades to the single-address
        :meth:`entry_containing` semantics.
        """
        if size <= 0:
            entry = self.entry_containing(address)
            return [entry] if entry is not None else []
        out: List[AllocEntry] = []
        index = bisect.bisect_right(self._sorted_addresses, address)
        if index:
            entry = self._by_address[self._sorted_addresses[index - 1]]
            if entry.contains(address):
                out.append(entry)
        end = address + size
        while index < len(self._sorted_addresses):
            start = self._sorted_addresses[index]
            if start >= end:
                break
            out.append(self._by_address[start])
            index += 1
        return out

    def entries_on_page(self, page_number: int) -> List[AllocEntry]:
        """All rows on one cache page."""
        page = self._by_page.get(page_number)
        return list(page.entries) if page is not None else []

    def pages(self) -> List[int]:
        """All cache pages with at least one row."""
        return sorted(self._by_page)

    def __len__(self) -> int:
        return len(self._by_pointer)

    def __iter__(self):
        return iter(self._by_pointer.values())

    # -- presentation (the paper's Table 1) -----------------------------------

    def rows(self) -> List[tuple]:
        """(page, offset, long pointer) rows, sorted — Table 1's shape."""
        rows = [
            (entry.page_number, entry.offset, entry.pointer)
            for entry in self._by_pointer.values()
        ]
        rows.sort(key=lambda row: (row[0], row[1]))
        return rows

    def format_table(self) -> str:
        """Render the table like the paper's Table 1."""
        lines = ["page #  offset within the page  long pointer"]
        for page_number, offset, pointer in self.rows():
            lines.append(f"{page_number:<7} {offset:<23} {pointer!r}")
        return "\n".join(lines)
