"""The data-plane wire protocol: batches, requests, write-back.

One *batch* format carries typed data everywhere data moves:

* in a ``DATA_REPLY`` from a home space (fault-driven fill plus eager
  closure),
* piggybacked on every call and reply (the coherency protocol's
  modified data set),
* in a ``WRITE_BACK`` at session end.

Batch layout (canonical XDR)::

    string pool | item count | items...
    item := pooled long pointer | canonical value bytes

Pointer fields inside a value are pooled long pointers, unswizzled by
the sender and swizzled by the receiver, so one transfer both fills
data and extends the receiver's data allocation table with placeholder
entries for the frontier — "the data allocated to a protected page
area is transferred later when necessary".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Set

from repro.simnet.message import Message, MessageKind
from repro.smartrpc.closure import (
    BREADTH_FIRST,
    DEPTH_FIRST,
    ClosureItem,
    ClosureWalker,
)
from repro.smartrpc.errors import SmartRpcError
from repro.smartrpc.long_pointer import (
    LongPointer,
    HandlePool,
    decode_long_pointer_pooled,
    encode_long_pointer_pooled,
)
from repro.xdr.errors import XdrError
from repro.xdr.stream import XdrDecoder, XdrEncoder
from repro.xdr.types import (
    ArrayType,
    EnumType,
    OpaqueType,
    PointerType,
    ScalarType,
    StructType,
    TypeSpec,
    UnionType,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.smartrpc.runtime import SmartRpcRuntime, SmartSessionState

_STATUS_OK = 0
_STATUS_ERROR = 1

# The requester's traversal order travels in the DATA_REQUEST so the
# home space walks the closure the way the requesting policy wants.
_ORDER_CODES = {BREADTH_FIRST: 0, DEPTH_FIRST: 1}
_ORDER_NAMES = {code: name for name, code in _ORDER_CODES.items()}


# -- batch encoding -----------------------------------------------------------


def encode_batch(
    runtime: "SmartRpcRuntime",
    state: "SmartSessionState",
    items: Sequence[ClosureItem],
) -> bytes:
    """Encode data items into one batch (no time charged here)."""
    pool = HandlePool()
    body = XdrEncoder()

    def pointer_out(encoder: XdrEncoder, value: int, _target: str) -> None:
        pointer = state.swizzler.unswizzle(value)
        if pointer is not None and pointer.is_provisional:
            raise SmartRpcError(
                f"provisional {pointer!r} leaked onto the wire; the "
                "memory batch must flush before any transfer"
            )
        encode_long_pointer_pooled(encoder, pointer, pool)

    for item in items:
        encode_long_pointer_pooled(body, item.pointer, pool)
        runtime.codec.encode(
            item.address,
            item.spec,
            body,
            pointer_out=lambda value, target: pointer_out(
                body, value, target
            ),
        )
    head = XdrEncoder()
    pool.encode(head)
    head.pack_uint32(len(items))
    return head.getvalue() + body.getvalue()


def apply_batch(
    runtime: "SmartRpcRuntime",
    state: "SmartSessionState",
    payload: bytes,
    overwrite: bool,
    demanded: Optional[Set[LongPointer]] = None,
) -> int:
    """Install a batch into this space; returns items applied.

    ``overwrite=False`` is the fault-driven fill path: an item whose
    placeholder is already resident is skipped (the caching effect —
    and local modifications are never clobbered by stale home data).
    ``overwrite=True`` is the coherency path: incoming data is strictly
    newer (single active thread), so it always lands; items whose home
    is *this* space update the original data itself.

    ``demanded`` (fill path only) is the set of requested root
    pointers; items outside it were *prefetched* by the eager closure,
    and the split feeds the shipped-vs-touched ledgers.
    """
    decoder = XdrDecoder(payload)
    pool = HandlePool.decode(decoder)
    count = decoder.unpack_uint32()

    def pointer_in(_target: str) -> int:
        return state.swizzler.swizzle(
            decode_long_pointer_pooled(decoder, pool)
        )

    applied = 0
    for _ in range(count):
        pointer = decode_long_pointer_pooled(decoder, pool)
        if pointer is None:
            raise SmartRpcError("batch item with NULL long pointer")
        spec = runtime.resolver.resolve(pointer.type_id)
        if pointer.space_id == runtime.site_id:
            # We are the home: the batch updates original data.
            if not runtime.heap.owns(pointer.address):
                raise SmartRpcError(
                    f"batch updates dead home data {pointer!r}"
                )
            runtime.codec.decode(
                decoder, pointer.address, spec, pointer_in=pointer_in
            )
            applied += 1
            runtime.stats.entries_transferred += 1
            continue
        entry = state.cache.ensure_entry(pointer)
        if entry.resident and not overwrite:
            skip_value(decoder, spec, pool)
            runtime.stats.duplicate_entries += 1
            if demanded is not None:
                state.cache.note_duplicate_shipment(entry.size)
            continue
        runtime.codec.decode(
            decoder, entry.local_address, spec, pointer_in=pointer_in
        )
        state.cache.mark_resident(entry)
        if demanded is not None:
            state.cache.note_shipped(
                entry, prefetched=pointer not in demanded
            )
        if overwrite:
            # Dirty data stays part of the modified data set here too,
            # so it keeps travelling with the thread of control.
            state.relayed_dirty.add(entry)
        applied += 1
        runtime.stats.entries_transferred += 1
        # One datum's frontier children share placeholder pages; the
        # next datum's children start fresh ones (locality grouping).
        state.cache.finish_datum()
    decoder.expect_done()
    state.cache.finish_batch()
    return applied


def skip_value(decoder: XdrDecoder, spec: TypeSpec, pool: HandlePool) -> None:
    """Consume one canonical value without materialising it."""
    if isinstance(spec, ScalarType):
        decoder.unpack_fixed_opaque(spec.canonical_size())
    elif isinstance(spec, OpaqueType):
        decoder.unpack_fixed_opaque(spec.length)
    elif isinstance(spec, PointerType):
        decode_long_pointer_pooled(decoder, pool)
    elif isinstance(spec, ArrayType):
        for _ in range(spec.count):
            skip_value(decoder, spec.element, pool)
    elif isinstance(spec, StructType):
        for field in spec.fields:
            skip_value(decoder, field.spec, pool)
    elif isinstance(spec, EnumType):
        decoder.unpack_int32()
    elif isinstance(spec, UnionType):
        discriminant = decoder.unpack_int32()
        skip_value(decoder, spec.arm_for(discriminant), pool)
    else:
        raise XdrError(f"cannot skip value of spec {spec!r}")


# -- the data-request protocol ------------------------------------------------


def encode_request_payload(
    state: "SmartSessionState",
    home: str,
    pointers: Sequence[LongPointer],
    budget: int,
    order: str,
) -> bytes:
    """Encode one DATA_REQUEST payload (no time charged here).

    The request names each datum by its bare home address: the home
    space is the message destination and the data type is recorded in
    the home's own typed heap, so neither travels.
    """
    encoder = XdrEncoder()
    encoder.pack_string(state.session_id)
    encoder.pack_string(state.ground_site)
    encoder.pack_uint32(budget)
    encoder.pack_uint32(_ORDER_CODES[order])
    encoder.pack_uint32(len(pointers))
    for pointer in pointers:
        if pointer.space_id != home:
            raise SmartRpcError(
                f"{pointer!r} requested from {home!r}, not its home"
            )
        encoder.pack_uint64(pointer.address)
    return encoder.getvalue()


def apply_reply(
    runtime: "SmartRpcRuntime",
    state: "SmartSessionState",
    home: str,
    reply: bytes,
    requested: Sequence[LongPointer],
    demanded: Set[LongPointer],
    budget: int,
    order: str,
) -> int:
    """Decode and install one DATA_REPLY; record the policy decision.

    ``requested`` is every root named in the request; ``demanded`` the
    subset the program actually faulted on (coalesced or prefetched
    roots outside it score as prefetch in the ledgers).  Charges the
    reply's codec cost to the clock — callers charge the request side.
    """
    runtime.clock.advance(runtime.cost_model.codec_cost(len(reply)))
    decoder = XdrDecoder(reply)
    status = decoder.unpack_uint32()
    if status == _STATUS_ERROR:
        raise SmartRpcError(
            f"data request to {home!r} failed: {decoder.unpack_string()}"
        )
    # Zero-copy: the batch is decoded in place (apply_batch
    # materialises every item into the heap), so on carriers that
    # deliver payloads as shared-memory views the page bytes are
    # copied exactly once — segment straight into the local heap.
    batch = decoder.unpack_opaque_view()
    decoder.expect_done()
    policy = state.policy
    ledger = state.transfer_stats
    shipped_before = ledger.closure_bytes_shipped
    prefetch_before = ledger.prefetch_bytes_shipped
    applied = apply_batch(
        runtime, state, batch, overwrite=False, demanded=demanded
    )
    shipped = ledger.closure_bytes_shipped - shipped_before
    prefetched = ledger.prefetch_bytes_shipped - prefetch_before
    runtime.trace_event(
        "policy-decision",
        f"{runtime.site_id}: request to {home} under policy "
        f"{policy.name!r} (budget {budget}, {order}; shipped {shipped} B, "
        f"prefetched {prefetched} B)",
        session=state.session_id,
        space=runtime.site_id,
        policy=policy.name,
        budget=budget,
        order=order,
        home=home,
        roots=len(requested),
        shipped_bytes=shipped,
        prefetch_bytes=prefetched,
    )
    return applied


def request_data(
    runtime: "SmartRpcRuntime",
    state: "SmartSessionState",
    home: str,
    pointers: Sequence[LongPointer],
) -> int:
    """Fetch ``pointers`` (plus eager closure) from their home space.

    This is the "callback" of the proposed method that Figure 5 counts:
    one request per faulted page per home space.

    The closure budget and traversal order are the requesting policy's
    per-request decisions; both travel in the request and each decision
    is recorded as a ``policy-decision`` trace event for offline
    conformance checking (SRPC3xx).
    """
    policy = state.policy
    budget = policy.request_budget(state)
    order = policy.closure_order
    payload = encode_request_payload(state, home, pointers, budget, order)
    runtime.clock.advance(runtime.cost_model.codec_cost(len(payload)))
    reply = runtime.session_send(
        state,
        home,
        MessageKind.DATA_REQUEST,
        payload,
        reply_kind=MessageKind.DATA_REPLY,
    )
    return apply_reply(
        runtime,
        state,
        home,
        reply,
        pointers,
        set(pointers),
        budget,
        order,
    )


def handle_data_request(
    runtime: "SmartRpcRuntime", message: Message
) -> bytes:
    """Home-space side: select the closure and ship it."""
    runtime.clock.advance(
        runtime.cost_model.codec_cost(len(message.payload))
    )
    decoder = XdrDecoder(message.payload)
    session_id = decoder.unpack_string()
    ground_site = decoder.unpack_string()
    budget = decoder.unpack_uint32()
    order_code = decoder.unpack_uint32()
    count = decoder.unpack_uint32()
    addresses = [decoder.unpack_uint64() for _ in range(count)]
    decoder.expect_done()
    state = runtime.ensure_smart_session(session_id, ground_site)
    state.note_participant(message.src)
    encoder = XdrEncoder()
    try:
        order = _ORDER_NAMES.get(order_code)
        if order is None:
            raise SmartRpcError(
                f"unknown closure order code {order_code!r}"
            )
        roots = []
        for address in addresses:
            allocation = runtime.heap.allocation_at(address)
            if allocation is None or allocation.address != address:
                raise SmartRpcError(
                    f"request for dead home data at {address:#x}"
                )
            roots.append(
                LongPointer(runtime.site_id, address, allocation.type_id)
            )
        # Budget and order are the requester's; hints are served from
        # the home's own policy (it knows its data's traversal shape).
        walker = ClosureWalker(
            runtime, state, budget, order=order, hints=runtime.policy.hints
        )
        items = walker.walk(roots)
        batch = encode_batch(runtime, state, items)
    except SmartRpcError as exc:
        encoder.pack_uint32(_STATUS_ERROR)
        encoder.pack_string(str(exc))
    else:
        encoder.pack_uint32(_STATUS_OK)
        encoder.pack_opaque(batch)
    reply = encoder.getvalue()
    runtime.clock.advance(runtime.cost_model.codec_cost(len(reply)))
    return reply
