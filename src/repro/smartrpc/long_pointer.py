"""Long pointers and their wire encodings.

A long pointer extends pointer semantics to the whole distributed
system (paper §3.2).  It is a triple of

* an **address space identifier** (site id),
* an **address** valid within that space, and
* a **data type specifier** (a type id resolvable through the name
  service) — essential for heterogeneity, because the receiving side
  must know the structure to lay the data out natively.

Two encodings exist:

* the *plain* encoding (self-contained strings) used for isolated
  pointers in RPC argument lists;
* the *pooled* encoding used inside data-transfer batches, where space
  ids and type ids are interned into a per-message string pool so a
  batch of hundreds of tree nodes does not repeat ``"tree_node"``
  hundreds of times.  The original implementation similarly shipped
  compact identifiers rather than strings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.xdr.errors import XdrError
from repro.xdr.stream import XdrDecoder, XdrEncoder

# Addresses at or above this value are *provisional*: handed out by
# extended_malloc before the batched remote allocation has assigned the
# real home address.  No simulated address space ever maps this high.
PROVISIONAL_BASE = 1 << 62


@dataclass(frozen=True)
class LongPointer:
    """One long pointer (paper §3.2)."""

    space_id: str
    address: int
    type_id: str

    def __post_init__(self) -> None:
        if self.address <= 0:
            raise XdrError(
                f"long pointer address must be positive, got {self.address!r}"
            )

    @property
    def is_provisional(self) -> bool:
        """Whether the home address is still a pre-batch placeholder."""
        return self.address >= PROVISIONAL_BASE

    def with_address(self, address: int) -> "LongPointer":
        """A copy at a different home address (batch patching)."""
        return LongPointer(self.space_id, address, self.type_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "?" if self.is_provisional else ""
        return (
            f"LongPointer({self.space_id}:{self.address:#x}{tag} "
            f"{self.type_id})"
        )


NULL_POINTER: Optional[LongPointer] = None
"""The wire-level NULL: encoded as an absent long pointer."""


# -- plain encoding -----------------------------------------------------------


def encode_long_pointer(
    encoder: XdrEncoder, pointer: Optional[LongPointer]
) -> None:
    """Append the plain (self-contained) encoding."""
    if pointer is None:
        encoder.pack_bool(False)
        return
    encoder.pack_bool(True)
    encoder.pack_string(pointer.space_id)
    encoder.pack_uint64(pointer.address)
    encoder.pack_string(pointer.type_id)


def decode_long_pointer(decoder: XdrDecoder) -> Optional[LongPointer]:
    """Read one plain-encoded long pointer (or NULL)."""
    if not decoder.unpack_bool():
        return None
    space_id = decoder.unpack_string()
    address = decoder.unpack_uint64()
    type_id = decoder.unpack_string()
    return LongPointer(space_id, address, type_id)


# -- pooled (compact) encoding ------------------------------------------------


class HandlePool:
    """Interns ``(space id, type id)`` pairs for one batch message.

    A pooled long pointer is a 32-bit *handle* naming the interned
    pair (0 is NULL) plus the full 64-bit address, so a batch of
    hundreds of tree nodes does not repeat strings hundreds of times.
    The pool table itself is written once at the head of the message.
    The original implementation likewise shipped compact identifiers,
    not strings; this is what keeps the proposed method's wire volume
    within a small factor of the raw data size.
    """

    def __init__(self) -> None:
        self._indices: Dict[Tuple[str, str], int] = {}
        self._pairs: List[Tuple[str, str]] = []

    def intern(self, space_id: str, type_id: str) -> int:
        """Handle (index + 1) of the pair, assigning one if new."""
        key = (space_id, type_id)
        index = self._indices.get(key)
        if index is None:
            index = len(self._pairs)
            self._indices[key] = index
            self._pairs.append(key)
        return index + 1

    def lookup(self, handle: int) -> Tuple[str, str]:
        """Pair named by a nonzero handle."""
        index = handle - 1
        if not 0 <= index < len(self._pairs):
            raise XdrError(f"bad handle-pool handle {handle!r}")
        return self._pairs[index]

    def encode(self, encoder: XdrEncoder) -> None:
        """Append the pool table."""
        encoder.pack_uint32(len(self._pairs))
        for space_id, type_id in self._pairs:
            encoder.pack_string(space_id)
            encoder.pack_string(type_id)

    @classmethod
    def decode(cls, decoder: XdrDecoder) -> "HandlePool":
        """Read a pool table."""
        pool = cls()
        count = decoder.unpack_uint32()
        for _ in range(count):
            space_id = decoder.unpack_string()
            type_id = decoder.unpack_string()
            pool.intern(space_id, type_id)
        return pool

    def __len__(self) -> int:
        return len(self._pairs)


def encode_long_pointer_pooled(
    encoder: XdrEncoder,
    pointer: Optional[LongPointer],
    pool: HandlePool,
) -> None:
    """Append the compact 12-byte pooled encoding (or 4-byte NULL)."""
    if pointer is None:
        encoder.pack_uint32(0)
        return
    if pointer.is_provisional:
        raise XdrError(
            f"provisional {pointer!r} must never reach the wire"
        )
    encoder.pack_uint32(pool.intern(pointer.space_id, pointer.type_id))
    encoder.pack_uint64(pointer.address)


def decode_long_pointer_pooled(
    decoder: XdrDecoder, pool: HandlePool
) -> Optional[LongPointer]:
    """Read one pooled-encoded long pointer (or NULL)."""
    handle = decoder.unpack_uint32()
    if handle == 0:
        return None
    space_id, type_id = pool.lookup(handle)
    address = decoder.unpack_uint64()
    return LongPointer(space_id, address, type_id)
