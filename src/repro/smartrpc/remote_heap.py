"""Transparent remote memory allocation and release (paper §3.5).

``extended_malloc(space, type)`` allocates data *in another address
space* and returns a pointer usable immediately in the local space;
``extended_free(p)`` releases data "whose original location is not in
the address space in which it is issued".

Issuing one remote message per operation "would degrade the runtime
performance terribly, considering that remote allocation and release of
hundreds of data sets may be requested consecutively", so the runtime
**batches** the requests and flushes the batch when thread activity
moves to another address space — a single message per home space can
carry any number of allocations and releases.

Until the batch flushes, the new datum's long pointer carries a
*provisional* home address; the flush returns the real addresses and
the data allocation table is repointed in place (local placeholders do
not move, so ordinary pointers already handed to the program stay
valid).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.memory.heap import HeapError
from repro.simnet.message import Message, MessageKind
from repro.smartrpc.alloc_table import AllocEntry
from repro.smartrpc.errors import SmartRpcError, SwizzleError
from repro.smartrpc.long_pointer import PROVISIONAL_BASE, LongPointer
from repro.xdr.stream import XdrDecoder, XdrEncoder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.smartrpc.runtime import SmartRpcRuntime, SmartSessionState

_STATUS_OK = 0
_STATUS_ERROR = 1

# Process-wide so provisional addresses never collide, whichever
# runtime hands them out.
_provisional_addresses = itertools.count(PROVISIONAL_BASE)


def extended_malloc(
    runtime: "SmartRpcRuntime",
    state: "SmartSessionState",
    space_id: str,
    type_id: str,
) -> int:
    """Allocate one ``type_id`` datum in ``space_id``; return a local
    (already swizzled) pointer to it."""
    runtime.clock.advance(runtime.cost_model.malloc_op)
    if space_id == runtime.site_id:
        return runtime.heap.malloc(
            runtime.resolver.resolve(type_id).sizeof(runtime.arch), type_id
        )
    spec = runtime.resolver.resolve(type_id)
    size = spec.sizeof(runtime.arch)
    provisional = LongPointer(
        space_id, next(_provisional_addresses), type_id
    )
    entry = state.cache.allocate_fresh(provisional, size)
    state.pending_allocs.append(entry)
    runtime.stats.remote_mallocs += 1
    return entry.local_address


def extended_free(
    runtime: "SmartRpcRuntime",
    state: "SmartSessionState",
    pointer: int,
) -> None:
    """Release the data referenced by ``pointer`` (local or remote)."""
    runtime.clock.advance(runtime.cost_model.malloc_op)
    entry = state.cache.table.entry_containing(pointer)
    if entry is not None:
        if pointer != entry.local_address:
            raise SwizzleError(
                f"interior pointer {pointer:#x} passed to extended_free"
            )
        if entry.pointer.is_provisional:
            # The home never heard of it: cancel the pending allocation.
            state.pending_allocs.remove(entry)
        else:
            state.pending_frees.append(entry.pointer)
        state.cache.release_entry(entry)
        state.relayed_dirty.discard(entry)
        runtime.stats.remote_frees += 1
        return
    allocation = runtime.heap.allocation_at(pointer)
    if allocation is None or allocation.address != pointer:
        raise SwizzleError(
            f"extended_free of {pointer:#x}: not a live allocation or "
            "cache entry"
        )
    runtime.heap.free(pointer)


def flush(runtime: "SmartRpcRuntime", state: "SmartSessionState") -> None:
    """Send the batched operations, one message per home space.

    Called whenever thread activity is about to move to another address
    space and at session end, *before* anything is unswizzled — so no
    provisional address ever reaches the wire.
    """
    if not state.pending_allocs and not state.pending_frees:
        return
    allocs_by_home: Dict[str, List[AllocEntry]] = {}
    for entry in state.pending_allocs:
        allocs_by_home.setdefault(entry.pointer.space_id, []).append(entry)
    frees_by_home: Dict[str, List[LongPointer]] = {}
    for pointer in state.pending_frees:
        frees_by_home.setdefault(pointer.space_id, []).append(pointer)
    state.pending_allocs = []
    state.pending_frees = []
    for home in sorted(set(allocs_by_home) | set(frees_by_home)):
        _flush_one_home(
            runtime,
            state,
            home,
            allocs_by_home.get(home, []),
            frees_by_home.get(home, []),
        )
    runtime.stats.batch_flushes += 1


def _flush_one_home(
    runtime: "SmartRpcRuntime",
    state: "SmartSessionState",
    home: str,
    allocs: List[AllocEntry],
    frees: List[LongPointer],
) -> None:
    encoder = XdrEncoder()
    encoder.pack_string(state.session_id)
    encoder.pack_string(state.ground_site)
    encoder.pack_uint32(len(allocs))
    for entry in allocs:
        encoder.pack_uint64(entry.pointer.address)
        encoder.pack_string(entry.pointer.type_id)
    encoder.pack_uint32(len(frees))
    for pointer in frees:
        encoder.pack_uint64(pointer.address)
    payload = encoder.getvalue()
    runtime.clock.advance(runtime.cost_model.codec_cost(len(payload)))
    reply = runtime.site.send(
        home,
        MessageKind.MEMORY_BATCH,
        payload,
        reply_kind=MessageKind.MEMORY_BATCH_REPLY,
    )
    runtime.clock.advance(runtime.cost_model.codec_cost(len(reply)))
    decoder = XdrDecoder(reply)
    status = decoder.unpack_uint32()
    if status == _STATUS_ERROR:
        raise SmartRpcError(
            f"memory batch to {home!r} failed: {decoder.unpack_string()}"
        )
    count = decoder.unpack_uint32()
    if count != len(allocs):
        raise SmartRpcError(
            f"memory batch reply names {count} allocations, "
            f"expected {len(allocs)}"
        )
    assigned: List[Tuple[AllocEntry, int]] = []
    for entry in allocs:
        provisional = decoder.unpack_uint64()
        real = decoder.unpack_uint64()
        if provisional != entry.pointer.address:
            raise SmartRpcError(
                "memory batch reply out of order: expected "
                f"{entry.pointer.address:#x}, got {provisional:#x}"
            )
        assigned.append((entry, real))
    decoder.expect_done()
    for entry, real in assigned:
        state.cache.table.repoint(entry, entry.pointer.with_address(real))


def handle_memory_batch(
    runtime: "SmartRpcRuntime", message: Message
) -> bytes:
    """Home-space side: perform the batched allocations and releases."""
    runtime.clock.advance(
        runtime.cost_model.codec_cost(len(message.payload))
    )
    decoder = XdrDecoder(message.payload)
    session_id = decoder.unpack_string()
    ground_site = decoder.unpack_string()
    alloc_count = decoder.unpack_uint32()
    requests: List[Tuple[int, str]] = []
    for _ in range(alloc_count):
        provisional = decoder.unpack_uint64()
        type_id = decoder.unpack_string()
        requests.append((provisional, type_id))
    free_count = decoder.unpack_uint32()
    free_addresses = [decoder.unpack_uint64() for _ in range(free_count)]
    decoder.expect_done()
    runtime.ensure_smart_session(session_id, ground_site).note_participant(
        message.src
    )
    encoder = XdrEncoder()
    try:
        pairs: List[Tuple[int, int]] = []
        for provisional, type_id in requests:
            spec = runtime.resolver.resolve(type_id)
            runtime.clock.advance(runtime.cost_model.malloc_op)
            address = runtime.heap.malloc(
                spec.sizeof(runtime.arch), type_id
            )
            pairs.append((provisional, address))
        for address in free_addresses:
            runtime.clock.advance(runtime.cost_model.malloc_op)
            runtime.heap.free(address)
    except (HeapError, SmartRpcError) as exc:
        encoder.pack_uint32(_STATUS_ERROR)
        encoder.pack_string(str(exc))
    else:
        encoder.pack_uint32(_STATUS_OK)
        encoder.pack_uint32(len(pairs))
        for provisional, address in pairs:
            encoder.pack_uint64(provisional)
            encoder.pack_uint64(address)
    reply = encoder.getvalue()
    runtime.clock.advance(runtime.cost_model.codec_cost(len(reply)))
    return reply
