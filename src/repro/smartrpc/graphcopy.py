"""Deep-copy marshalling of pointer closures (the eager baseline).

This is what ``rpcgen`` generates for recursive data structures: the
entire object graph reachable from a pointer argument is serialised
with the argument and materialised into the callee's heap.  Unlike
textbook ``rpcgen`` output the encoding is iterative (a worklist, not
recursion) and handles shared structure and cycles by interning nodes
into per-argument indices — a 60,000-node list would otherwise
overflow the encoder's stack.

Wire format::

    root reference | node count | node values in discovery order

    reference := bool present | uint32 node index
    node value := canonical fields; pointer fields are references

Types never travel: both sides derive every node's type statically
from the argument's declared target type and the pointer fields'
target type ids, exactly as compiled stubs would.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.rpc.errors import MarshalError
from repro.xdr.stream import XdrDecoder, XdrEncoder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rpc.runtime import RpcRuntime


def encode_graph(
    runtime: "RpcRuntime",
    encoder: XdrEncoder,
    root: int,
    root_type_id: str,
) -> int:
    """Append the deep copy of the graph rooted at ``root``.

    Returns the number of nodes shipped.
    """
    indices: Dict[int, int] = {}
    order: List[Tuple[int, str]] = []
    queue: deque = deque()

    def reference(pointer: int, type_id: str) -> Optional[int]:
        if pointer == 0:
            return None
        index = indices.get(pointer)
        if index is None:
            allocation = runtime.heap.allocation_at(pointer)
            if allocation is None or allocation.address != pointer:
                raise MarshalError(
                    f"eager RPC cannot copy {pointer:#x}: not a live "
                    "allocation base in the caller's heap"
                )
            index = len(order)
            indices[pointer] = index
            order.append((pointer, allocation.type_id))
            queue.append((pointer, allocation.type_id))
        return index

    body = XdrEncoder()

    def pointer_out(pointer: int, type_id: str) -> None:
        index = reference(pointer, type_id)
        if index is None:
            body.pack_bool(False)
        else:
            body.pack_bool(True)
            body.pack_uint32(index)

    root_index = reference(root, root_type_id)
    while queue:
        address, type_id = queue.popleft()
        spec = runtime.resolver.resolve(type_id)
        runtime.codec.encode(address, spec, body, pointer_out)

    if root_index is None:
        encoder.pack_bool(False)
    else:
        encoder.pack_bool(True)
        encoder.pack_uint32(root_index)
    encoder.pack_uint32(len(order))
    encoder.pack_fixed_opaque(body.getvalue())
    return len(order)


def decode_graph(
    runtime: "RpcRuntime",
    decoder: XdrDecoder,
    root_type_id: str,
) -> int:
    """Materialise a deep copy into the local heap; returns root address.

    Node ``i``'s type is pinned by the first reference reaching it (the
    root's declared type, or a pointer field's target type id); the
    value bytes then decode straight into a fresh typed allocation.
    """
    has_root = decoder.unpack_bool()
    root_index = decoder.unpack_uint32() if has_root else None
    count = decoder.unpack_uint32()
    addresses: List[Optional[int]] = [None] * count
    types: List[Optional[str]] = [None] * count

    def materialise(index: int, type_id: str) -> int:
        if index >= count:
            raise MarshalError(
                f"eager graph reference to node {index} of {count}"
            )
        if addresses[index] is None:
            types[index] = type_id
            spec = runtime.resolver.resolve(type_id)
            runtime.clock.advance(runtime.cost_model.malloc_op)
            addresses[index] = runtime.heap.malloc(
                spec.sizeof(runtime.arch), type_id
            )
        elif types[index] != type_id:
            raise MarshalError(
                f"eager graph node {index} referenced as both "
                f"{types[index]!r} and {type_id!r}"
            )
        return addresses[index]

    def pointer_in(type_id: str) -> int:
        if not decoder.unpack_bool():
            return 0
        return materialise(decoder.unpack_uint32(), type_id)

    if root_index is None:
        # Nothing follows an absent root but an empty node list.
        if count != 0:
            raise MarshalError("eager graph with NULL root but nodes")
        return 0
    root_address = materialise(root_index, root_type_id)
    for index in range(count):
        if addresses[index] is None:
            raise MarshalError(f"eager graph node {index} unreachable")
        spec = runtime.resolver.resolve(types[index])
        runtime.codec.decode(decoder, addresses[index], spec, pointer_in)
    runtime.stats.entries_transferred += count
    return root_address
