"""Session-state invariant checking (debugging and test support).

:func:`session_diagnostics` inspects the internal consistency of one
session's smart-RPC state — the data allocation table, the cache page
bookkeeping and the page protections must all agree — and reports
every violation as a structured
:class:`~repro.analysis.diagnostics.Diagnostic` (rules SRPC201-206).
It is pure inspection — no simulated time is charged and nothing is
modified — so tests (including the stateful property tests) can call
it after every operation.

:func:`validate_session` keeps the historical raising contract: it
runs all the checks and raises :class:`InvariantViolation` (carrying
the full diagnostic list) if anything failed.

The invariants, each traceable to the method's design:

1. every table row lies inside a cache page owned by this session
   (SRPC201);
2. a page's entry list and the table's page index agree (SRPC202);
3. protection matches residency: a page with any non-resident entry is
   inaccessible (``NONE``); a complete clean page is read-only; a
   dirty page is read-write and fully resident (dirtiness is detected
   by a write fault, which can only follow a complete fill) (SRPC203);
4. placeholders on one page never overlap (SRPC204);
5. under the single-home strategy, all entries on a page share one
   home space (SRPC205);
6. the relayed modified-data-set only references live, resident
   entries (SRPC206).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.analysis.diagnostics import Diagnostic, DiagnosticCollector
from repro.memory.page import Protection
from repro.smartrpc.errors import SmartRpcError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.smartrpc.runtime import SmartRpcRuntime, SmartSessionState


class InvariantViolation(SmartRpcError):
    """An internal-consistency invariant does not hold.

    ``diagnostics`` holds every violation found (not just the first).
    """

    def __init__(
        self,
        message: str,
        diagnostics: Optional[List[Diagnostic]] = None,
    ) -> None:
        super().__init__(message)
        self.diagnostics: List[Diagnostic] = list(diagnostics or ())


def session_diagnostics(
    runtime: "SmartRpcRuntime",
    state: "SmartSessionState",
    collector: Optional[DiagnosticCollector] = None,
) -> List[Diagnostic]:
    """Check every invariant, collecting all violations.

    Returns the diagnostics found in this call (also appended to
    ``collector`` when one is given).  An empty list means the session
    state is internally consistent.
    """
    if collector is None:
        collector = DiagnosticCollector()
    before = len(collector)
    cache = state.cache
    table = cache.table
    space = runtime.space

    # 1: rows within owned pages.
    for entry in table:
        first = entry.local_address // space.page_size
        last = (entry.end - 1) // space.page_size
        for number in range(first, last + 1):
            if not cache.owns_page(number):
                collector.emit(
                    "SRPC201",
                    f"{entry.pointer!r} placed on page {number} which "
                    "the session does not own",
                    session=state.session_id,
                    page=number,
                )
            elif entry not in cache.page_state(number).entries:
                collector.emit(
                    "SRPC202",
                    f"page {number} does not list {entry.pointer!r}",
                    session=state.session_id,
                    page=number,
                )

    # 2: the table's page index agrees with the page entry lists.
    for number in table.pages():
        listed = set(id(e) for e in cache.page_state(number).entries)
        indexed = set(id(e) for e in table.entries_on_page(number))
        if not indexed <= listed:
            collector.emit(
                "SRPC202",
                f"table page index for {number} disagrees with the "
                "page state",
                session=state.session_id,
                page=number,
            )

    # 3: protection matches residency and dirtiness.
    for number, page in cache._pages.items():
        protection = space.protection_of(number)
        if page.dirty:
            if protection is not Protection.READ_WRITE:
                collector.emit(
                    "SRPC203",
                    f"dirty page {number} is {protection}, not "
                    "READ_WRITE",
                    session=state.session_id,
                    page=number,
                )
            if not page.complete:
                collector.emit(
                    "SRPC203",
                    f"dirty page {number} has non-resident entries",
                    session=state.session_id,
                    page=number,
                )
        elif page.entries and page.complete:
            if protection is Protection.NONE and not page.closed:
                collector.emit(
                    "SRPC203",
                    f"complete open page {number} still inaccessible",
                    session=state.session_id,
                    page=number,
                )
        elif not page.complete:
            if protection is not Protection.NONE:
                collector.emit(
                    "SRPC203",
                    f"incomplete page {number} is {protection}, "
                    "not NONE",
                    session=state.session_id,
                    page=number,
                )

    # 4: no overlap within a page.
    for number in table.pages():
        spans = sorted(
            (entry.local_address, entry.end)
            for entry in table.entries_on_page(number)
        )
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            if e1 > s2:
                collector.emit(
                    "SRPC204",
                    f"overlapping placeholders on page {number}",
                    session=state.session_id,
                    page=number,
                )

    # 5: single-home pages are homogeneous.
    if cache.strategy == "single_home":
        for number in table.pages():
            homes = {
                entry.pointer.space_id
                for entry in table.entries_on_page(number)
            }
            if len(homes) > 1:
                collector.emit(
                    "SRPC205",
                    f"page {number} mixes home spaces {sorted(homes)} "
                    "under the single-home strategy",
                    session=state.session_id,
                    page=number,
                )

    # 6: relayed dirty entries are live and resident.
    for entry in state.relayed_dirty:
        if table.entry_for(entry.pointer) is not entry:
            collector.emit(
                "SRPC206",
                f"relayed dirty set references dead {entry.pointer!r}",
                session=state.session_id,
            )
        elif not entry.resident:
            collector.emit(
                "SRPC206",
                f"relayed dirty set references non-resident "
                f"{entry.pointer!r}",
                session=state.session_id,
            )

    return collector.diagnostics[before:]


def validate_session(
    runtime: "SmartRpcRuntime", state: "SmartSessionState"
) -> List[str]:
    """Check every invariant; returns the list of checks performed.

    Raises :class:`InvariantViolation` carrying all collected
    diagnostics when any invariant fails.
    """
    diagnostics = session_diagnostics(runtime, state)
    checks = [
        "rows-within-owned-pages",
        "page-indices-agree",
        "protection-matches-residency",
        "no-placeholder-overlap",
        "relayed-dirty-live",
    ]
    if state.cache.strategy == "single_home":
        checks.insert(4, "single-home-pages")
    if diagnostics:
        summary = "; ".join(
            f"{d.code}: {d.message}" for d in diagnostics
        )
        raise InvariantViolation(
            f"{len(diagnostics)} invariant violation(s): {summary}",
            diagnostics,
        )
    return checks
