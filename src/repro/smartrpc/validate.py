"""Session-state invariant checking (debugging and test support).

:func:`validate_session` asserts the internal consistency of one
session's smart-RPC state: the data allocation table, the cache page
bookkeeping and the page protections must all agree.  It is pure
inspection — no simulated time is charged and nothing is modified —
so tests (including the stateful property tests) can call it after
every operation.

The invariants, each traceable to the method's design:

1. every table row lies inside a cache page owned by this session;
2. a page's entry list and the table's page index agree;
3. protection matches residency: a page with any non-resident entry is
   inaccessible (``NONE``); a complete clean page is read-only; a
   dirty page is read-write and fully resident (dirtiness is detected
   by a write fault, which can only follow a complete fill);
4. placeholders on one page never overlap;
5. under the single-home strategy, all entries on a page share one
   home space;
6. the relayed modified-data-set only references live, resident
   entries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.memory.page import Protection
from repro.smartrpc.errors import SmartRpcError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.smartrpc.runtime import SmartRpcRuntime, SmartSessionState


class InvariantViolation(SmartRpcError):
    """An internal-consistency invariant does not hold."""


def validate_session(
    runtime: "SmartRpcRuntime", state: "SmartSessionState"
) -> List[str]:
    """Check every invariant; returns the list of checks performed.

    Raises :class:`InvariantViolation` on the first failure.
    """
    checks: List[str] = []
    cache = state.cache
    table = cache.table
    space = runtime.space

    # 1 + 2: rows within owned pages; indices agree.
    for entry in table:
        first = entry.local_address // space.page_size
        last = (entry.end - 1) // space.page_size
        for number in range(first, last + 1):
            if not cache.owns_page(number):
                raise InvariantViolation(
                    f"{entry.pointer!r} placed on page {number} which "
                    "the session does not own"
                )
            if entry not in cache.page_state(number).entries:
                raise InvariantViolation(
                    f"page {number} does not list {entry.pointer!r}"
                )
    checks.append("rows-within-owned-pages")

    for number in table.pages():
        listed = set(id(e) for e in cache.page_state(number).entries)
        indexed = set(id(e) for e in table.entries_on_page(number))
        if not indexed <= listed:
            raise InvariantViolation(
                f"table page index for {number} disagrees with the "
                "page state"
            )
    checks.append("page-indices-agree")

    # 3: protection matches residency and dirtiness.
    for number, page in cache._pages.items():
        protection = space.protection_of(number)
        if page.dirty:
            if protection is not Protection.READ_WRITE:
                raise InvariantViolation(
                    f"dirty page {number} is {protection}, not "
                    "READ_WRITE"
                )
            if not page.complete:
                raise InvariantViolation(
                    f"dirty page {number} has non-resident entries"
                )
        elif page.entries and page.complete:
            if protection is Protection.NONE and not page.closed:
                raise InvariantViolation(
                    f"complete open page {number} still inaccessible"
                )
        elif not page.complete:
            if protection is not Protection.NONE:
                raise InvariantViolation(
                    f"incomplete page {number} is {protection}, "
                    "not NONE"
                )
    checks.append("protection-matches-residency")

    # 4: no overlap within a page.
    for number in table.pages():
        spans = sorted(
            (entry.local_address, entry.end)
            for entry in table.entries_on_page(number)
        )
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            if e1 > s2:
                raise InvariantViolation(
                    f"overlapping placeholders on page {number}"
                )
    checks.append("no-placeholder-overlap")

    # 5: single-home pages are homogeneous.
    if cache.strategy == "single_home":
        for number in table.pages():
            homes = {
                entry.pointer.space_id
                for entry in table.entries_on_page(number)
            }
            if len(homes) > 1:
                raise InvariantViolation(
                    f"page {number} mixes home spaces {sorted(homes)} "
                    "under the single-home strategy"
                )
        checks.append("single-home-pages")

    # 6: relayed dirty entries are live and resident.
    for entry in state.relayed_dirty:
        if table.entry_for(entry.pointer) is not entry:
            raise InvariantViolation(
                f"relayed dirty set references dead {entry.pointer!r}"
            )
        if not entry.resident:
            raise InvariantViolation(
                f"relayed dirty set references non-resident "
                f"{entry.pointer!r}"
            )
    checks.append("relayed-dirty-live")

    return checks
