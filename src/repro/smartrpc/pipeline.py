"""The fault-coalescing fetch pipeline (demand batching + prefetch).

One :class:`FetchPipeline` lives on each smart session and owns the
fault-driven fill path.  With every pipeline knob at zero (the
``paper`` / ``lazy`` presets) it is a byte-identical pass-through to
the classic one-request-per-home fill of
:meth:`repro.smartrpc.cache.CacheManager._fill`.  The ``pipelined``
policy preset turns on three independent mechanisms governed by the
:class:`~repro.smartrpc.policy.TransferPolicy` hooks:

* **coalescing** (``batch_window``) — a demand request carries, beyond
  the faulted page's pointers, up to ``batch_window`` other
  non-resident same-home table entries (allocation-table discovery
  order).  The home walks the closure from all of them, so one round
  trip fills several placeholder pages.
* **duplicate suppression / piggyback** (the pending table) — an
  asynchronous fetch already in flight for a page absorbs a later
  fault on that page instead of issuing a second exchange; the fault
  simply joins the outstanding reply.  No page is ever covered by two
  in-flight fetches.
* **async prefetch** (``max_inflight`` × ``prefetch_depth``) — after a
  fill, the pipeline issues up to ``max_inflight`` asynchronous
  requests for frontier entries with ``prefetch_depth`` times the
  policy's closure budget, overlapping the exchange with ground-thread
  execution.  On the simulated transport the overlap is modelled with
  :meth:`~repro.simnet.clock.SimClock.mark` /
  :meth:`~repro.simnet.clock.SimClock.rewind` /
  :meth:`~repro.simnet.clock.SimClock.join`; on a real transport the
  exchange runs on an executor thread and the fault blocks on its
  future.

Prefetched replies are held *unapplied* in the pending table until a
fault absorbs them, and the table is discarded on every activity
transfer (the only instants another space can run and mutate home
data), so results and final heap state are identical with the pipeline
on or off — the property suite in
``tests/properties/test_pipeline_equivalence.py`` checks exactly that.

Every issue/absorb is recorded as a ``data-batch`` trace event for the
offline SRPC310 conformance rule, and the wins feed the
:class:`~repro.simnet.stats.TransferLedger` counters
``round_trips_saved`` / ``piggyback_hits``.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
)

from repro.simnet.message import MessageKind
from repro.smartrpc import transfer
from repro.smartrpc.errors import SessionAbortedError
from repro.smartrpc.long_pointer import LongPointer
from repro.transport.base import TransportError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import Future, ThreadPoolExecutor
    from repro.smartrpc.cache import CacheManager, PageState
    from repro.smartrpc.runtime import SmartRpcRuntime, SmartSessionState


class PendingFetch:
    """One in-flight asynchronous data exchange."""

    __slots__ = (
        "fetch_id",
        "home",
        "pointers",
        "pages",
        "budget",
        "order",
        "issued_at",
        "reply",
        "ready_at",
        "future",
    )

    def __init__(
        self,
        fetch_id: int,
        home: str,
        pointers: List[LongPointer],
        pages: Set[int],
        budget: int,
        order: str,
        issued_at: float,
    ) -> None:
        self.fetch_id = fetch_id
        self.home = home
        self.pointers = pointers
        self.pages = pages
        self.budget = budget
        self.order = order
        self.issued_at = issued_at
        self.reply: Optional[bytes] = None
        self.ready_at = 0.0
        self.future: Optional["Future"] = None


class FetchPipeline:
    """Per-session data-plane scheduler for the fill-on-fault path."""

    def __init__(
        self, runtime: "SmartRpcRuntime", state: "SmartSessionState"
    ) -> None:
        self.runtime = runtime
        self.state = state
        self._pending: List[PendingFetch] = []
        self._next_fetch_id = 0
        self._executor: Optional["ThreadPoolExecutor"] = None

    # -- configuration ---------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether any pipeline mechanism is enabled by the policy."""
        policy = self.state.policy
        return (
            policy.batch_window > 0
            or policy.max_inflight > 0
            or policy.prefetch_depth > 0
        )

    @property
    def _overlap_simulated(self) -> bool:
        # The simulated clock can rewind, so the exchange runs inline
        # and is re-timed; a wall clock cannot, so the exchange runs on
        # a real thread instead.
        return hasattr(self.runtime.clock, "rewind")

    # -- the fill path ---------------------------------------------------------

    def fill_page(self, cache: "CacheManager", page: "PageState") -> None:
        """Make every datum allocated to ``page`` resident.

        The page is closed to further placeholder allocation first: the
        arriving data's own pointer fields swizzle into *new*
        placeholders, and letting those land on the page being filled
        would keep it incomplete forever.
        """
        page.closed = True
        if not self.active:
            # Pass-through: exactly the classic fill — one request per
            # home space, demanded roots only, nothing asynchronous.
            wanted = self._group_by_home(page.entries)
            for home, pointers in wanted.items():
                self.runtime.request_data(self.state, home, pointers)
            return
        fault_pages = {page.number}
        for entry in page.entries:
            fault_pages.update(cache.pages_of(entry))
        incomplete_before = cache.incomplete_pages() - fault_pages
        # 1. A fetch already in flight for this page absorbs the fault.
        for fetch in list(self._pending):
            if fetch.pages & fault_pages:
                self._absorb(fetch, page.number)
        # 2. Demand the remainder, coalescing same-home frontier entries.
        wanted = self._group_by_home(page.entries)
        for home, pointers in wanted.items():
            self._demand(cache, page, home, pointers)
        # 3. Score pages this fault completed beyond its own: each is a
        #    demand round trip that will now never happen.
        saved = incomplete_before - cache.incomplete_pages()
        if saved:
            self.state.transfer_stats.record_saved_round_trips(len(saved))
            self.runtime.stats.transfer_ledger.record_saved_round_trips(
                len(saved)
            )
        # 4. Overlap the next fetch with the resuming ground thread.
        self._maybe_prefetch(cache)

    @staticmethod
    def _group_by_home(
        entries: Sequence,
    ) -> Dict[str, List[LongPointer]]:
        wanted: Dict[str, List[LongPointer]] = {}
        for entry in entries:
            if not entry.resident:
                wanted.setdefault(entry.pointer.space_id, []).append(
                    entry.pointer
                )
        return wanted

    def _demand(
        self,
        cache: "CacheManager",
        page: "PageState",
        home: str,
        pointers: List[LongPointer],
    ) -> None:
        extras = self._coalesce_extras(cache, home, set(pointers))
        requested = pointers + extras
        policy = self.state.policy
        budget = policy.request_budget(self.state)
        order = policy.closure_order
        pages: Set[int] = set()
        for pointer in requested:
            entry = cache.table.entry_for(pointer)
            if entry is not None:
                pages.update(cache.pages_of(entry))
        payload = transfer.encode_request_payload(
            self.state, home, requested, budget, order
        )
        self.runtime.clock.advance(
            self.runtime.cost_model.codec_cost(len(payload))
        )
        fetch_id = self._allocate_fetch_id()
        self._record_batch_event(
            "demand",
            fetch_id,
            home,
            pages=pages,
            faults=[page.number],
            roots=len(pointers),
            coalesced=len(extras),
            issued_at=self.runtime.clock.now,
        )
        reply = self.runtime.session_send(
            self.state,
            home,
            MessageKind.DATA_REQUEST,
            payload,
            reply_kind=MessageKind.DATA_REPLY,
        )
        transfer.apply_reply(
            self.runtime,
            self.state,
            home,
            reply,
            requested,
            set(pointers),
            budget,
            order,
        )

    def _coalesce_extras(
        self,
        cache: "CacheManager",
        home: str,
        demanded: Set[LongPointer],
    ) -> List[LongPointer]:
        """Non-resident same-home entries to ride the demand request.

        Discovery (allocation-table) order, skipping anything already
        demanded or covered by an in-flight fetch, bounded by the
        policy's ``batch_window``.
        """
        window = self.state.policy.batch_window
        if window <= 0:
            return []
        covered = self._pending_pages()
        extras: List[LongPointer] = []
        for entry in cache.table:
            if entry.resident or entry.pointer in demanded:
                continue
            if entry.pointer.space_id != home:
                continue
            if covered & set(cache.pages_of(entry)):
                continue
            extras.append(entry.pointer)
            if len(extras) >= window:
                break
        return extras

    # -- async prefetch --------------------------------------------------------

    def _maybe_prefetch(self, cache: "CacheManager") -> None:
        policy = self.state.policy
        if policy.prefetch_depth <= 0 or policy.max_inflight <= 0:
            return
        while len(self._pending) < policy.max_inflight:
            if not self._issue_prefetch(cache):
                return

    def _issue_prefetch(self, cache: "CacheManager") -> bool:
        """Issue one asynchronous frontier fetch; False when idle."""
        policy = self.state.policy
        covered = self._pending_pages()
        window = max(1, policy.batch_window)
        home: Optional[str] = None
        roots: List[LongPointer] = []
        pages: Set[int] = set()
        for entry in cache.table:
            if entry.resident:
                continue
            entry_pages = set(cache.pages_of(entry))
            if covered & entry_pages:
                continue
            if home is None:
                home = entry.pointer.space_id
            elif entry.pointer.space_id != home:
                continue
            roots.append(entry.pointer)
            pages.update(entry_pages)
            if len(roots) >= window:
                break
        if home is None:
            return False
        budget = policy.request_budget(self.state) * policy.prefetch_depth
        order = policy.closure_order
        payload = transfer.encode_request_payload(
            self.state, home, roots, budget, order
        )
        # Encoding the request is ground-thread work; the exchange
        # itself overlaps execution.
        self.runtime.clock.advance(
            self.runtime.cost_model.codec_cost(len(payload))
        )
        fetch = PendingFetch(
            self._allocate_fetch_id(),
            home,
            roots,
            pages,
            budget,
            order,
            issued_at=self.runtime.clock.now,
        )
        self._record_batch_event(
            "prefetch",
            fetch.fetch_id,
            home,
            pages=pages,
            faults=[],
            roots=len(roots),
            coalesced=0,
            issued_at=fetch.issued_at,
        )
        if self._overlap_simulated:
            clock = self.runtime.clock
            mark = clock.mark()
            fetch.reply = self.runtime.session_send(
                self.state,
                home,
                MessageKind.DATA_REQUEST,
                payload,
                reply_kind=MessageKind.DATA_REPLY,
            )
            fetch.ready_at = clock.now
            clock.rewind(mark)
        else:
            # The exchange runs on a worker thread, so the guarded
            # send's abort path (which mutates session state) stays on
            # the ground thread: the raw send gets only the timeout
            # cap, and :meth:`_collect` converts its failure.
            kwargs = {}
            if self.state.policy.exchange_timeout > 0:
                kwargs["timeout"] = self.state.policy.exchange_timeout
            fetch.future = self._ensure_executor().submit(
                lambda: self.runtime.site.send(
                    home,
                    MessageKind.DATA_REQUEST,
                    payload,
                    reply_kind=MessageKind.DATA_REPLY,
                    **kwargs,
                )
            )
        self._pending.append(fetch)
        return True

    def _absorb(self, fetch: PendingFetch, fault_page: int) -> None:
        """A fault joins an outstanding exchange instead of issuing one."""
        self._pending.remove(fetch)
        reply = self._collect(fetch)
        self.state.transfer_stats.record_piggyback_hit()
        self.runtime.stats.transfer_ledger.record_piggyback_hit()
        self.runtime.site.reply_cache.note_piggyback()
        self._record_batch_event(
            "absorb",
            fetch.fetch_id,
            fetch.home,
            pages=fetch.pages,
            faults=[fault_page],
            roots=len(fetch.pointers),
            coalesced=0,
            issued_at=fetch.issued_at,
        )
        transfer.apply_reply(
            self.runtime,
            self.state,
            fetch.home,
            reply,
            fetch.pointers,
            set(),
            fetch.budget,
            fetch.order,
        )

    def _collect(self, fetch: PendingFetch) -> bytes:
        if fetch.future is not None:
            try:
                return fetch.future.result()
            except TransportError as exc:
                reason = f"peer-unreachable:{fetch.home}"
                self.runtime.abort_session(self.state, reason=reason)
                raise SessionAbortedError(
                    f"session {self.state.session_id!r} aborted: "
                    f"prefetch from {fetch.home!r} failed ({exc})",
                    session_id=self.state.session_id,
                    reason=reason,
                ) from exc
        # Simulated overlap: the exchange already ran in a rewound
        # window; the fault waits until the reply's arrival instant.
        self.runtime.clock.join(fetch.ready_at)
        assert fetch.reply is not None
        return fetch.reply

    # -- lifecycle -------------------------------------------------------------

    def discard_pending(self) -> None:
        """Drop unabsorbed prefetches (activity is about to transfer).

        While another space holds the thread of control it may mutate
        its home data, so a reply fetched before the transfer could be
        stale by the time a fault would absorb it.  The exchanges are
        reaped (their wire and message costs already counted — honest
        prefetch waste) and the replies discarded.
        """
        for fetch in self._pending:
            if fetch.future is not None:
                try:
                    fetch.future.result()
                except TransportError:
                    # Speculative traffic: a failed prefetch is waste,
                    # not a session error.  If the home really is dead
                    # the next demanded exchange aborts the session.
                    pass
        self._pending.clear()

    def drain(self) -> None:
        """Settle all in-flight work; the session is going away."""
        self.discard_pending()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def abandon(self) -> None:
        """Drop everything without waiting; the session is dead.

        Unlike :meth:`drain` this never blocks on (or raises from)
        exchanges to peers that may themselves be dead: unstarted
        futures are cancelled and the eventual failures of running
        ones are consumed off-thread.
        """
        for fetch in self._pending:
            future = fetch.future
            if future is not None and not future.cancel():
                future.add_done_callback(lambda f: f.exception())
        self._pending.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    # -- internals -------------------------------------------------------------

    def _pending_pages(self) -> Set[int]:
        pages: Set[int] = set()
        for fetch in self._pending:
            pages.update(fetch.pages)
        return pages

    def _allocate_fetch_id(self) -> int:
        self._next_fetch_id += 1
        return self._next_fetch_id

    def _ensure_executor(self) -> "ThreadPoolExecutor":
        if self._executor is None:
            from concurrent.futures import ThreadPoolExecutor

            self._executor = ThreadPoolExecutor(
                max_workers=max(1, self.state.policy.max_inflight),
                thread_name_prefix=f"prefetch-{self.runtime.site_id}",
            )
        return self._executor

    def _record_batch_event(
        self,
        kind: str,
        fetch_id: int,
        home: str,
        pages: Set[int],
        faults: List[int],
        roots: int,
        coalesced: int,
        issued_at: float,
    ) -> None:
        self.runtime.trace_event(
            "data-batch",
            f"{self.runtime.site_id}: {kind} fetch #{fetch_id} from "
            f"{home} covering {len(pages)} page(s) "
            f"({roots} root(s), {coalesced} coalesced)",
            session=self.state.session_id,
            space=self.runtime.site_id,
            home=home,
            kind=kind,
            fetch_id=fetch_id,
            pages=sorted(pages),
            faults=list(faults),
            roots=roots,
            coalesced=coalesced,
            issued_at=issued_at,
        )
