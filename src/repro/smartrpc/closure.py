"""Bounded transitive-closure traversal for eager transfer (paper §3.3).

When a home space serves a data request it does not send just the
requested data: it traverses the transitive closure of the requested
pointers breadth-first and includes everything it reaches until the
*closure size* budget (bytes) is exhausted.  Closure size 0 degenerates
to the fully lazy behaviour; an unbounded budget degenerates to the
fully eager one — exactly the spectrum Figure 6 sweeps.

The traversal follows only pointers whose targets live in this space's
own heap.  A pointer into data this space merely *caches* from a third
space is emitted as a long pointer for the requester to resolve against
that third space, but its data cannot be served from here.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, List, Optional, Sequence, Set

from repro.smartrpc.errors import DanglingPointerError, SmartRpcError
from repro.smartrpc.long_pointer import LongPointer
from repro.xdr.types import TypeSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.smartrpc.hints import ClosureHints
    from repro.smartrpc.runtime import SmartRpcRuntime, SmartSessionState

BREADTH_FIRST = "bfs"
DEPTH_FIRST = "dfs"


class ClosureItem:
    """One datum selected for transfer."""

    __slots__ = ("pointer", "spec", "address")

    def __init__(
        self, pointer: LongPointer, spec: TypeSpec, address: int
    ) -> None:
        self.pointer = pointer
        self.spec = spec
        self.address = address


class ClosureWalker:
    """Walks a home space's heap from a set of requested pointers."""

    def __init__(
        self,
        runtime: "SmartRpcRuntime",
        state: "SmartSessionState",
        budget_bytes: int,
        order: str = BREADTH_FIRST,
        hints: Optional["ClosureHints"] = None,
    ) -> None:
        if order not in (BREADTH_FIRST, DEPTH_FIRST):
            raise SmartRpcError(f"unknown closure order {order!r}")
        if budget_bytes < 0:
            raise SmartRpcError(f"bad closure budget {budget_bytes!r}")
        self.runtime = runtime
        self.state = state
        self.budget_bytes = budget_bytes
        self.order = order
        # Default to the serving runtime's policy hints, so a walker
        # constructed bare behaves like the data plane's.
        self.hints = hints if hints is not None else runtime.policy.hints

    def walk(self, roots: Sequence[LongPointer]) -> List[ClosureItem]:
        """Select data to transfer: all roots, then closure to budget.

        Requested roots are always included (the requester faulted on
        them); traversal beyond the roots stops once the total size of
        selected data exceeds the budget.  Admission happens when a
        child is discovered; emission order is traversal order (level
        by level for BFS, branch by branch for DFS).
        """
        items: List[ClosureItem] = []
        seen: Set[LongPointer] = set()
        queue: deque = deque()
        total = 0
        for root in roots:
            if root in seen:
                continue
            seen.add(root)
            queue.append(self._materialise(root))
            total += queue[-1].spec.sizeof(self.runtime.arch)
        budget_left = total < self.budget_bytes
        while queue:
            item = (
                queue.popleft()
                if self.order == BREADTH_FIRST
                else queue.pop()
            )
            items.append(item)
            if not budget_left:
                continue
            for child in self._children(item):
                if child in seen:
                    continue
                candidate = self._materialise(child)
                size = candidate.spec.sizeof(self.runtime.arch)
                if total + size > self.budget_bytes:
                    budget_left = False
                    break
                seen.add(child)
                total += size
                queue.append(candidate)
        return items

    # -- internals -----------------------------------------------------------

    def _materialise(self, pointer: LongPointer) -> ClosureItem:
        if pointer.space_id != self.runtime.site_id:
            raise SmartRpcError(
                f"{pointer!r} requested from non-home space "
                f"{self.runtime.site_id!r}"
            )
        allocation = self.runtime.heap.allocation_at(pointer.address)
        if allocation is None or allocation.address != pointer.address:
            raise DanglingPointerError(
                f"{pointer!r} does not reference a live allocation"
            )
        spec = self.runtime.resolver.resolve(pointer.type_id)
        return ClosureItem(pointer, spec, pointer.address)

    def _children(self, item: ClosureItem) -> List[LongPointer]:
        """Long pointers of the item's locally-served children.

        Programmer hints (paper §6: "suggestions provided by the
        programmer") can restrict and order which pointer fields are
        followed per type; unhinted types follow every pointer field.
        """
        offsets = None
        hints = self.hints
        if hints is not None:
            offsets = hints.pointer_offsets(
                item.pointer.type_id, item.spec, self.runtime.arch
            )
        if offsets is None:
            offsets = [
                offset
                for offset, _ in item.spec.pointer_fields(
                    self.runtime.arch
                )
            ]
        children: List[LongPointer] = []
        for offset in offsets:
            value = self.runtime.codec.read_pointer(item.address + offset)
            child = self._resolve_child(value)
            if child is not None:
                children.append(child)
        return children

    def _resolve_child(self, value: int) -> Optional[LongPointer]:
        if value == 0:
            return None
        allocation = self.runtime.heap.allocation_at(value)
        if allocation is not None and allocation.address == value:
            return LongPointer(
                self.runtime.site_id, value, allocation.type_id
            )
        # A pointer into this space's *cache* of a third space: the
        # requester must fetch it from that space; do not traverse.
        return None
