"""Smart-RPC error types."""

from repro.rpc.errors import RpcError


class SmartRpcError(RpcError):
    """Base class for smart-RPC failures."""


class SwizzleError(SmartRpcError):
    """A pointer could not be translated.

    Typical causes: unswizzling an address that is neither a live heap
    allocation nor a cache entry, or an *interior* pointer (the
    reproduction supports long pointers to allocation bases only — a
    documented simplification, see DESIGN.md).
    """


class DanglingPointerError(SmartRpcError):
    """A long pointer references data its home space no longer holds."""


class SessionAbortedError(SmartRpcError):
    """A session was torn down before it could end cleanly.

    Raised instead of hanging when a per-exchange timeout fires, a
    per-session deadline expires, or the orphan reaper discards a
    session whose peer stopped heartbeating.  ``session_id`` names the
    aborted session and ``reason`` the triggering condition (e.g.
    ``"exchange-timeout"``, ``"deadline"``, ``"peer-dead"``).
    """

    def __init__(self, message: str, session_id: str = "", reason: str = "") -> None:
        super().__init__(message)
        self.session_id = session_id
        self.reason = reason
