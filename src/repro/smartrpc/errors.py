"""Smart-RPC error types."""

from repro.rpc.errors import RpcError


class SmartRpcError(RpcError):
    """Base class for smart-RPC failures."""


class SwizzleError(SmartRpcError):
    """A pointer could not be translated.

    Typical causes: unswizzling an address that is neither a live heap
    allocation nor a cache entry, or an *interior* pointer (the
    reproduction supports long pointers to allocation bases only — a
    documented simplification, see DESIGN.md).
    """


class DanglingPointerError(SmartRpcError):
    """A long pointer references data its home space no longer holds."""
