"""The coherency protocol (paper §3.4).

RPC's synchronous nature — one active thread per session, even across
nested calls — means coherency need only be guaranteed *for the active
thread*.  The protocol therefore ships the **modified data set** (all
data on dirty cache pages, plus dirty data relayed from other spaces)
whenever thread activity crosses address spaces: piggybacked on every
call's arguments and every reply's results.

At the end of the session the ground runtime

1. writes every modified datum back to its original address space, and
2. multicasts an invalidation so every participant drops its cached
   data — remote pointers have no meaning after the session.

No concurrency control appears anywhere, which is the paper's point of
contrast with DSM systems.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.simnet.message import Message, MessageKind
from repro.smartrpc import transfer
from repro.smartrpc.closure import ClosureItem
from repro.xdr.stream import XdrDecoder, XdrEncoder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.smartrpc.runtime import SmartRpcRuntime, SmartSessionState


def modified_items(
    runtime: "SmartRpcRuntime", state: "SmartSessionState"
) -> List[ClosureItem]:
    """The modified data set as transferable items."""
    entries = []
    seen = set()
    for entry in state.cache.dirty_entries():
        seen.add(entry)
        entries.append(entry)
    for entry in state.relayed_dirty:
        if entry not in seen:
            entries.append(entry)
    items = []
    for entry in entries:
        if not entry.resident:
            continue
        spec = runtime.resolver.resolve(entry.pointer.type_id)
        items.append(
            ClosureItem(entry.pointer, spec, entry.local_address)
        )
    return items


def encode_piggyback(
    runtime: "SmartRpcRuntime", state: "SmartSessionState"
) -> bytes:
    """Build the per-activity-transfer piggyback.

    Carries the sender's participant set (so the ground space ends the
    session knowing *every* involved space, even ones it never called
    directly) and the modified data set.
    """
    encoder = XdrEncoder()
    participants = sorted(state.participants | {runtime.site_id})
    encoder.pack_uint32(len(participants))
    for participant in participants:
        encoder.pack_string(participant)
    encoder.pack_opaque(
        transfer.encode_batch(runtime, state, modified_items(runtime, state))
    )
    return encoder.getvalue()


def apply_piggyback(
    runtime: "SmartRpcRuntime",
    state: "SmartSessionState",
    payload: bytes,
) -> None:
    """Apply an incoming piggyback (participants + modified data)."""
    if not payload:
        return
    decoder = XdrDecoder(payload)
    count = decoder.unpack_uint32()
    for _ in range(count):
        state.note_participant(decoder.unpack_string())
    batch = decoder.unpack_opaque()
    decoder.expect_done()
    transfer.apply_batch(runtime, state, batch, overwrite=True)


# -- session end --------------------------------------------------------------


def end_session(
    runtime: "SmartRpcRuntime", state: "SmartSessionState"
) -> None:
    """Ground-side session teardown: write back, invalidate, drop."""
    runtime.flush_memory_batch(state)
    participants = sorted(
        p for p in state.participants if p != runtime.site_id
    )
    dirty_homes: Dict[str, int] = {}
    for item in modified_items(runtime, state):
        home = item.pointer.space_id
        if home != runtime.site_id:
            dirty_homes[home] = dirty_homes.get(home, 0) + 1
    runtime.stats.record_event(
        runtime.clock.now,
        "session-end",
        f"{runtime.site_id}: session {state.session_id} ends "
        f"(participants {participants}, dirty homes {dirty_homes})",
        data={
            "space": runtime.site_id,
            "session": state.session_id,
            "participants": participants,
            "dirty_homes": dict(dirty_homes),
        },
    )
    _write_back(runtime, state)
    for participant in participants:
        encoder = XdrEncoder()
        encoder.pack_string(state.session_id)
        runtime.site.send(
            participant, MessageKind.INVALIDATE, encoder.getvalue()
        )
        runtime.stats.record_event(
            runtime.clock.now,
            "invalidate",
            f"{runtime.site_id}: session {state.session_id} "
            f"invalidated at {participant}",
            data={
                "space": runtime.site_id,
                "session": state.session_id,
                "dst": participant,
            },
        )
    state.cache.invalidate()
    state.relayed_dirty.clear()


def _write_back(
    runtime: "SmartRpcRuntime", state: "SmartSessionState"
) -> None:
    by_home: Dict[str, List[ClosureItem]] = {}
    for item in modified_items(runtime, state):
        by_home.setdefault(item.pointer.space_id, []).append(item)
    for home, items in sorted(by_home.items()):
        if home == runtime.site_id:
            continue  # originals live here; nothing to ship
        encoder = XdrEncoder()
        encoder.pack_string(state.session_id)
        encoder.pack_string(state.ground_site)
        encoder.pack_opaque(transfer.encode_batch(runtime, state, items))
        payload = encoder.getvalue()
        runtime.clock.advance(runtime.cost_model.codec_cost(len(payload)))
        runtime.site.send(
            home,
            MessageKind.WRITE_BACK,
            payload,
            reply_kind=MessageKind.WRITE_BACK_ACK,
        )
        runtime.stats.write_backs += 1
        runtime.stats.record_event(
            runtime.clock.now,
            "write-back",
            f"{runtime.site_id}: session {state.session_id} wrote "
            f"{len(items)} item(s) back to {home}",
            data={
                "space": runtime.site_id,
                "session": state.session_id,
                "home": home,
                "items": len(items),
            },
        )


def handle_write_back(
    runtime: "SmartRpcRuntime", message: Message
) -> bytes:
    """Home-space side of write-back: update original data."""
    runtime.clock.advance(
        runtime.cost_model.codec_cost(len(message.payload))
    )
    decoder = XdrDecoder(message.payload)
    session_id = decoder.unpack_string()
    ground_site = decoder.unpack_string()
    batch = decoder.unpack_opaque()
    decoder.expect_done()
    state = runtime.ensure_smart_session(session_id, ground_site)
    transfer.apply_batch(runtime, state, batch, overwrite=True)
    return b""


def handle_invalidate(
    runtime: "SmartRpcRuntime", message: Message
) -> bytes:
    """Participant side of the end-of-session invalidation multicast."""
    decoder = XdrDecoder(message.payload)
    session_id = decoder.unpack_string()
    decoder.expect_done()
    runtime.invalidate_session(session_id)
    return b""
