"""The coherency protocol (paper §3.4).

RPC's synchronous nature — one active thread per session, even across
nested calls — means coherency need only be guaranteed *for the active
thread*.  The protocol therefore ships the **modified data set** (all
data on dirty cache pages, plus dirty data relayed from other spaces)
whenever thread activity crosses address spaces: piggybacked on every
call's arguments and every reply's results.

At the end of the session the ground runtime

1. writes every modified datum back to its original address space, and
2. multicasts an invalidation so every participant drops its cached
   data — remote pointers have no meaning after the session.

No concurrency control appears anywhere, which is the paper's point of
contrast with DSM systems.

The write-back itself runs in two phases (DESIGN.md §12): every dirty
home first *stages* its batch (``WRITEBACK_PREPARE``), and only when
every stage is acknowledged does the ground *commit* them
(``WRITEBACK_COMMIT``), at which point each home applies its staged
batch to the originals.  A crash anywhere in between therefore never
leaves a home space half-updated: an uncommitted home discards its
staged batch on the abort INVALIDATE (or when its orphan reaper
fires), so each home ends either fully original or fully updated.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.simnet.message import Message, MessageKind
from repro.smartrpc import transfer
from repro.smartrpc.closure import ClosureItem
from repro.smartrpc.errors import SmartRpcError
from repro.transport.base import TransportError
from repro.xdr.stream import XdrDecoder, XdrEncoder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.smartrpc.runtime import SmartRpcRuntime, SmartSessionState


def modified_items(
    runtime: "SmartRpcRuntime", state: "SmartSessionState"
) -> List[ClosureItem]:
    """The modified data set as transferable items."""
    entries = []
    seen = set()
    for entry in state.cache.dirty_entries():
        seen.add(entry)
        entries.append(entry)
    for entry in state.relayed_dirty:
        if entry not in seen:
            entries.append(entry)
    items = []
    for entry in entries:
        if not entry.resident:
            continue
        spec = runtime.resolver.resolve(entry.pointer.type_id)
        items.append(
            ClosureItem(entry.pointer, spec, entry.local_address)
        )
    return items


def encode_piggyback(
    runtime: "SmartRpcRuntime", state: "SmartSessionState"
) -> bytes:
    """Build the per-activity-transfer piggyback.

    Carries the sender's participant set (so the ground space ends the
    session knowing *every* involved space, even ones it never called
    directly) and the modified data set.
    """
    encoder = XdrEncoder()
    participants = sorted(state.participants | {runtime.site_id})
    encoder.pack_uint32(len(participants))
    for participant in participants:
        encoder.pack_string(participant)
    encoder.pack_opaque(
        transfer.encode_batch(runtime, state, modified_items(runtime, state))
    )
    return encoder.getvalue()


def apply_piggyback(
    runtime: "SmartRpcRuntime",
    state: "SmartSessionState",
    payload: bytes,
) -> None:
    """Apply an incoming piggyback (participants + modified data)."""
    if not payload:
        return
    decoder = XdrDecoder(payload)
    count = decoder.unpack_uint32()
    for _ in range(count):
        state.note_participant(decoder.unpack_string())
    batch = decoder.unpack_opaque()
    decoder.expect_done()
    transfer.apply_batch(runtime, state, batch, overwrite=True)


# -- session end --------------------------------------------------------------


def end_session(
    runtime: "SmartRpcRuntime", state: "SmartSessionState"
) -> None:
    """Ground-side session teardown: write back, invalidate, drop."""
    runtime.flush_memory_batch(state)
    participants = sorted(
        p for p in state.participants if p != runtime.site_id
    )
    dirty_homes: Dict[str, int] = {}
    for item in modified_items(runtime, state):
        home = item.pointer.space_id
        if home != runtime.site_id:
            dirty_homes[home] = dirty_homes.get(home, 0) + 1
    runtime.trace_event(
        "session-end",
        f"{runtime.site_id}: session {state.session_id} ends "
        f"(participants {participants}, dirty homes {dirty_homes})",
        session=state.session_id,
        space=runtime.site_id,
        participants=participants,
        dirty_homes=dict(dirty_homes),
    )
    _write_back(runtime, state)
    for participant in participants:
        encoder = XdrEncoder()
        encoder.pack_string(state.session_id)
        try:
            runtime.site.send(
                participant, MessageKind.INVALIDATE, encoder.getvalue()
            )
        except TransportError:
            # The write-back already committed; a dead participant
            # cleans itself up when its orphan reaper fires.
            continue
        runtime.trace_event(
            "invalidate",
            f"{runtime.site_id}: session {state.session_id} "
            f"invalidated at {participant}",
            session=state.session_id,
            space=runtime.site_id,
            dst=participant,
        )
    state.cache.invalidate()
    state.relayed_dirty.clear()


def _write_back(
    runtime: "SmartRpcRuntime", state: "SmartSessionState"
) -> None:
    """Two-phase write-back: stage at every dirty home, then commit.

    Phase ordering is the crash-safety argument: no home applies
    anything until *every* home has acknowledged holding its complete
    batch, and each home's apply is a single local step, so a crash at
    any instant leaves every home either fully original or fully
    updated (an uncommitted staged batch is discarded by the abort
    INVALIDATE or the home's own orphan reaper).
    """
    by_home: Dict[str, List[ClosureItem]] = {}
    for item in modified_items(runtime, state):
        by_home.setdefault(item.pointer.space_id, []).append(item)
    homes = sorted(h for h in by_home if h != runtime.site_id)
    for home in homes:
        encoder = XdrEncoder()
        encoder.pack_string(state.session_id)
        encoder.pack_string(state.ground_site)
        encoder.pack_opaque(
            transfer.encode_batch(runtime, state, by_home[home])
        )
        payload = encoder.getvalue()
        runtime.clock.advance(runtime.cost_model.codec_cost(len(payload)))
        runtime.session_send(
            state,
            home,
            MessageKind.WRITEBACK_PREPARE,
            payload,
            reply_kind=MessageKind.WRITEBACK_PREPARE_ACK,
        )
    for home in homes:
        encoder = XdrEncoder()
        encoder.pack_string(state.session_id)
        runtime.session_send(
            state,
            home,
            MessageKind.WRITEBACK_COMMIT,
            encoder.getvalue(),
            reply_kind=MessageKind.WRITEBACK_COMMIT_ACK,
        )
        runtime.stats.write_backs += 1
        runtime.trace_event(
            "write-back",
            f"{runtime.site_id}: session {state.session_id} wrote "
            f"{len(by_home[home])} item(s) back to {home}",
            session=state.session_id,
            space=runtime.site_id,
            home=home,
            items=len(by_home[home]),
        )


def _record_phase(
    runtime: "SmartRpcRuntime",
    state: "SmartSessionState",
    phase: str,
    size: int,
) -> None:
    """Trace one home-side write-back phase transition.

    Recorded at the *home* (not the ground) so the evidence survives a
    ground crash: the SRPC321 conformance rule checks every commit at
    a space against that same space's earlier prepare.
    """
    runtime.trace_event(
        "writeback-phase",
        f"{runtime.site_id}: session {state.session_id} write-back "
        f"{phase} ({size} staged byte(s))",
        session=state.session_id,
        space=runtime.site_id,
        ground=state.ground_site,
        home=runtime.site_id,
        phase=phase,
        bytes=size,
    )


def handle_writeback_prepare(
    runtime: "SmartRpcRuntime", message: Message
) -> bytes:
    """Home-space phase 1: hold the batch without applying it."""
    runtime.clock.advance(
        runtime.cost_model.codec_cost(len(message.payload))
    )
    decoder = XdrDecoder(message.payload)
    session_id = decoder.unpack_string()
    ground_site = decoder.unpack_string()
    # Staged as a view, not a copy.  On an owned payload the view just
    # pins the ``bytes``; on a shared-memory delivery it aliases the
    # ground's data segment, and retaining the carrier lease keeps the
    # extent pinned there — the batch is never shipped twice, commit
    # applies it straight out of the segment.
    batch = decoder.unpack_opaque_view()
    decoder.expect_done()
    state = runtime.ensure_smart_session(session_id, ground_site)
    runtime._discard_staged(state)  # a re-prepare supersedes the old pin
    lease = message.carrier_ref
    if lease is not None:
        lease.retain()
    state.staged_writeback = batch
    state.staged_writeback_lease = lease
    _record_phase(runtime, state, "prepare", len(batch))
    return b""


def handle_writeback_commit(
    runtime: "SmartRpcRuntime", message: Message
) -> bytes:
    """Home-space phase 2: apply the staged batch to the originals."""
    decoder = XdrDecoder(message.payload)
    session_id = decoder.unpack_string()
    decoder.expect_done()
    state = runtime._sessions.get(session_id)
    staged = getattr(state, "staged_writeback", None)
    if staged is None:
        raise SmartRpcError(
            f"{runtime.site_id}: writeback-commit for session "
            f"{session_id!r} without a staged prepare"
        )
    assert state is not None
    lease = getattr(state, "staged_writeback_lease", None)
    state.staged_writeback = None
    state.staged_writeback_lease = None
    try:
        if lease is not None:
            # The commit "flips the word": re-check the extent's stamp
            # and epoch, then apply in place.  A ground that died and
            # restarted bumped its segment epoch, so a stale staged
            # batch fails loudly here instead of half-applying.
            lease.validate()
        transfer.apply_batch(runtime, state, staged, overwrite=True)
    finally:
        if lease is not None:
            lease.release()
    _record_phase(runtime, state, "commit", len(staged))
    return b""


def handle_write_back(
    runtime: "SmartRpcRuntime", message: Message
) -> bytes:
    """Home-space side of write-back: update original data."""
    runtime.clock.advance(
        runtime.cost_model.codec_cost(len(message.payload))
    )
    decoder = XdrDecoder(message.payload)
    session_id = decoder.unpack_string()
    ground_site = decoder.unpack_string()
    batch = decoder.unpack_opaque()
    decoder.expect_done()
    state = runtime.ensure_smart_session(session_id, ground_site)
    transfer.apply_batch(runtime, state, batch, overwrite=True)
    return b""


def handle_invalidate(
    runtime: "SmartRpcRuntime", message: Message
) -> bytes:
    """Participant side of the end-of-session invalidation multicast."""
    decoder = XdrDecoder(message.payload)
    session_id = decoder.unpack_string()
    decoder.expect_done()
    runtime.invalidate_session(session_id)
    return b""
