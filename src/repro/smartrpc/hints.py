"""Programmer-supplied closure hints (paper §6).

The paper leaves open how to optimise "the 'shape' of the subset of
the transitive closure of a pointer": a closure that prefetches what
the remote procedure will actually touch minimises communication, but
predicting the access pattern is impossible in general — "one
promising solution is to use suggestions provided by the programmer."

:class:`ClosureHints` is that suggestion channel.  For any data type
the programmer can declare which pointer fields the remote access
pattern follows (and in what order); the closure walker then traverses
only those fields of hinted types, in the given order.  Unhinted types
traverse every pointer field, as before.

Example — hash-table retrieval touches one bucket head and its chain,
so prefetching the other 255 buckets' chains is pure waste::

    hints = ClosureHints()
    hints.follow("hash_table", [])          # never fan out of the header
    hints.follow("hash_node", ["next"])     # do run down the chain
    runtime.closure_hints = hints
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.smartrpc.errors import SmartRpcError
from repro.xdr.arch import Architecture
from repro.xdr.types import (
    ArrayType,
    PointerType,
    StructType,
    TypeSpec,
)


class ClosureHints:
    """Per-type traversal suggestions for the closure walker."""

    def __init__(self) -> None:
        self._follow: Dict[str, Tuple[str, ...]] = {}

    def follow(self, type_id: str, fields: Sequence[str]) -> None:
        """Declare that the remote pattern follows only ``fields``.

        ``fields`` is an ordered list of pointer-bearing member names
        of the (struct) type bound to ``type_id``; an empty list means
        "treat this type as a leaf".  Field names are validated
        lazily, when the hint is first applied to a resolved type.
        """
        self._follow[type_id] = tuple(fields)

    def hinted(self, type_id: str) -> bool:
        """Whether a hint exists for ``type_id``."""
        return type_id in self._follow

    def pointer_offsets(
        self, type_id: str, spec: TypeSpec, arch: Architecture
    ) -> Optional[List[int]]:
        """Byte offsets of the pointers to follow, in hint order.

        Returns ``None`` when the type is unhinted (caller falls back
        to every pointer field).
        """
        fields = self._follow.get(type_id)
        if fields is None:
            return None
        if not fields:
            return []
        if not isinstance(spec, StructType):
            raise SmartRpcError(
                f"closure hint for {type_id!r} names fields, but the "
                "type is not a struct"
            )
        layout = spec.layout(arch)
        offsets: List[int] = []
        for name in fields:
            field = spec.field(name)  # raises on unknown names
            base = layout.offsets[name]
            member_offsets = [
                base + offset
                for offset, _ in field.spec.pointer_fields(arch)
            ]
            if not member_offsets:
                raise SmartRpcError(
                    f"closure hint field {type_id}.{name} contains "
                    "no pointers"
                )
            offsets.extend(member_offsets)
        return offsets


def default_pointer_offsets(
    spec: TypeSpec, arch: Architecture
) -> List[int]:
    """Every pointer offset of a type (the unhinted behaviour)."""
    return [offset for offset, _ in spec.pointer_fields(arch)]


def chain_only_hints(
    node_type_id: str, next_field: str = "next"
) -> ClosureHints:
    """Convenience: prefetch along one linked-list field only."""
    hints = ClosureHints()
    hints.follow(node_type_id, [next_field])
    return hints
