"""Pluggable transfer policies: the eagerness spectrum as one layer.

The paper treats eagerness as a *spectrum* — closure size 0 is the
fully lazy method, an unbounded closure is the fully eager one (§3.3,
Figure 6) — yet early versions of this repo hard-coded the endpoints as
separate runtime subclasses.  A :class:`TransferPolicy` collects every
transfer/eagerness decision in one object consulted by the runtime:

* how pointers are marshalled (:data:`SWIZZLE` long pointers vs
  :data:`GRAPHCOPY` deep copies),
* whether the session coherency protocol runs at all,
* how placeholder pages are allocated,
* the closure budget and traversal order of each data request,
* which programmer hints restrict the traversal,
* whether remote malloc/free operations batch per activity transfer.

Presets map onto the paper's systems:

========== ==================================================
``paper``    the proposed method, fixed 8192-byte closure
``lazy``     closure 0 + isolated placeholders (§2 lazy method)
``eager``    unbounded closure (the spectrum's eager endpoint)
``graphcopy`` rpcgen-style deep copy (§2 eager method)
``hinted``   fixed closure restricted by programmer hints (§6)
``adaptive`` per-session budget tuned from live waste feedback
``pipelined`` fixed closure + fault-coalescing/prefetching pipeline
========== ==================================================

The ``adaptive`` policy closes the loop the paper leaves open in §6
("it is necessary to determine the adequate size of closure"): each
session tracks how many prefetched closure bytes the program actually
touched, and the budget is halved when most prefetch was waste or
doubled when nearly all of it was used.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Dict, Optional

from repro.smartrpc.cache import ISOLATED, SINGLE_HOME, STRATEGIES
from repro.smartrpc.closure import BREADTH_FIRST, DEPTH_FIRST
from repro.smartrpc.errors import SmartRpcError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.smartrpc.hints import ClosureHints
    from repro.smartrpc.runtime import SmartSessionState

DEFAULT_CLOSURE_SIZE = 8192
"""The paper's experimental default (§4.1, §4.3)."""

SWIZZLE = "swizzle"
GRAPHCOPY = "graphcopy"

UNBOUNDED = 0xFFFFFFFF
"""The eager endpoint's closure budget (fills the uint32 wire slot)."""


class TransferPolicy:
    """Every transfer/eagerness decision of one runtime, in one object.

    Class attributes are the static decisions; :meth:`request_budget`
    is the per-data-request one (and the only method adaptive policies
    override).  Policies are cheap value objects: each runtime gets its
    own copy via :meth:`fresh` so mutating one (``closure_size``
    assignment, adaptive feedback) never leaks across runtimes.
    """

    name: str = "custom"
    #: ``swizzle`` (long pointers + cache) or ``graphcopy`` (deep copy).
    marshalling: str = SWIZZLE
    #: Whether the session coherency protocol runs (piggybacks,
    #: write-back, invalidation).  Graphcopy has private copies and
    #: therefore no coherency to maintain.
    coherency: bool = True
    allocation_strategy: str = SINGLE_HOME
    closure_order: str = BREADTH_FIRST
    hints: Optional["ClosureHints"] = None
    batch_memory_ops: bool = True
    #: The budget every request uses, or ``None`` when it varies per
    #: request (adaptive).  Trace conformance (SRPC300) checks recorded
    #: decisions against this declaration.
    declared_budget: Optional[int] = None

    #: Fetch-pipeline knobs (see :mod:`repro.smartrpc.pipeline`).  All
    #: zero means the pipeline is a pass-through: one demand request per
    #: fault, byte-identical wire behaviour to the pre-pipeline runtime
    #: (what the ``paper``/``lazy`` presets promise).
    #:
    #: ``batch_window``: how many additional known-but-not-resident
    #: long-pointer targets a demand request may coalesce as extra
    #: roots.  ``max_inflight``: how many asynchronous prefetch
    #: exchanges may be outstanding at once.  ``prefetch_depth``: how
    #: many closure slices (multiples of the request budget) one
    #: prefetch exchange asks for.
    batch_window: int = 0
    max_inflight: int = 0
    prefetch_depth: int = 0

    #: Fault-tolerance knobs (see DESIGN.md §12).  All zero disables
    #: them: no deadline, no per-exchange timeout cap, no orphan
    #: reaping — exactly the pre-fault-tolerance behaviour, so default
    #: traces and the byte-parity tests are unchanged.
    #:
    #: ``session_deadline``: wall/sim seconds a session may stay open
    #: before its next exchange aborts it.  ``exchange_timeout``: cap
    #: in seconds on one exchange's cumulative retries before the
    #: session aborts (instead of the transport's full retry schedule).
    #: ``orphan_grace``: heartbeat age in seconds beyond which a peer
    #: counts as dead and its sessions are reaped.
    session_deadline: float = 0.0
    exchange_timeout: float = 0.0
    orphan_grace: float = 0.0

    def fresh(self) -> "TransferPolicy":
        """A per-runtime copy of this policy."""
        return copy.copy(self)

    def request_budget(self, state: "SmartSessionState") -> int:
        """The closure budget for one data request in ``state``."""
        raise NotImplementedError

    def describe(self) -> Dict[str, object]:
        """The trace-declaration payload (one ``policy`` event)."""
        return {
            "policy": self.name,
            "budget": self.declared_budget,
            "marshalling": self.marshalling,
            "coherency": self.coherency,
            "order": self.closure_order,
            "strategy": self.allocation_strategy,
            "batch_window": self.batch_window,
            "max_inflight": self.max_inflight,
            "prefetch_depth": self.prefetch_depth,
            "session_deadline": self.session_deadline,
            "exchange_timeout": self.exchange_timeout,
            "orphan_grace": self.orphan_grace,
        }


class FixedPolicy(TransferPolicy):
    """A constant closure budget — the paper's construction-time knob."""

    def __init__(
        self,
        budget: int = DEFAULT_CLOSURE_SIZE,
        name: str = "fixed",
        allocation_strategy: str = SINGLE_HOME,
        closure_order: str = BREADTH_FIRST,
        hints: Optional["ClosureHints"] = None,
        batch_memory_ops: bool = True,
    ) -> None:
        if budget < 0:
            raise SmartRpcError(f"bad closure size {budget!r}")
        if budget > UNBOUNDED:
            raise SmartRpcError(
                f"closure size {budget!r} exceeds the wire maximum"
            )
        if allocation_strategy not in STRATEGIES:
            raise SmartRpcError(
                f"unknown allocation strategy {allocation_strategy!r}"
            )
        if closure_order not in (BREADTH_FIRST, DEPTH_FIRST):
            raise SmartRpcError(
                f"unknown closure order {closure_order!r}"
            )
        self.name = name
        self.budget = budget
        self.allocation_strategy = allocation_strategy
        self.closure_order = closure_order
        self.hints = hints
        self.batch_memory_ops = batch_memory_ops

    @property
    def declared_budget(self) -> int:
        return self.budget

    #: Presets that *are* their budget (lazy, eager) pin it: changing
    #: the budget would silently change which system is being measured.
    pinned: bool = False

    def set_budget(self, budget: int) -> None:
        """Change the fixed budget (legacy ``closure_size=`` setter)."""
        if self.pinned:
            raise SmartRpcError(
                f"the {self.name!r} policy pins its closure budget; "
                "build a 'paper'/'fixed' policy to sweep it"
            )
        if budget < 0:
            raise SmartRpcError(f"bad closure size {budget!r}")
        self.budget = budget

    def request_budget(self, state: "SmartSessionState") -> int:
        return self.budget


class GraphcopyPolicy(TransferPolicy):
    """Deep-copy marshalling: the paper's fully eager method (§2).

    No long pointers, no cache, no data plane, no coherency — the whole
    closure crosses the wire inside the call message and the callee
    works on a private copy.
    """

    name = "graphcopy"
    marshalling = GRAPHCOPY
    coherency = False

    def request_budget(self, state: "SmartSessionState") -> int:
        raise SmartRpcError(
            "graphcopy marshalling has no data plane to budget"
        )


class AdaptivePolicy(TransferPolicy):
    """Tune the per-session budget from live shipped-vs-touched feedback.

    Each data request reads the session's waste ledger: of the closure
    bytes *prefetched* (shipped beyond the demanded roots) since the
    last adjustment, what fraction did the program actually touch?
    Once at least ``window`` prefetched bytes have accrued, a fraction
    below ``low_water`` halves the budget (most prefetch was waste —
    drift toward lazy) and one above ``high_water`` doubles it (the
    prefetch all got used — drift toward eager).
    """

    name = "adaptive"
    declared_budget = None

    def __init__(
        self,
        initial: int = DEFAULT_CLOSURE_SIZE,
        min_budget: int = 256,
        max_budget: int = 1 << 20,
        window: int = 2048,
        low_water: float = 0.25,
        high_water: float = 0.75,
    ) -> None:
        if initial < 0:
            raise SmartRpcError(f"bad closure size {initial!r}")
        if not 0 < min_budget <= max_budget:
            raise SmartRpcError(
                f"bad adaptive bounds [{min_budget}, {max_budget}]"
            )
        self.initial = initial
        self.min_budget = min_budget
        self.max_budget = max_budget
        self.window = window
        self.low_water = low_water
        self.high_water = high_water

    def request_budget(self, state: "SmartSessionState") -> int:
        data = state.policy_data
        budget = data.get("budget", self.initial)
        ledger = state.transfer_stats
        shipped = ledger.prefetch_bytes_shipped - data.get("mark_shipped", 0)
        if shipped >= self.window:
            touched = (
                ledger.prefetch_bytes_touched - data.get("mark_touched", 0)
            )
            ratio = touched / shipped
            if ratio < self.low_water:
                budget = max(self.min_budget, budget // 2)
            elif ratio > self.high_water:
                budget = min(self.max_budget, budget * 2)
            data["mark_shipped"] = ledger.prefetch_bytes_shipped
            data["mark_touched"] = ledger.prefetch_bytes_touched
        data["budget"] = budget
        return budget


class PipelinedPolicy(FixedPolicy):
    """Fixed closure budget driving an active fetch pipeline.

    Demand requests use the fixed budget like ``paper``; on top of
    that, each demand coalesces up to ``batch_window`` other pending
    placeholders homed at the same space, and after a fill the pipeline
    keeps up to ``max_inflight`` asynchronous prefetch exchanges in
    flight, each asking for ``prefetch_depth`` budgets' worth of the
    remaining frontier.  The declared budget is ``None`` because the
    prefetch exchanges legitimately request more than the demand
    budget (SRPC300 only binds fixed declarations).
    """

    #: Prefetch requests scale the budget, so no fixed declaration.
    declared_budget = None

    def __init__(
        self,
        budget: int = DEFAULT_CLOSURE_SIZE,
        name: str = "pipelined",
        batch_window: int = 32,
        max_inflight: int = 1,
        prefetch_depth: int = 4,
        **overrides,
    ) -> None:
        super().__init__(budget, name=name, **overrides)
        for knob, value in (
            ("batch_window", batch_window),
            ("max_inflight", max_inflight),
            ("prefetch_depth", prefetch_depth),
        ):
            if value < 0:
                raise SmartRpcError(f"bad {knob} {value!r}")
        self.batch_window = batch_window
        self.max_inflight = max_inflight
        self.prefetch_depth = prefetch_depth


def _lazy(budget: Optional[int] = None, **overrides) -> TransferPolicy:
    if budget not in (None, 0):
        raise SmartRpcError(
            f"the 'lazy' policy pins closure size 0, not {budget!r}"
        )
    overrides.setdefault("allocation_strategy", ISOLATED)
    policy = FixedPolicy(0, name="lazy", **overrides)
    policy.pinned = True
    return policy


def _eager(budget: Optional[int] = None, **overrides) -> TransferPolicy:
    if budget not in (None, UNBOUNDED):
        raise SmartRpcError(
            f"the 'eager' policy pins an unbounded closure, not {budget!r}"
        )
    policy = FixedPolicy(UNBOUNDED, name="eager", **overrides)
    policy.pinned = True
    return policy


def _paper(budget: Optional[int] = None, **overrides) -> TransferPolicy:
    return FixedPolicy(
        DEFAULT_CLOSURE_SIZE if budget is None else budget,
        name="paper",
        **overrides,
    )


def _hinted(budget: Optional[int] = None, **overrides) -> TransferPolicy:
    if overrides.get("hints") is None:
        raise SmartRpcError(
            "the 'hinted' policy needs closure hints (pass closure_hints=)"
        )
    return FixedPolicy(
        DEFAULT_CLOSURE_SIZE if budget is None else budget,
        name="hinted",
        **overrides,
    )


def _graphcopy(budget: Optional[int] = None, **overrides) -> TransferPolicy:
    for knob, value in overrides.items():
        if value is not None:
            raise SmartRpcError(
                f"graphcopy policy does not take {knob!r}"
            )
    return GraphcopyPolicy()


def _adaptive(budget: Optional[int] = None, **overrides) -> TransferPolicy:
    policy = AdaptivePolicy(
        initial=DEFAULT_CLOSURE_SIZE if budget is None else budget
    )
    for knob in ("allocation_strategy", "closure_order", "hints"):
        value = overrides.pop(knob, None)
        if value is not None:
            setattr(policy, knob, value)
    batch = overrides.pop("batch_memory_ops", None)
    if batch is not None:
        policy.batch_memory_ops = batch
    return policy


def _pipelined(budget: Optional[int] = None, **overrides) -> TransferPolicy:
    return PipelinedPolicy(
        DEFAULT_CLOSURE_SIZE if budget is None else budget,
        **overrides,
    )


_PRESETS = {
    "lazy": _lazy,
    "eager": _eager,
    "paper": _paper,
    "hinted": _hinted,
    "graphcopy": _graphcopy,
    "adaptive": _adaptive,
    "pipelined": _pipelined,
    "fixed": lambda budget=None, **kw: FixedPolicy(
        DEFAULT_CLOSURE_SIZE if budget is None else budget, **kw
    ),
}

POLICY_NAMES = tuple(sorted(_PRESETS))


def make_policy(
    name: str,
    closure_size: Optional[int] = None,
    allocation_strategy: Optional[str] = None,
    closure_order: Optional[str] = None,
    batch_memory_ops: Optional[bool] = None,
    closure_hints: Optional["ClosureHints"] = None,
) -> TransferPolicy:
    """Build a preset policy by name, with optional knob overrides.

    Unknown names raise :class:`ValueError` (CLI-friendly); invalid
    knob values raise :class:`SmartRpcError` like the runtime always
    did.
    """
    factory = _PRESETS.get(name)
    if factory is None:
        raise ValueError(
            f"unknown policy {name!r} (choose from {', '.join(POLICY_NAMES)})"
        )
    if name == "graphcopy":
        if closure_size is not None:
            raise SmartRpcError("graphcopy policy does not take a budget")
        return _graphcopy(
            allocation_strategy=allocation_strategy,
            closure_order=closure_order,
            hints=closure_hints,
            batch_memory_ops=batch_memory_ops,
        )
    kwargs: Dict[str, object] = {}
    if allocation_strategy is not None:
        kwargs["allocation_strategy"] = allocation_strategy
    if closure_order is not None:
        kwargs["closure_order"] = closure_order
    if batch_memory_ops is not None:
        kwargs["batch_memory_ops"] = batch_memory_ops
    if closure_hints is not None or name == "hinted":
        kwargs["hints"] = closure_hints
    if name == "adaptive":
        # Adaptive handles its own partial overrides.
        return _adaptive(budget=closure_size, **kwargs)
    return factory(budget=closure_size, **kwargs)
