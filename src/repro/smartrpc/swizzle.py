"""Pointer swizzling and unswizzling (paper §3.2).

*Unswizzling* translates an ordinary local pointer into a long pointer
when data leaves the address space; *swizzling* translates a long
pointer into an ordinary local address when data (or an argument)
arrives.  The translations consult, in order,

1. the session's data allocation table — the address is a cached copy
   of remote data, so its long pointer is the table row's; and
2. the local typed heap — the address is original local data, so the
   long pointer is ``(this space, address, allocation's type id)``.

Long pointers reference allocation bases; an interior pointer raises
:class:`~repro.smartrpc.errors.SwizzleError` (documented simplification,
see DESIGN.md §6).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.smartrpc.errors import DanglingPointerError, SwizzleError
from repro.smartrpc.long_pointer import LongPointer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.smartrpc.runtime import SmartRpcRuntime, SmartSessionState


class Swizzler:
    """Pointer translation for one session in one address space."""

    def __init__(
        self, runtime: "SmartRpcRuntime", state: "SmartSessionState"
    ) -> None:
        self.runtime = runtime
        self.state = state

    def unswizzle(self, pointer: int) -> Optional[LongPointer]:
        """Ordinary local pointer -> long pointer (NULL -> ``None``)."""
        if pointer == 0:
            return None
        entry = self.state.cache.table.entry_containing(pointer)
        if entry is not None:
            if pointer != entry.local_address:
                raise SwizzleError(
                    f"interior pointer {pointer:#x} into cached "
                    f"{entry.pointer!r} cannot be unswizzled"
                )
            return entry.pointer
        allocation = self.runtime.heap.allocation_at(pointer)
        if allocation is not None:
            if pointer != allocation.address:
                raise SwizzleError(
                    f"interior pointer {pointer:#x} into local allocation "
                    f"at {allocation.address:#x} cannot be unswizzled"
                )
            return LongPointer(
                self.runtime.site_id, pointer, allocation.type_id
            )
        raise SwizzleError(
            f"pointer {pointer:#x} in {self.runtime.site_id!r} is neither "
            "cached remote data nor a live heap allocation"
        )

    def swizzle(self, pointer: Optional[LongPointer]) -> int:
        """Long pointer -> ordinary local pointer (``None`` -> NULL).

        For remote data this allocates (or reuses — the caching effect)
        a protected placeholder; for data whose original lives here it
        is simply the original address.
        """
        if pointer is None:
            return 0
        if pointer.space_id == self.runtime.site_id:
            if not self.runtime.heap.owns(pointer.address):
                raise DanglingPointerError(
                    f"{pointer!r} does not reference live heap data in "
                    f"its home space"
                )
            return pointer.address
        return self.state.cache.ensure_entry(pointer).local_address
