"""Smart RPC: transparent treatment of remote pointers.

This is the paper's contribution, layered on the conventional RPC
substrate (:mod:`repro.rpc`):

* :class:`~repro.smartrpc.long_pointer.LongPointer` — the
  ``(address-space id, address, data-type specifier)`` triple that
  extends pointers across the distributed system;
* :class:`~repro.smartrpc.alloc_table.DataAllocationTable` — the paper's
  Table 1: which long pointer each (page, offset) of the cache area
  stands for;
* :class:`~repro.smartrpc.cache.CacheManager` — protected page areas,
  fill-on-fault, read-only remap and page-grain dirty detection;
* :class:`~repro.smartrpc.swizzle.Swizzler` — long pointer <-> ordinary
  pointer translation;
* :class:`~repro.smartrpc.closure.ClosureWalker` — bounded breadth-first
  transitive closure for eager transfer;
* :mod:`repro.smartrpc.transfer` — the data-plane wire protocol
  (requests, batches, write-back);
* :class:`~repro.smartrpc.remote_heap.RemoteHeap` — ``extended_malloc``
  / ``extended_free`` with batched remote operations;
* :class:`~repro.smartrpc.runtime.SmartRpcRuntime` — the runtime tying
  everything together, including the session coherency protocol;
* :mod:`repro.smartrpc.policy` — pluggable transfer policies: the
  eagerness spectrum (lazy/eager/paper/hinted/graphcopy presets) plus
  the adaptive closure budget tuned from shipped-vs-touched feedback;
* :mod:`repro.smartrpc.graphcopy` — rpcgen-style deep-copy marshalling
  (the ``graphcopy`` policy's encoder/decoder).
"""

from repro.smartrpc.alloc_table import AllocEntry, DataAllocationTable
from repro.smartrpc.errors import (
    DanglingPointerError,
    SmartRpcError,
    SwizzleError,
)
from repro.smartrpc.long_pointer import NULL_POINTER, LongPointer
from repro.smartrpc.policy import (
    POLICY_NAMES,
    AdaptivePolicy,
    FixedPolicy,
    GraphcopyPolicy,
    TransferPolicy,
    make_policy,
)
from repro.smartrpc.runtime import SmartRpcRuntime, SmartSessionState

__all__ = [
    "AdaptivePolicy",
    "AllocEntry",
    "DataAllocationTable",
    "DanglingPointerError",
    "FixedPolicy",
    "GraphcopyPolicy",
    "LongPointer",
    "NULL_POINTER",
    "POLICY_NAMES",
    "SmartRpcError",
    "SmartRpcRuntime",
    "SmartSessionState",
    "SwizzleError",
    "TransferPolicy",
    "make_policy",
]
