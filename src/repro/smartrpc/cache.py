"""The cache area: protected page allocation, fill-on-fault, dirtiness.

This module implements the virtual-memory half of the method:

* when a long pointer is swizzled and its data is not yet local, a
  placeholder is carved out of a *protected page area*
  (:data:`~repro.memory.page.Protection.NONE`) — "the page contains no
  data at this time" (paper §3.2);
* the first access faults; the handler requests from the home space
  **every datum allocated to the faulted page** that is not yet
  resident, "because once the access protection of the page is
  released, the first access to the other data in the page can no
  longer be detected";
* a fully resident page is remapped read-only, so the first *write*
  faults once more and marks the page dirty — the coherency protocol's
  page-grain modification detection (paper §3.4);
* placeholder placement follows the paper's heuristic: all data in a
  page originates from a single address space (§6 discusses this
  choice; the ``mixed`` strategy exists for the ablation benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.memory.faults import AccessViolation, FaultKind
from repro.memory.page import Protection
from repro.smartrpc.alloc_table import AllocEntry, DataAllocationTable
from repro.smartrpc.errors import SmartRpcError
from repro.smartrpc.long_pointer import LongPointer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.smartrpc.runtime import SmartRpcRuntime, SmartSessionState

SINGLE_HOME = "single_home"
MIXED = "mixed"
ISOLATED = "isolated"
PACKED = "packed"
STRATEGIES = (SINGLE_HOME, MIXED, ISOLATED, PACKED)
_FRESH = "fresh"
_REMOTE = "remote"


@dataclass
class PageState:
    """Cache-side bookkeeping of one mapped cache page."""

    number: int
    home: Optional[str]
    bump: int = 0
    closed: bool = False
    dirty: bool = False
    #: Write generation of the page's contents, bumped on each traced
    #: modification; faults record the version they observe so the
    #: offline sanitizer can detect stale reads (SRPC401).
    version: int = 0
    entries: List[AllocEntry] = field(default_factory=list)
    span_of: Optional[AllocEntry] = None

    @property
    def resident_count(self) -> int:
        """Resident entries on this page."""
        return sum(1 for entry in self.entries if entry.resident)

    @property
    def complete(self) -> bool:
        """Whether every entry on the page is resident."""
        return all(entry.resident for entry in self.entries)


class CacheManager:
    """Manages one session's cache area in one address space."""

    def __init__(
        self,
        runtime: "SmartRpcRuntime",
        state: "SmartSessionState",
        strategy: Optional[str] = None,
    ) -> None:
        if strategy is None:
            # The placeholder strategy is a transfer-policy decision.
            strategy = runtime.policy.allocation_strategy
        if strategy not in STRATEGIES:
            raise SmartRpcError(f"unknown allocation strategy {strategy!r}")
        self.runtime = runtime
        self.state = state
        self.strategy = strategy
        self.table = DataAllocationTable()
        self._pages: Dict[int, PageState] = {}
        # Open pages accepting new placeholders, keyed by
        # (allocation class, home) — home collapses to "" under MIXED.
        self._open_pages: Dict[Tuple[str, str], PageState] = {}
        self.dirty_pages: Set[int] = set()
        # Shipped entries the program has not yet touched.  The access
        # observer fires on every program access; once everything
        # shipped has been scored touched, the counter reaching zero
        # lets :meth:`note_touch_range` return without a table lookup —
        # the steady-state fast path.
        self._untouched_shipped = 0

    # -- small accessors ------------------------------------------------------

    @property
    def space(self):
        """The owning address space."""
        return self.runtime.space

    @property
    def page_size(self) -> int:
        """Cache page size (the space's page size)."""
        return self.runtime.space.page_size

    def page_state(self, page_number: int) -> PageState:
        """Bookkeeping for one cache page."""
        try:
            return self._pages[page_number]
        except KeyError:
            raise SmartRpcError(
                f"page {page_number} is not a cache page of session "
                f"{self.state.session_id!r}"
            ) from None

    def owns_page(self, page_number: int) -> bool:
        """Whether the page belongs to this session's cache area."""
        return page_number in self._pages

    def footprint(self) -> Tuple[int, int]:
        """(mapped protected pages, allocation-table rows) still held.

        The fault-tolerance layer's leak metric: after a clean close,
        an abort or a reap, both counts must be zero.
        """
        return len(self._pages), len(self.table)

    # -- placeholder allocation -----------------------------------------------

    def ensure_entry(self, pointer: LongPointer) -> AllocEntry:
        """The table row for ``pointer``, allocating a placeholder if new.

        This is the allocation step of swizzling: "when the callee
        receives a long pointer from the caller, the callee allocates
        for the referenced data a protected page area."
        """
        entry = self.table.entry_for(pointer)
        if entry is not None:
            return entry
        spec = self.runtime.resolver.resolve(pointer.type_id)
        size = spec.sizeof(self.runtime.arch)
        alignment = min(spec.alignment(self.runtime.arch), 8)
        return self._allocate(
            pointer,
            size,
            alignment,
            allocation_class=_REMOTE,
            resident=False,
        )

    def allocate_fresh(self, pointer: LongPointer, size: int) -> AllocEntry:
        """A resident, writable entry for ``extended_malloc`` data.

        Freshly allocated remote data has no original contents to
        fetch, so its page is mapped read-write and marked dirty from
        birth: the new contents must reach the home space through the
        coherency protocol.
        """
        entry = self._allocate(
            pointer,
            size,
            alignment=8,
            allocation_class=_FRESH,
            resident=True,
        )
        for number in self._entry_pages(entry):
            state = self._pages[number]
            state.dirty = True
            self.dirty_pages.add(number)
            self.space.protect(number, Protection.READ_WRITE)
        return entry

    def _allocate(
        self,
        pointer: LongPointer,
        size: int,
        alignment: int,
        allocation_class: str,
        resident: bool,
    ) -> AllocEntry:
        if size > self.page_size:
            return self._allocate_span(pointer, size, resident)
        if self.strategy == ISOLATED:
            # Fully lazy baseline: one datum per page, so every first
            # access to every datum faults individually (a callback
            # per dereferenced pointer, as in the paper's §2 baseline).
            return self._allocate_isolated(pointer, size, resident)
        home = "" if self.strategy == MIXED else pointer.space_id
        key = (allocation_class, home)
        page = self._open_pages.get(key)
        if page is not None:
            offset = _round_up(page.bump, alignment)
            if page.closed or offset + size > self.page_size:
                page = None
        if page is None:
            page = self._map_page(home if home else None)
            self._open_pages[key] = page
            offset = 0
        else:
            offset = _round_up(page.bump, alignment)
        entry = AllocEntry(
            pointer=pointer,
            local_address=page.number * self.page_size + offset,
            size=size,
            page_number=page.number,
            offset=offset,
            resident=resident,
        )
        page.bump = offset + size
        page.entries.append(entry)
        self.table.add(entry)
        return entry

    def _allocate_isolated(
        self, pointer: LongPointer, size: int, resident: bool
    ) -> AllocEntry:
        page = self._map_page(pointer.space_id)
        page.closed = True
        entry = AllocEntry(
            pointer=pointer,
            local_address=page.number * self.page_size,
            size=size,
            page_number=page.number,
            offset=0,
            resident=resident,
        )
        page.bump = size
        page.entries.append(entry)
        self.table.add(entry)
        return entry

    def _allocate_span(
        self, pointer: LongPointer, size: int, resident: bool
    ) -> AllocEntry:
        pages = -(-size // self.page_size)
        base = self.space.map_region(pages, Protection.NONE)
        first = base // self.page_size
        entry = AllocEntry(
            pointer=pointer,
            local_address=base,
            size=size,
            page_number=first,
            offset=0,
            resident=resident,
        )
        for index in range(pages):
            number = first + index
            state = PageState(
                number, pointer.space_id, closed=True, span_of=entry
            )
            state.entries.append(entry)
            self._pages[number] = state
            self.runtime.register_cache_page(number, self)
        self.table.add(entry)
        if resident:
            self._maybe_release(first)
        return entry

    def _map_page(self, home: Optional[str]) -> PageState:
        base = self.space.map_region(1, Protection.NONE)
        number = base // self.page_size
        state = PageState(number, home)
        self._pages[number] = state
        self.runtime.register_cache_page(number, self)
        return state

    def _entry_pages(self, entry: AllocEntry) -> List[int]:
        first = entry.page_number
        last = (entry.end - 1) // self.page_size
        return list(range(first, last + 1))

    def pages_of(self, entry: AllocEntry) -> List[int]:
        """Every cache page an entry occupies (spans cover several)."""
        return self._entry_pages(entry)

    def incomplete_pages(self) -> Set[int]:
        """Pages still holding non-resident placeholders.

        Each is a future demand round trip unless the fetch pipeline
        completes it first — the quantity behind the transfer ledger's
        ``round_trips_saved``.
        """
        return {
            number
            for number, page in self._pages.items()
            if page.entries and not page.complete
        }

    def finish_datum(self) -> None:
        """Seal open pages after one datum's pointers were swizzled.

        The paper's Figure 2 shows pointers arriving *together* sharing
        a protected page; the default strategies group per arriving
        datum — the frontier children swizzled out of one transferred
        value share placeholder pages, and the next value's children
        start fresh ones.  The grouping is a locality heuristic: data
        co-allocated on a page is data discovered together, so a fault
        on the page requests siblings that the program is likely to
        touch together.  It is also what makes the closure-size-0
        configuration degrade toward the fully lazy behaviour (a fault
        fetches one sibling group, not an accidentally-batched whole
        BFS level).

        The ``packed`` strategy skips this and packs a whole transfer
        batch's frontier onto shared pages instead — fewer, fuller
        pages at the price of coarser fills (the working-set-versus-
        communication-count tradeoff of the paper's §6); it seals at
        :meth:`finish_batch`.
        """
        if self.strategy != PACKED:
            self._open_pages.clear()

    def finish_batch(self) -> None:
        """Seal open pages at the end of one whole transfer batch."""
        self._open_pages.clear()

    # -- fault handling -------------------------------------------------------

    def handle_fault(self, fault: AccessViolation) -> None:
        """The user-level access-violation handler for cache pages."""
        page = self.page_state(fault.page_number)
        protection = self.space.protection_of(fault.page_number)
        kind = "write" if fault.kind is FaultKind.WRITE else "read"
        self.runtime.trace_event(
            "fault",
            f"{self.runtime.site_id}: page {fault.page_number} "
            f"{kind} fault (session {self.state.session_id})",
            session=self.state.session_id,
            space=self.runtime.site_id,
            page=fault.page_number,
            kind=kind,
            version=page.version,
        )
        if protection is Protection.NONE:
            self._fill(page)
        if fault.kind is FaultKind.WRITE:
            self.mark_dirty_page(fault.page_number)
        self.runtime.clock.advance(self.runtime.cost_model.page_fault)

    def _fill(self, page: PageState) -> None:
        """Transfer every non-resident datum allocated to the page.

        "All of the other data allocated to the page must be
        transferred at this time" — grouped by home space; under the
        single-home heuristic that is one request message.

        The actual requesting is the session's
        :class:`~repro.smartrpc.pipeline.FetchPipeline`: a pass-through
        to the classic one-request-per-home fill when every pipeline
        knob is zero, and the coalescing/piggyback/prefetch data plane
        under the ``pipelined`` policy.
        """
        self.state.pipeline.fill_page(self, page)
        missing = [e.pointer for e in page.entries if not e.resident]
        if missing:
            raise SmartRpcError(
                f"home space failed to supply {missing!r} for page "
                f"{page.number}"
            )
        self.runtime.stats.pages_filled += 1

    # -- shipped-vs-touched accounting ----------------------------------------

    def note_shipped(self, entry: AllocEntry, prefetched: bool) -> None:
        """Count an entry's bytes arriving on the fill path.

        ``prefetched`` marks data shipped beyond the demanded roots —
        the eager-closure gamble the adaptive policy's feedback loop
        scores against :meth:`note_touch`.
        """
        if not entry.shipped and not entry.touched:
            self._untouched_shipped += 1
        entry.shipped = True
        entry.prefetched = prefetched
        self.state.transfer_stats.record_shipped(entry.size, prefetched)
        self.runtime.stats.transfer_ledger.record_shipped(
            entry.size, prefetched
        )

    def note_duplicate_shipment(self, size: int) -> None:
        """Count bytes re-shipped for an already-resident entry.

        The closure overshot into data this space already holds: the
        bytes crossed the wire and bought nothing, so they score as
        untouchable prefetch waste.
        """
        self.state.transfer_stats.record_shipped(size, True)
        self.runtime.stats.transfer_ledger.record_shipped(size, True)

    def note_touch(self, address: int) -> None:
        """Record the program's first access to a shipped entry."""
        self.note_touch_range(address, 1)

    def note_touch_range(self, address: int, size: int) -> None:
        """Score a program access run touching ``size`` bytes at ``address``.

        The bulk access path's coalesced observer callback: every
        shipped entry the run overlaps is scored touched, exactly as
        the per-access loop would have scored them one by one.  Once
        nothing shipped remains untouched this is a constant-time
        no-op, which is what keeps the steady-state access fast path
        cheap.
        """
        if not self._untouched_shipped:
            return
        transfer_stats = self.state.transfer_stats
        ledger = self.runtime.stats.transfer_ledger
        for entry in self.table.entries_overlapping(address, size):
            if not entry.shipped or entry.touched:
                continue
            entry.touched = True
            self._untouched_shipped -= 1
            transfer_stats.record_touched(entry.size, entry.prefetched)
            ledger.record_touched(entry.size, entry.prefetched)

    # -- residency and dirtiness ----------------------------------------------

    def mark_resident(self, entry: AllocEntry) -> None:
        """Record arrival of an entry's data; release complete pages."""
        if entry.resident:
            return
        entry.resident = True
        for number in self._entry_pages(entry):
            self._maybe_release(number)

    def _maybe_release(self, page_number: int) -> None:
        page = self._pages[page_number]
        if not page.complete:
            return
        page.closed = True
        if not page.dirty:
            self.space.protect(page_number, Protection.READ)

    def mark_dirty_page(self, page_number: int) -> None:
        """First write detected: remap writable, join the dirty set."""
        page = self.page_state(page_number)
        if page.dirty:
            return
        if not page.complete:
            raise SmartRpcError(
                f"page {page_number} written before it was filled"
            )
        page.dirty = True
        page.closed = True
        page.version += 1
        self.dirty_pages.add(page_number)
        self.space.protect(page_number, Protection.READ_WRITE)
        self.runtime.stats.write_faults += 1
        self.runtime.trace_event(
            "write",
            f"{self.runtime.site_id}: page {page_number} marked dirty "
            f"(session {self.state.session_id})",
            session=self.state.session_id,
            space=self.runtime.site_id,
            page=page_number,
            home=page.home,
            version=page.version,
        )

    def dirty_entries(self) -> List[AllocEntry]:
        """Entries of the modified data set, deduplicated across spans."""
        seen = set()
        out: List[AllocEntry] = []
        for page_number in sorted(self.dirty_pages):
            for entry in self._pages[page_number].entries:
                key = id(entry)
                if key not in seen:
                    seen.add(key)
                    out.append(entry)
        return out

    # -- extended_free support ------------------------------------------------

    def release_entry(self, entry: AllocEntry) -> None:
        """Drop a cache entry (its placeholder bytes are abandoned).

        The cache area is session-scoped, so placeholder space is not
        recycled — it all disappears at invalidation.
        """
        if entry.shipped and not entry.touched:
            self._untouched_shipped -= 1
        self.table.remove(entry)
        for number in self._entry_pages(entry):
            page = self._pages[number]
            if entry in page.entries:
                page.entries.remove(entry)

    # -- teardown -------------------------------------------------------------

    def invalidate(self) -> None:
        """Unmap the whole cache area and clear the table."""
        for number in list(self._pages):
            self.space.unmap_page(number)
            self.runtime.unregister_cache_page(number)
        self._pages.clear()
        self._open_pages.clear()
        self.dirty_pages.clear()
        self._untouched_shipped = 0
        self.table = DataAllocationTable()
        self.runtime.stats.invalidations += 1


def _round_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)
