"""Minimal ASCII line charts for experiment series.

The evaluation's figures are curves; rendering them as text makes the
regenerated shapes visible directly in benchmark output and in
EXPERIMENTS.md without any plotting dependency::

    12.00 |                                         L
          |                                 L
     8.00 |                         L
          |                 L
     4.00 |         L                           P
          |     L               P       P
     0.00 |_P_E_P_E_____E_______E_______E________E_
            0.0                                1.0
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

Series = Sequence[Tuple[float, float]]

_HEIGHT = 12
_WIDTH = 64


def render_chart(
    series: Dict[str, Series],
    height: int = _HEIGHT,
    width: int = _WIDTH,
    y_label: str = "",
) -> str:
    """Render named series on one shared-axis ASCII chart.

    Each series is plotted with the first character of its name; where
    points collide the later series wins.  Axes are linear and scaled
    to the union of all points.
    """
    points = [
        (x, y) for curve in series.values() for x, y in curve
    ]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    y_low = min(y_low, 0.0)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid: List[List[str]] = [
        [" "] * width for _ in range(height)
    ]
    for name, curve in series.items():
        marker = name[0].upper()
        for x, y in curve:
            column = int((x - x_low) / x_span * (width - 1))
            row = int((y - y_low) / y_span * (height - 1))
            grid[height - 1 - row][column] = marker

    label_width = 10
    lines = []
    for index, row in enumerate(grid):
        y_value = y_high - index * y_span / (height - 1)
        show_label = index % 3 == 0 or index == height - 1
        label = (
            f"{y_value:{label_width}.3f}" if show_label
            else " " * label_width
        )
        lines.append(f"{label} |{''.join(row)}")
    lines.append(
        " " * label_width
        + " +"
        + "-" * width
    )
    x_axis = (
        " " * (label_width + 2)
        + f"{x_low:<{width // 2}g}"
        + f"{x_high:>{width - width // 2}g}"
    )
    lines.append(x_axis)
    legend = "   ".join(
        f"{name[0].upper()}={name}" for name in series
    )
    lines.append(" " * (label_width + 2) + legend)
    if y_label:
        lines.insert(0, f"{y_label}")
    return "\n".join(lines)
