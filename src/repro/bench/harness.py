"""World construction and single-run experiment drivers.

A *world* is one deployment: a transport, a type name server, a caller
site "A" holding the data, and a callee site "B" running the remote
procedures — the paper's two-SPARCstation setup.  Each measurement
builds a fresh world so runs are independent and deterministic.

Worlds come in two transports (``transport=`` of :func:`make_world`):

* ``simnet`` — the deterministic in-process simulator; ``seconds``
  are modeled time under the calibrated cost model (the paper's
  figures);
* ``tcp`` — three :class:`~repro.transport.tcp.TcpTransport` stacks
  exchanging framed messages over real localhost sockets; ``seconds``
  are genuine wall time.  Message/byte/fault counters are identical
  across the two, which the equivalence property test pins down.

TCP worlds own OS resources (ports, threads); use them as context
managers or call :meth:`World.close`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.baselines.eager import FullyEagerRpc
from repro.baselines.lazy import FullyLazyRpc
from repro.namesvc.client import TypeResolver
from repro.namesvc.server import TypeNameServer
from repro.rpc.runtime import RpcRuntime
from repro.rpc.stubgen import ClientStub
from repro.simnet.clock import CostModel, Stopwatch
from repro.simnet.network import Network
from repro.simnet.stats import StatsCollector
from repro.smartrpc.cache import SINGLE_HOME
from repro.smartrpc.closure import BREADTH_FIRST
from repro.smartrpc.runtime import SmartRpcRuntime
from repro.transport.base import Endpoint, RetryPolicy, Transport
from repro.transport.tcp import TcpTransport
from repro.workloads.hashtable import bind_hash_server, register_hash_types
from repro.workloads.linked_list import bind_list_server, register_list_types
from repro.workloads.traversal import (
    TREE_OPS,
    bind_tree_server,
    tree_client,
    visit_counts,
)
from repro.workloads.trees import build_complete_tree, register_tree_types
from repro.xdr.arch import SPARC32, Architecture
from repro.xdr.registry import TypeRegistry

from repro.bench.calibration import PAPER_COST_MODEL

PROPOSED = "proposed"
FULLY_EAGER = "eager"
FULLY_LAZY = "lazy"
METHODS = (FULLY_EAGER, FULLY_LAZY, PROPOSED)

CALLER = "A"
CALLEE = "B"
NAME_SERVER = "NS"

SIMNET = "simnet"
TCP = "tcp"
TRANSPORTS = (SIMNET, TCP)


@dataclass
class World:
    """One two-site deployment (simulated or real TCP)."""

    network: Transport
    caller: RpcRuntime
    callee: RpcRuntime
    method: str
    transport: str = SIMNET
    transports: List[Transport] = field(default_factory=list)

    @property
    def stats(self) -> StatsCollector:
        """The shared statistics collector."""
        return self.network.stats

    def close(self) -> None:
        """Release transport resources (no-op for simnet worlds)."""
        for transport in self.transports:
            transport.close()
        self.transports = []

    def __enter__(self) -> "World":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _make_runtime(
    method: str,
    network: Transport,
    site: Endpoint,
    arch: Architecture,
    closure_size: int,
    allocation_strategy: str,
    closure_order: str,
    batch_memory_ops: bool,
) -> RpcRuntime:
    resolver = TypeResolver(site, NAME_SERVER)
    if method == PROPOSED:
        return SmartRpcRuntime(
            network,
            site,
            arch,
            resolver=resolver,
            closure_size=closure_size,
            allocation_strategy=allocation_strategy,
            closure_order=closure_order,
            batch_memory_ops=batch_memory_ops,
        )
    if method == FULLY_EAGER:
        return FullyEagerRpc(network, site, arch, resolver=resolver)
    if method == FULLY_LAZY:
        return FullyLazyRpc(network, site, arch, resolver=resolver)
    raise ValueError(f"unknown method {method!r}")


def make_world(
    method: str,
    closure_size: int = 8192,
    allocation_strategy: str = SINGLE_HOME,
    closure_order: str = BREADTH_FIRST,
    caller_arch: Architecture = SPARC32,
    callee_arch: Architecture = SPARC32,
    cost_model: Optional[CostModel] = None,
    batch_memory_ops: bool = True,
    transport: str = SIMNET,
    trace: bool = False,
) -> World:
    """Build a fresh deployment running ``method`` over ``transport``.

    Both sites default to the paper's SPARC architecture so node sizes
    (16 bytes) and therefore transfer volumes match the original.
    """
    model = cost_model if cost_model is not None else PAPER_COST_MODEL
    stats = StatsCollector(trace=trace)
    if transport == SIMNET:
        network: Transport = Network(cost_model=model, stats=stats)
        ns_site = network.add_site(NAME_SERVER)
        caller_site = network.add_site(CALLER)
        callee_site = network.add_site(CALLEE)
        transports: List[Transport] = []
        caller_net = callee_net = network
    elif transport == TCP:
        # Three real stacks on localhost sharing one stats collector
        # and one peer table (updated in place as listeners bind).
        # Localhost loses nothing, so a patient retry schedule keeps
        # large eager transfers from timing out into retransmissions
        # that would skew the message/byte counters under measurement.
        patient = RetryPolicy(
            timeout=5.0, backoff=2.0, max_timeout=30.0, max_attempts=4
        )
        peers: dict = {}
        transports = [
            TcpTransport(
                site_id,
                stats=stats,
                cost_model=model,
                peers=peers,
                retry=patient,
            )
            for site_id in (NAME_SERVER, CALLER, CALLEE)
        ]
        for stack in transports:
            peers[stack.site_id] = stack.start()
        ns_net, caller_net, callee_net = transports
        network = caller_net
        ns_site = ns_net.endpoint
        caller_site = caller_net.endpoint
        callee_site = callee_net.endpoint
    else:
        raise ValueError(f"unknown transport {transport!r}")
    TypeNameServer(ns_site, TypeRegistry())
    caller = _make_runtime(
        method, caller_net, caller_site, caller_arch,
        closure_size, allocation_strategy, closure_order, batch_memory_ops,
    )
    callee = _make_runtime(
        method, callee_net, callee_site, callee_arch,
        closure_size, allocation_strategy, closure_order, batch_memory_ops,
    )
    for runtime in (caller, callee):
        register_tree_types(runtime)
        register_hash_types(runtime)
        register_list_types(runtime)
        runtime.import_interface(TREE_OPS)
    bind_tree_server(callee)
    bind_hash_server(callee)
    bind_list_server(callee)
    return World(network, caller, callee, method, transport, transports)


@dataclass
class ExperimentRun:
    """Measurements of one remote procedure call."""

    method: str
    seconds: float
    callbacks: int
    messages: int
    bytes_moved: int
    page_faults: int
    write_faults: int
    entries: int
    result: int

    def row(self) -> tuple:
        """Compact tuple for table rendering."""
        return (
            self.method,
            round(self.seconds, 4),
            self.callbacks,
            self.messages,
            self.bytes_moved,
        )


def run_tree_call(
    world: World,
    num_nodes: int,
    procedure: str,
    ratio: Optional[float] = None,
    repeats: int = 0,
    seed: int = 0,
) -> ExperimentRun:
    """Build a tree on the caller and measure one remote call on it.

    ``procedure`` is ``search`` / ``search_update`` (with ``ratio``) or
    ``path_search`` (with ``repeats`` and ``seed``).  Only the call
    itself is timed — tree construction and session teardown are not
    part of the paper's "time required to process one remote procedure
    call" — but the measured call does include the coherency piggyback
    work its updates cause, as the original's did.
    """
    root = build_complete_tree(world.caller, num_nodes)
    stub = tree_client(world.caller, CALLEE)
    world.stats.reset()
    clock = world.network.clock
    with world.caller.session() as session:
        watch = Stopwatch(clock)
        if procedure == "search":
            assert ratio is not None
            target = visit_counts(ratio, num_nodes)["target_nodes"]
            result = stub.search(session, root, target)
        elif procedure == "search_update":
            assert ratio is not None
            target = visit_counts(ratio, num_nodes)["target_nodes"]
            result = stub.search_update(session, root, target)
        elif procedure == "search_repeat":
            result = stub.search_repeat(session, root, num_nodes, repeats)
        elif procedure == "path_search":
            result = stub.path_search(session, root, repeats, seed)
        else:
            raise ValueError(f"unknown tree procedure {procedure!r}")
        seconds = watch.elapsed
    stats = world.stats
    return ExperimentRun(
        method=world.method,
        seconds=seconds,
        callbacks=stats.callbacks,
        messages=stats.total_messages,
        bytes_moved=stats.total_bytes,
        page_faults=stats.page_faults,
        write_faults=stats.write_faults,
        entries=stats.entries_transferred,
        result=result,
    )
