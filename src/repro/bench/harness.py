"""World construction and single-run experiment drivers.

A *world* is one deployment: a transport, a type name server, a caller
site "A" holding the data, and a callee site "B" running the remote
procedures — the paper's two-SPARCstation setup.  Each measurement
builds a fresh world so runs are independent and deterministic.

Worlds come in two transports (``transport=`` of :func:`make_world`):

* ``simnet`` — the deterministic in-process simulator; ``seconds``
  are modeled time under the calibrated cost model (the paper's
  figures);
* ``tcp`` — three :class:`~repro.transport.tcp.TcpTransport` stacks
  exchanging framed messages over real localhost sockets; ``seconds``
  are genuine wall time.  Message/byte/fault counters are identical
  across the two, which the equivalence property test pins down.
* ``shm`` — three :class:`~repro.transport.shm.ShmTransport` stacks
  exchanging the same frames through shared-memory ring buffers, with
  bulk payloads handed over as segment offsets instead of copies;
  ``seconds`` are wall time, counters again identical.

TCP and shm worlds own OS resources (ports, threads, shared-memory
segments); use them as context managers or call :meth:`World.close`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.namesvc.client import TypeResolver
from repro.namesvc.server import TypeNameServer
from repro.rpc.runtime import RpcRuntime
from repro.rpc.stubgen import ClientStub
from repro.simnet.clock import CostModel, Stopwatch
from repro.simnet.network import Network
from repro.simnet.stats import StatsCollector
from repro.smartrpc.hints import ClosureHints
from repro.smartrpc.policy import (
    POLICY_NAMES,
    TransferPolicy,
    make_policy,
)
from repro.smartrpc.runtime import SmartRpcRuntime
from repro.transport.base import Endpoint, RetryPolicy, Transport
from repro.transport.shm import ShmTransport
from repro.transport.tcp import TcpTransport
from repro.workloads.hashtable import (
    HASH_NODE_TYPE_ID,
    HASH_TABLE_TYPE_ID,
    bind_hash_server,
    build_hash_table,
    hash_client,
    register_hash_types,
)
from repro.workloads.linked_list import (
    bind_list_server,
    build_list,
    list_client,
    register_list_types,
)
from repro.workloads.traversal import (
    TREE_OPS,
    bind_tree_server,
    tree_client,
    visit_counts,
)
from repro.workloads.trees import build_complete_tree, register_tree_types
from repro.xdr.arch import SPARC32, Architecture
from repro.xdr.registry import TypeRegistry

from repro.bench.calibration import PAPER_COST_MODEL

#: The paper's three systems, as transfer-policy names.  ``proposed``
#: is an alias for the ``paper`` policy that additionally accepts the
#: benchmark knobs (closure size sweeps etc.); the fully eager method
#: is the ``graphcopy`` policy and the fully lazy one the ``lazy``
#: policy, so every baseline runs through the one smart runtime.
PROPOSED = "proposed"
FULLY_EAGER = "graphcopy"
FULLY_LAZY = "lazy"
METHODS = (FULLY_EAGER, FULLY_LAZY, PROPOSED)

#: Everything ``make_world`` (and the ``--policy`` CLI flag) accepts.
POLICIES = tuple(sorted(set(POLICY_NAMES) | {PROPOSED}))


def standard_workload_hints() -> ClosureHints:
    """The benchmark workloads' programmer hints (paper §6).

    Hash retrieval follows only the bucket chain and never fans out of
    the table header; tree and list types are unhinted (every pointer
    field is followed).  This is what the ``hinted`` policy preset uses
    unless the caller supplies its own hints.
    """
    hints = ClosureHints()
    hints.follow(HASH_TABLE_TYPE_ID, [])
    hints.follow(HASH_NODE_TYPE_ID, ["next"])
    return hints


def resolve_policy(
    method,
    closure_size=None,
    allocation_strategy=None,
    closure_order=None,
    batch_memory_ops=None,
    closure_hints=None,
) -> TransferPolicy:
    """Resolve a ``make_world`` method/policy argument into a policy.

    ``proposed`` maps to the ``paper`` policy with every benchmark knob
    applied; the pinned presets (``lazy``, ``eager``, ``graphcopy``)
    ignore the closure-size sweep knob, which belongs to the proposed
    method's ablations.
    """
    if isinstance(method, TransferPolicy):
        return method
    name = "paper" if method == PROPOSED else method
    if name not in POLICY_NAMES:
        raise ValueError(f"unknown method {method!r}")
    if name == "hinted" and closure_hints is None:
        closure_hints = standard_workload_hints()
    if name in ("lazy", "eager"):
        closure_size = None
    if name == "graphcopy":
        return make_policy(name)
    return make_policy(
        name,
        closure_size=closure_size,
        allocation_strategy=allocation_strategy,
        closure_order=closure_order,
        batch_memory_ops=batch_memory_ops,
        closure_hints=closure_hints,
    )

CALLER = "A"
CALLEE = "B"
NAME_SERVER = "NS"

SIMNET = "simnet"
TCP = "tcp"
SHM = "shm"
TRANSPORTS = (SIMNET, TCP, SHM)


@dataclass
class World:
    """One two-site deployment (simulated or real TCP)."""

    network: Transport
    caller: RpcRuntime
    callee: RpcRuntime
    method: str
    transport: str = SIMNET
    transports: List[Transport] = field(default_factory=list)

    @property
    def stats(self) -> StatsCollector:
        """The shared statistics collector."""
        return self.network.stats

    def close(self) -> None:
        """Release transport resources (no-op for simnet worlds)."""
        for transport in self.transports:
            transport.close()
        self.transports = []

    def __enter__(self) -> "World":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _make_runtime(
    policy: TransferPolicy,
    network: Transport,
    site: Endpoint,
    arch: Architecture,
) -> RpcRuntime:
    resolver = TypeResolver(site, NAME_SERVER)
    return SmartRpcRuntime(
        network, site, arch, resolver=resolver, policy=policy
    )


def make_world(
    method: str = PROPOSED,
    closure_size: Optional[int] = None,
    allocation_strategy: Optional[str] = None,
    closure_order: Optional[str] = None,
    caller_arch: Architecture = SPARC32,
    callee_arch: Architecture = SPARC32,
    cost_model: Optional[CostModel] = None,
    batch_memory_ops: Optional[bool] = None,
    transport: str = SIMNET,
    trace: bool = False,
    closure_hints: Optional[ClosureHints] = None,
) -> World:
    """Build a fresh deployment running ``method`` over ``transport``.

    ``method`` is any transfer-policy name (``proposed``, ``lazy``,
    ``eager``, ``graphcopy``, ``paper``, ``hinted``, ``adaptive``,
    ``fixed``) or a :class:`~repro.smartrpc.policy.TransferPolicy`
    instance; each runtime gets its own fresh copy.

    Both sites default to the paper's SPARC architecture so node sizes
    (16 bytes) and therefore transfer volumes match the original.
    """
    policy = resolve_policy(
        method,
        closure_size=closure_size,
        allocation_strategy=allocation_strategy,
        closure_order=closure_order,
        batch_memory_ops=batch_memory_ops,
        closure_hints=closure_hints,
    )
    model = cost_model if cost_model is not None else PAPER_COST_MODEL
    stats = StatsCollector(trace=trace)
    if transport == SIMNET:
        network: Transport = Network(cost_model=model, stats=stats)
        ns_site = network.add_site(NAME_SERVER)
        caller_site = network.add_site(CALLER)
        callee_site = network.add_site(CALLEE)
        transports: List[Transport] = []
        caller_net = callee_net = network
    elif transport == TCP:
        # Three real stacks on localhost sharing one stats collector
        # and one peer table (updated in place as listeners bind).
        # Localhost loses nothing, so a patient retry schedule keeps
        # large eager transfers from timing out into retransmissions
        # that would skew the message/byte counters under measurement.
        patient = RetryPolicy(
            timeout=5.0, backoff=2.0, max_timeout=30.0, max_attempts=4
        )
        peers: dict = {}
        transports = [
            TcpTransport(
                site_id,
                stats=stats,
                cost_model=model,
                peers=peers,
                retry=patient,
            )
            for site_id in (NAME_SERVER, CALLER, CALLEE)
        ]
        for stack in transports:
            peers[stack.site_id] = stack.start()
        ns_net, caller_net, callee_net = transports
        network = caller_net
        ns_site = ns_net.endpoint
        caller_site = caller_net.endpoint
        callee_site = callee_net.endpoint
    elif transport == SHM:
        # Same three-stack shape as TCP, but over shared-memory rings:
        # the peer table maps site ids to listener segment names.  The
        # rings never lose a frame, so the patient schedule again keeps
        # the counters free of spurious retransmissions.
        patient = RetryPolicy(
            timeout=5.0, backoff=2.0, max_timeout=30.0, max_attempts=4
        )
        peers = {}
        transports = [
            ShmTransport(
                site_id,
                stats=stats,
                cost_model=model,
                peers=peers,
                retry=patient,
            )
            for site_id in (NAME_SERVER, CALLER, CALLEE)
        ]
        for stack in transports:
            peers[stack.site_id] = stack.start()
        ns_net, caller_net, callee_net = transports
        network = caller_net
        ns_site = ns_net.endpoint
        caller_site = caller_net.endpoint
        callee_site = callee_net.endpoint
    else:
        raise ValueError(f"unknown transport {transport!r}")
    TypeNameServer(ns_site, TypeRegistry())
    caller = _make_runtime(policy, caller_net, caller_site, caller_arch)
    callee = _make_runtime(policy, callee_net, callee_site, callee_arch)
    for runtime in (caller, callee):
        register_tree_types(runtime)
        register_hash_types(runtime)
        register_list_types(runtime)
        runtime.import_interface(TREE_OPS)
    bind_tree_server(callee)
    bind_hash_server(callee)
    bind_list_server(callee)
    label = method if isinstance(method, str) else policy.name
    return World(network, caller, callee, label, transport, transports)


@dataclass
class ExperimentRun:
    """Measurements of one remote procedure call."""

    method: str
    seconds: float
    callbacks: int
    messages: int
    bytes_moved: int
    page_faults: int
    write_faults: int
    entries: int
    result: int
    # Shipped-vs-touched accounting of the fill path (closure bytes
    # sent vs actually accessed; the prefetch pair excludes demanded
    # roots) — the adaptive policy's feedback signal.
    closure_shipped: int = 0
    closure_touched: int = 0
    prefetch_shipped: int = 0
    prefetch_touched: int = 0
    # Fetch-pipeline wins (zero unless the policy enables the
    # pipeline): demand round trips that never happened, and faults
    # absorbed by an already-in-flight exchange.
    round_trips_saved: int = 0
    piggyback_hits: int = 0

    def row(self) -> tuple:
        """Compact tuple for table rendering."""
        return (
            self.method,
            round(self.seconds, 4),
            self.callbacks,
            self.messages,
            self.bytes_moved,
        )

    def ledger(self) -> dict:
        """The shipped-vs-touched counters, for JSON reporting."""
        return {
            "closure_bytes_shipped": self.closure_shipped,
            "closure_bytes_touched": self.closure_touched,
            "prefetch_bytes_shipped": self.prefetch_shipped,
            "prefetch_bytes_touched": self.prefetch_touched,
            "round_trips_saved": self.round_trips_saved,
            "piggyback_hits": self.piggyback_hits,
        }


def run_tree_call(
    world: World,
    num_nodes: int,
    procedure: str,
    ratio: Optional[float] = None,
    repeats: int = 0,
    seed: int = 0,
) -> ExperimentRun:
    """Build a tree on the caller and measure one remote call on it.

    ``procedure`` is ``search`` / ``search_update`` (with ``ratio``) or
    ``path_search`` (with ``repeats`` and ``seed``).  Only the call
    itself is timed — tree construction and session teardown are not
    part of the paper's "time required to process one remote procedure
    call" — but the measured call does include the coherency piggyback
    work its updates cause, as the original's did.
    """
    root = build_complete_tree(world.caller, num_nodes)
    stub = tree_client(world.caller, CALLEE)
    world.stats.reset()
    clock = world.network.clock
    with world.caller.session() as session:
        watch = Stopwatch(clock)
        if procedure == "search":
            assert ratio is not None
            target = visit_counts(ratio, num_nodes)["target_nodes"]
            result = stub.search(session, root, target)
        elif procedure == "search_update":
            assert ratio is not None
            target = visit_counts(ratio, num_nodes)["target_nodes"]
            result = stub.search_update(session, root, target)
        elif procedure == "search_repeat":
            result = stub.search_repeat(session, root, num_nodes, repeats)
        elif procedure == "path_search":
            result = stub.path_search(session, root, repeats, seed)
        else:
            raise ValueError(f"unknown tree procedure {procedure!r}")
        seconds = watch.elapsed
    return _finish_run(world, seconds, result)


def run_hash_call(
    world: World,
    num_keys: int,
    lookups: int,
    first_key: int = 17,
) -> ExperimentRun:
    """Build a hash table on the caller and measure remote lookups.

    The sparse-retrieval workload of the §6 hints discussion (and the
    adaptive policy's target): ``lookups`` chained key lookups touch a
    handful of bucket chains while an unhinted eager closure prefetches
    whole neighbourhoods of the table.
    """
    table, _ = build_hash_table(world.caller, list(range(num_keys)))
    stub = hash_client(world.caller, CALLEE)
    world.stats.reset()
    clock = world.network.clock
    with world.caller.session() as session:
        watch = Stopwatch(clock)
        result = stub.lookup_many(session, table, first_key, lookups)
        seconds = watch.elapsed
    return _finish_run(world, seconds, result)


def run_list_call(
    world: World,
    num_nodes: int,
    procedure: str = "total",
    factor: int = 3,
) -> ExperimentRun:
    """Build a linked list on the caller and measure one remote call.

    The pointer-chasing workload with no fan-out: each fill discovers
    exactly one frontier pointer, so round trips scale linearly with
    list length divided by closure budget — the fetch pipeline's
    prefetch mechanism is what collapses them.
    """
    head = build_list(world.caller, list(range(num_nodes)))
    stub = list_client(world.caller, CALLEE)
    world.stats.reset()
    clock = world.network.clock
    with world.caller.session() as session:
        watch = Stopwatch(clock)
        if procedure == "total":
            result = stub.total(session, head)
        elif procedure == "scale":
            result = stub.scale(session, head, factor)
        else:
            raise ValueError(f"unknown list procedure {procedure!r}")
        seconds = watch.elapsed
    return _finish_run(world, seconds, result)


def _finish_run(world: World, seconds: float, result: int) -> ExperimentRun:
    stats = world.stats
    ledger = stats.transfer_ledger
    return ExperimentRun(
        method=world.method,
        seconds=seconds,
        callbacks=stats.callbacks,
        messages=stats.total_messages,
        bytes_moved=stats.total_bytes,
        page_faults=stats.page_faults,
        write_faults=stats.write_faults,
        entries=stats.entries_transferred,
        result=result,
        closure_shipped=ledger.closure_bytes_shipped,
        closure_touched=ledger.closure_bytes_touched,
        prefetch_shipped=ledger.prefetch_bytes_shipped,
        prefetch_touched=ledger.prefetch_bytes_touched,
        round_trips_saved=ledger.round_trips_saved,
        piggyback_hits=ledger.piggyback_hits,
    )
