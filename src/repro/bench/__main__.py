"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench            # list experiments
    python -m repro.bench fig4       # one experiment at paper scale
    python -m repro.bench all        # everything (several minutes)
    python -m repro.bench fig4 --quick   # reduced scale for smoke runs
"""

from __future__ import annotations

import argparse
import inspect
import sys

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.harness import POLICIES
from repro.smartrpc.closure import BREADTH_FIRST, DEPTH_FIRST

_QUICK_OVERRIDES = {
    "fig4": dict(num_nodes=8191, ratios=[0.0, 0.25, 0.5, 0.75, 1.0]),
    "fig5": dict(num_nodes=8191, ratios=[0.0, 0.25, 0.5, 0.75, 1.0]),
    "fig6": dict(
        node_counts=[4095, 8191],
        closure_sizes=[0, 1024, 4096, 16384],
        repeats=3,
    ),
    "fig7": dict(num_nodes=8191, ratios=[0.0, 0.25, 0.5, 0.75, 1.0]),
}


def main(argv=None) -> int:
    """Run one (or all) experiments and print their tables."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures/tables.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment name, or 'all'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced problem sizes (for smoke runs)",
    )
    parser.add_argument(
        "--policy",
        choices=POLICIES,
        help="transfer policy for the proposed-method column",
    )
    parser.add_argument(
        "--closure-order",
        choices=(BREADTH_FIRST, DEPTH_FIRST),
        help="closure traversal order (bfs is the paper's)",
    )
    args = parser.parse_args(argv)
    if not args.experiment:
        print("available experiments:")
        for name in ALL_EXPERIMENTS:
            print(f"  {name}")
        print("or: all")
        return 0
    names = (
        list(ALL_EXPERIMENTS)
        if args.experiment == "all"
        else [args.experiment]
    )
    for name in names:
        runner = ALL_EXPERIMENTS.get(name)
        if runner is None:
            print(f"unknown experiment {name!r}", file=sys.stderr)
            return 2
        kwargs = dict(_QUICK_OVERRIDES.get(name, {})) if args.quick else {}
        accepted = inspect.signature(runner).parameters
        for flag, value in (
            ("policy", args.policy),
            ("closure_order", args.closure_order),
        ):
            if value is None:
                continue
            if flag not in accepted:
                print(
                    f"note: {name} does not take --{flag.replace('_', '-')};"
                    " ignored",
                    file=sys.stderr,
                )
                continue
            kwargs[flag] = value
        result = runner(**kwargs)
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
