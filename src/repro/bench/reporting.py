"""Fixed-width table rendering for experiment output."""

from __future__ import annotations

from typing import Any, List, Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
) -> str:
    """Render one experiment's rows as a fixed-width text table."""
    cells: List[List[str]] = [
        [_render(value) for value in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, ""]
    lines.append(
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _render(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_series(name: str, points: Sequence[tuple]) -> str:
    """Render one curve as ``name: x=y`` pairs (compact form)."""
    body = "  ".join(f"{x:g}={_render(y)}" for x, y in points)
    return f"{name}: {body}"
