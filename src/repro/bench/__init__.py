"""Experiment harness: regenerates every table and figure of the paper.

* :mod:`repro.bench.calibration` — the cost model approximating the
  paper's testbed, plus the paper's own reported curves (digitised off
  the figures) for side-by-side comparison;
* :mod:`repro.bench.harness` — world construction (network + name
  server + caller/callee runtimes for each method) and single-run
  experiment drivers;
* :mod:`repro.bench.experiments` — one function per figure/table, each
  returning the rows the paper plots;
* :mod:`repro.bench.reporting` — fixed-width table rendering.

Run everything from the command line::

    python -m repro.bench fig4
    python -m repro.bench all
"""

from repro.bench.calibration import PAPER_COST_MODEL
from repro.bench.harness import ExperimentRun, make_world, run_tree_call
from repro.bench.experiments import (
    ablation_alloc_strategy,
    ablation_batched_malloc,
    ablation_closure_order,
    fig4_methods_comparison,
    fig5_callback_counts,
    fig6_closure_size,
    fig7_update_performance,
    table1_allocation_table,
)

__all__ = [
    "ExperimentRun",
    "PAPER_COST_MODEL",
    "ablation_alloc_strategy",
    "ablation_batched_malloc",
    "ablation_closure_order",
    "fig4_methods_comparison",
    "fig5_callback_counts",
    "fig6_closure_size",
    "fig7_update_performance",
    "make_world",
    "run_tree_call",
    "table1_allocation_table",
]
