"""One function per table/figure in the paper's evaluation.

Each returns the rows the paper plots (plus the counters that explain
them) and a rendered text table.  ``python -m repro.bench <name>`` runs
one from the command line; ``benchmarks/bench_*.py`` wraps them for
pytest-benchmark.

Parameters default to the paper's values; tests pass smaller trees so
the full suite stays fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.smartrpc.cache import ISOLATED, PACKED, SINGLE_HOME
from repro.smartrpc.closure import BREADTH_FIRST, DEPTH_FIRST
from repro.smartrpc.long_pointer import LongPointer
from repro.workloads.linked_list import list_client
from repro.workloads.trees import build_complete_tree
from repro.xdr.types import Field as XField
from repro.xdr.types import OpaqueType, PointerType, StructType

from repro.bench import calibration
from repro.bench.ascii_chart import render_chart
from repro.bench.harness import (
    CALLEE,
    CALLER,
    FULLY_EAGER,
    FULLY_LAZY,
    METHODS,
    NAME_SERVER,
    PROPOSED,
    ExperimentRun,
    make_world,
    run_hash_call,
    run_tree_call,
)
from repro.bench.reporting import format_table


def _proposed_world(policy, closure_order, **knobs):
    """A world for the figure's "proposed" column.

    ``--policy`` substitutes any transfer policy for the proposed
    method's column while the baseline columns stay what the paper
    plots; ``--closure-order`` rides along on every world whose policy
    has a data plane.
    """
    method = PROPOSED if policy is None else policy
    return make_world(method, closure_order=closure_order, **knobs)


@dataclass
class ExperimentResult:
    """Rows plus presentation for one regenerated figure/table."""

    name: str
    headers: List[str]
    rows: List[tuple]
    notes: List[str] = field(default_factory=list)
    chart: Optional[str] = None

    def render(self) -> str:
        """The text table (plus chart and notes) for this experiment."""
        parts = [format_table(self.name, self.headers, self.rows)]
        if self.chart:
            parts.append("")
            parts.append(self.chart)
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)


# -- Figure 4 -----------------------------------------------------------------


def fig4_methods_comparison(
    num_nodes: int = calibration.FIG4_NODES,
    ratios: Optional[Sequence[float]] = None,
    closure_size: int = calibration.FIG4_CLOSURE,
    policy: Optional[str] = None,
    closure_order: Optional[str] = None,
) -> ExperimentResult:
    """Figure 4: processing time vs access ratio, three methods."""
    if ratios is None:
        ratios = calibration.ACCESS_RATIOS
    rows = []
    for ratio in ratios:
        times: Dict[str, float] = {}
        for method in METHODS:
            if method == PROPOSED:
                world = _proposed_world(
                    policy, closure_order, closure_size=closure_size
                )
            else:
                world = make_world(
                    method,
                    closure_size=closure_size,
                    closure_order=closure_order,
                )
            run = run_tree_call(world, num_nodes, "search", ratio=ratio)
            times[method] = run.seconds
        rows.append(
            (
                ratio,
                times[FULLY_EAGER],
                times[FULLY_LAZY],
                times[PROPOSED],
            )
        )
    chart = render_chart(
        {
            "eager": [(row[0], row[1]) for row in rows],
            "lazy": [(row[0], row[2]) for row in rows],
            "proposed": [(row[0], row[3]) for row in rows],
        },
        y_label="processing time (s) vs access ratio",
    )
    return ExperimentResult(
        name=(
            f"Figure 4 - processing time (s) vs access ratio "
            f"({num_nodes} nodes, closure {closure_size} B)"
        ),
        headers=["ratio", "fully eager", "fully lazy", "proposed"],
        rows=rows,
        chart=chart,
        notes=[
            "paper: eager flat ~2.1 s; lazy linear to ~12 s; proposed "
            "best below ~0.6 and modestly above eager at 1.0",
        ],
    )


# -- Figure 5 -----------------------------------------------------------------


def fig5_callback_counts(
    num_nodes: int = calibration.FIG4_NODES,
    ratios: Optional[Sequence[float]] = None,
    closure_size: int = calibration.FIG4_CLOSURE,
    policy: Optional[str] = None,
    closure_order: Optional[str] = None,
) -> ExperimentResult:
    """Figure 5: number of callbacks vs access ratio, lazy vs proposed."""
    if ratios is None:
        ratios = calibration.ACCESS_RATIOS
    rows = []
    for ratio in ratios:
        counts: Dict[str, int] = {}
        for method in (FULLY_LAZY, PROPOSED):
            if method == PROPOSED:
                world = _proposed_world(
                    policy, closure_order, closure_size=closure_size
                )
            else:
                world = make_world(
                    method,
                    closure_size=closure_size,
                    closure_order=closure_order,
                )
            run = run_tree_call(world, num_nodes, "search", ratio=ratio)
            counts[method] = run.callbacks
        rows.append((ratio, counts[FULLY_LAZY], counts[PROPOSED]))
    return ExperimentResult(
        name=(
            f"Figure 5 - callbacks vs access ratio ({num_nodes} nodes, "
            f"closure {closure_size} B)"
        ),
        headers=["ratio", "fully lazy", "proposed"],
        rows=rows,
        notes=[
            "paper: lazy callbacks equal the number of visited nodes; "
            "the proposed method needs orders of magnitude fewer",
        ],
    )


# -- Figure 6 -----------------------------------------------------------------


def fig6_closure_size(
    node_counts: Optional[Sequence[int]] = None,
    closure_sizes: Optional[Sequence[int]] = None,
    repeats: int = calibration.FIG6_REPEATS,
    policy: Optional[str] = None,
    closure_order: Optional[str] = None,
) -> ExperimentResult:
    """Figure 6: processing time vs closure size, three tree sizes.

    The subject is the paper's: the tree is depth-first searched from
    the root to the leaves ``repeats`` times in one RPC; upper-level
    nodes are reused from the cache in every search after the first.
    """
    if node_counts is None:
        node_counts = calibration.FIG6_NODE_COUNTS
    if closure_sizes is None:
        closure_sizes = calibration.FIG6_CLOSURE_SIZES
    rows = []
    optima: Dict[int, int] = {}
    for num_nodes in node_counts:
        best: Tuple[float, int] = (float("inf"), -1)
        for closure_size in closure_sizes:
            world = _proposed_world(
                policy, closure_order, closure_size=closure_size
            )
            run = run_tree_call(
                world, num_nodes, "search_repeat", repeats=repeats
            )
            rows.append(
                (num_nodes, closure_size, run.seconds, run.callbacks)
            )
            if run.seconds < best[0]:
                best = (run.seconds, closure_size)
        optima[num_nodes] = best[1]
    notes = [
        f"measured optima: "
        + ", ".join(f"{n}: {c} B" for n, c in optima.items()),
        "paper: optima at 4096 / 8192 / 16384 B for 16383 / 32767 / "
        "65535 nodes; high at closure 0, rising again past the optimum",
    ]
    chart = render_chart(
        {
            str(num_nodes): [
                (row[1] / 1024, row[2])
                for row in rows
                if row[0] == num_nodes
            ]
            for num_nodes in node_counts
        },
        y_label="processing time (s) vs closure size (KB)",
    )
    return ExperimentResult(
        name=(
            f"Figure 6 - processing time (s) vs closure size "
            f"({repeats} repeated searches)"
        ),
        headers=["nodes", "closure B", "seconds", "callbacks"],
        rows=rows,
        chart=chart,
        notes=notes,
    )


# -- Figure 7 -----------------------------------------------------------------


def fig7_update_performance(
    num_nodes: int = calibration.FIG4_NODES,
    ratios: Optional[Sequence[float]] = None,
    closure_size: int = calibration.FIG4_CLOSURE,
    policy: Optional[str] = None,
    closure_order: Optional[str] = None,
) -> ExperimentResult:
    """Figure 7: update vs visit-only processing time per ratio."""
    if ratios is None:
        ratios = calibration.ACCESS_RATIOS
    rows = []
    for ratio in ratios:
        visit_world = _proposed_world(
            policy, closure_order, closure_size=closure_size
        )
        visit = run_tree_call(visit_world, num_nodes, "search", ratio=ratio)
        update_world = _proposed_world(
            policy, closure_order, closure_size=closure_size
        )
        update = run_tree_call(
            update_world, num_nodes, "search_update", ratio=ratio
        )
        quotient = (
            update.seconds / visit.seconds if visit.seconds > 0 else 0.0
        )
        rows.append((ratio, visit.seconds, update.seconds, quotient))
    chart = render_chart(
        {
            "visited only": [(row[0], row[1]) for row in rows],
            "updated": [(row[0], row[2]) for row in rows],
        },
        y_label="processing time (s) vs update ratio",
    )
    return ExperimentResult(
        name=(
            f"Figure 7 - update performance ({num_nodes} nodes, "
            f"closure {closure_size} B)"
        ),
        headers=["ratio", "not updated (s)", "updated (s)", "updated/not"],
        rows=rows,
        chart=chart,
        notes=[
            "paper: the updated curve is scalable in the update ratio "
            "and each point is about twice the not-updated one (read "
            "page-in plus write-back)",
        ],
    )


# -- Table 1 ------------------------------------------------------------------


def table1_allocation_table() -> ExperimentResult:
    """Table 1: a data allocation table just after two swizzles.

    Reproduces the paper's scenario: two pointers, A and B, are passed
    from the caller to the callee; the callee's table then maps one
    protected page's offsets to the two long pointers, before any data
    has been transferred.
    """
    from repro.rpc.interface import InterfaceDef, Param, ProcedureDef
    from repro.rpc.stubgen import ClientStub, bind_server
    from repro.xdr.types import int32

    record = StructType(
        "record",
        [
            XField("payload", OpaqueType(24)),
            XField("link", PointerType("record")),
        ],
    )
    world = make_world(PROPOSED)
    for runtime in (world.caller, world.callee):
        runtime.resolver.register("record", record)
    a_address = world.caller.heap.malloc(
        record.sizeof(world.caller.arch), "record"
    )
    b_address = world.caller.heap.malloc(
        record.sizeof(world.caller.arch), "record"
    )
    interface = InterfaceDef(
        "table1",
        [
            ProcedureDef(
                "swizzle_only",
                [
                    Param("a", PointerType("record")),
                    Param("b", PointerType("record")),
                ],
                returns=int32,
            )
        ],
    )
    captured: List[tuple] = []

    def swizzle_only(ctx, a: int, b: int) -> int:
        # Both pointers are swizzled by now; capture the table before
        # any access transfers data.
        captured.extend(ctx.state.cache.table.rows())
        return len(ctx.state.cache.table)

    bind_server(world.callee, interface, {"swizzle_only": swizzle_only})
    stub = ClientStub(world.caller, interface, CALLEE)
    with world.caller.session() as session:
        count = stub.swizzle_only(session, a_address, b_address)
    rows = [
        (page, offset, repr(pointer))
        for page, offset, pointer in captured
    ]
    return ExperimentResult(
        name="Table 1 - the data allocation table after swizzling A and B",
        headers=["page #", "offset within the page", "long pointer"],
        rows=rows,
        notes=[
            f"{count} entries; both pointers share one protected page, "
            "as in the paper's Figure 2 / Table 1",
        ],
    )


# -- ablations (paper section 6 design discussions) ---------------------------


def ablation_alloc_strategy(
    num_nodes: int = 8191,
    ratio: float = 0.5,
    closure_size: int = calibration.FIG4_CLOSURE,
) -> ExperimentResult:
    """Placeholder-page allocation strategies (paper §6).

    ``single_home`` (per-datum sibling groups) is the paper's
    heuristic; ``packed`` fills pages across a whole batch (smaller
    working set, coarser fills); ``isolated`` is one datum per page
    (the lazy extreme).
    """
    rows = []
    for strategy in (SINGLE_HOME, PACKED, ISOLATED):
        world = make_world(
            PROPOSED,
            closure_size=closure_size,
            allocation_strategy=strategy,
        )
        run = run_tree_call(world, num_nodes, "search", ratio=ratio)
        rows.append(
            (
                strategy,
                run.seconds,
                run.callbacks,
                run.bytes_moved,
                run.page_faults,
            )
        )
    return ExperimentResult(
        name=(
            f"Ablation - placeholder allocation strategy "
            f"({num_nodes} nodes, ratio {ratio})"
        ),
        headers=["strategy", "seconds", "callbacks", "bytes", "faults"],
        rows=rows,
        notes=[
            "the paper's §6 calls the allocation method an open "
            "tradeoff between working-set size and communication count",
        ],
    )


def ablation_closure_order(
    num_nodes: int = 8191,
    ratios: Sequence[float] = (0.25, 0.5, 1.0),
    closure_size: int = calibration.FIG4_CLOSURE,
    policy: Optional[str] = None,
) -> ExperimentResult:
    """Breadth-first (paper) vs depth-first closure traversal (§6)."""
    rows = []
    for ratio in ratios:
        times = {}
        for order in (BREADTH_FIRST, DEPTH_FIRST):
            world = make_world(
                PROPOSED if policy is None else policy,
                closure_size=closure_size,
                closure_order=order,
            )
            run = run_tree_call(world, num_nodes, "search", ratio=ratio)
            times[order] = run
        rows.append(
            (
                ratio,
                times[BREADTH_FIRST].seconds,
                times[DEPTH_FIRST].seconds,
                times[BREADTH_FIRST].callbacks,
                times[DEPTH_FIRST].callbacks,
            )
        )
    return ExperimentResult(
        name=(
            f"Ablation - closure traversal order ({num_nodes} nodes, "
            f"closure {closure_size} B)"
        ),
        headers=["ratio", "bfs (s)", "dfs (s)", "bfs cb", "dfs cb"],
        rows=rows,
        notes=[
            "the paper uses breadth-first and leaves 'shape' "
            "optimisation to future work; depth-first matches a "
            "depth-first consumer better at partial ratios",
        ],
    )


def ablation_batched_malloc(counts: Sequence[int] = (50, 200, 800)) -> (
    ExperimentResult
):
    """Batched vs immediate remote allocation (paper §3.5).

    The callee appends nodes to a caller-resident list; with batching
    every allocation in the call flushes in one message per activity
    transfer, without it each allocation is its own round trip.
    """
    from repro.workloads.linked_list import build_list

    rows = []
    for count in counts:
        per_mode = {}
        for batched in (True, False):
            world = make_world(PROPOSED, batch_memory_ops=batched)
            head = build_list(world.caller, [1, 2, 3])
            client = list_client(world.caller, CALLEE)
            world.stats.reset()
            clock = world.network.clock
            start = clock.now
            with world.caller.session() as session:
                client.append_range(session, head, 100, count)
            per_mode[batched] = (
                clock.now - start,
                world.stats.messages_by_kind,
            )
        batched_s, batched_msgs = per_mode[True]
        immediate_s, immediate_msgs = per_mode[False]
        from repro.simnet.message import MessageKind

        rows.append(
            (
                count,
                batched_s,
                immediate_s,
                batched_msgs[MessageKind.MEMORY_BATCH],
                immediate_msgs[MessageKind.MEMORY_BATCH],
            )
        )
    return ExperimentResult(
        name="Ablation - batched vs immediate extended_malloc",
        headers=[
            "allocations",
            "batched (s)",
            "immediate (s)",
            "batch msgs",
            "immediate msgs",
        ],
        rows=rows,
        notes=[
            "paper §3.5: issuing each allocation remotely 'would "
            "degrade the runtime performance terribly'; batching sends "
            "one message per home per activity transfer",
        ],
    )


def ablation_closure_hints(
    num_keys: int = 2000, lookups: int = 6
) -> ExperimentResult:
    """Programmer closure hints on sparse hash retrieval (paper §6).

    "One promising solution is to use suggestions provided by the
    programmer": hinting that retrieval follows only the bucket chain
    (and never fans out of the table header) removes the prefetch
    waste of sparse access.  Paired with isolated placeholders, where
    page-grain fills cannot mask the hint.
    """
    from repro.namesvc.client import TypeResolver
    from repro.namesvc.server import TypeNameServer
    from repro.simnet.network import Network
    from repro.smartrpc.cache import ISOLATED
    from repro.smartrpc.hints import ClosureHints
    from repro.smartrpc.runtime import SmartRpcRuntime
    from repro.workloads.hashtable import (
        HASH_NODE_TYPE_ID,
        HASH_OPS,
        HASH_TABLE_TYPE_ID,
        bind_hash_server,
        build_hash_table,
        hash_client,
        register_hash_types,
    )
    from repro.xdr.arch import SPARC32
    from repro.xdr.registry import TypeRegistry

    from repro.bench.calibration import PAPER_COST_MODEL

    def run(hints):
        network = Network(cost_model=PAPER_COST_MODEL)
        TypeNameServer(network.add_site(NAME_SERVER), TypeRegistry())
        runtimes = []
        for site_id in (CALLER, CALLEE):
            site = network.add_site(site_id)
            runtime = SmartRpcRuntime(
                network,
                site,
                SPARC32,
                resolver=TypeResolver(site, NAME_SERVER),
                allocation_strategy=ISOLATED,
                closure_hints=hints,
            )
            register_hash_types(runtime)
            runtimes.append(runtime)
        caller, callee = runtimes
        table, _ = build_hash_table(caller, list(range(num_keys)))
        bind_hash_server(callee)
        caller.import_interface(HASH_OPS)
        stub = hash_client(caller, CALLEE)
        network.stats.reset()
        start = network.clock.now
        with caller.session() as session:
            stub.lookup_many(session, table, 17, lookups)
        return (
            network.clock.now - start,
            network.stats.total_bytes,
            network.stats.entries_transferred,
        )

    hints = ClosureHints()
    hints.follow(HASH_TABLE_TYPE_ID, [])
    hints.follow(HASH_NODE_TYPE_ID, ["next"])
    rows = []
    for label, configured in (("unhinted", None), ("hinted", hints)):
        seconds, total_bytes, entries = run(configured)
        rows.append((label, seconds, total_bytes, entries))
    return ExperimentResult(
        name=(
            f"Ablation - programmer closure hints "
            f"({lookups} lookups in a {num_keys}-entry hash table)"
        ),
        headers=["configuration", "seconds", "bytes", "entries"],
        rows=rows,
        notes=[
            "the hint declares that retrieval follows only the bucket "
            "chain; prefetch waste on sparse access disappears",
        ],
    )


def ablation_adaptive_closure(
    num_keys: int = 2000,
    lookups: int = 40,
    policies: Sequence[str] = ("paper", "adaptive", "hinted", "lazy"),
    closure_order: Optional[str] = None,
) -> ExperimentResult:
    """Adaptive vs fixed closure budgets on sparse hash retrieval.

    The workload the adaptive policy targets: chained lookups in a big
    hash table touch a handful of bucket chains, so a fixed 8 KB
    closure ships mostly-untouched neighbourhoods.  The adaptive policy
    watches the shipped-vs-touched ratio per session and shrinks the
    budget until prefetch pays for itself, undercutting the paper's
    fixed 8192 B default in total bytes on the wire at the same result.
    """
    rows = []
    baseline: Dict[str, int] = {}
    for name in policies:
        world = make_world(name, closure_order=closure_order)
        run = run_hash_call(world, num_keys, lookups)
        baseline[name] = run.bytes_moved
        rows.append(
            (
                name,
                round(run.seconds, 4),
                run.callbacks,
                run.bytes_moved,
                run.prefetch_shipped,
                run.prefetch_touched,
                run.result,
            )
        )
    notes = [
        "prefetch columns count closure bytes beyond the demanded "
        "roots: shipped-but-never-touched bytes are pure waste",
    ]
    if "paper" in baseline and "adaptive" in baseline:
        saved = baseline["paper"] - baseline["adaptive"]
        notes.insert(
            0,
            f"adaptive moves {saved} fewer bytes than the fixed "
            f"8192 B default on this workload",
        )
    return ExperimentResult(
        name=(
            f"Ablation - adaptive closure budget "
            f"({lookups} lookups in a {num_keys}-entry hash table)"
        ),
        headers=[
            "policy",
            "seconds",
            "callbacks",
            "bytes",
            "prefetch shipped",
            "prefetch touched",
            "result",
        ],
        rows=rows,
        notes=notes,
    )


ALL_EXPERIMENTS = {
    "table1": table1_allocation_table,
    "fig4": fig4_methods_comparison,
    "fig5": fig5_callback_counts,
    "fig6": fig6_closure_size,
    "fig7": fig7_update_performance,
    "ablation_alloc": ablation_alloc_strategy,
    "ablation_closure": ablation_closure_order,
    "ablation_malloc": ablation_batched_malloc,
    "ablation_hints": ablation_closure_hints,
    "ablation_adaptive": ablation_adaptive_closure,
}
"""Registry used by ``python -m repro.bench``."""
