"""Raw carrier microbenchmarks: the per-byte cost of a bulk reply.

The smart-pointer runtime's dominant bulk operation is filling pages
on the caller's side of an exchange.  The marginal per-byte cost of
that fill is what the shm carrier is built to collapse: the server
pays one production copy into its data segment and the client maps
the extent in place, where TCP re-copies the body through framing,
two socket buffers and a reassembled ``bytes``.  Everything here
measures the *slope* between a small and a large reply, so every
fixed per-exchange cost (rings, wakeups, dials) cancels out.

Used by ``benchmarks/bench_xdr.py`` (the asserting benchmark) and by
``benchmarks/baseline.py`` (which records the slopes into
``BENCH_shm.json`` next to the Figure 4 crossover sweep).
"""

from __future__ import annotations

import gc
import struct
import time
from typing import Callable, Optional

from repro.simnet.message import MessageKind
from repro.transport.base import RetryPolicy
from repro.transport.shm import ShmTransport
from repro.transport.tcp import TcpTransport

from .harness import SHM, TCP

#: The two reply sizes whose timing difference isolates per-byte cost.
BULK_SMALL = 64 * 1024
BULK_BIG = 4 * 1024 * 1024

#: Wall-time floor per measurement batch.
MIN_SECONDS = 0.05

_SIZE_REQ = struct.Struct(">Q")
_SOURCE = bytes(range(256)) * (BULK_BIG // 256)

#: Patient retries: a retransmitted exchange would double-count bytes.
_PATIENT = RetryPolicy(
    timeout=5.0, backoff=2.0, max_timeout=30.0, max_attempts=4
)


def seconds_per_call(fn: Callable[[], None]) -> float:
    """Best-of-three seconds per call, timed over >= MIN_SECONDS.

    Collections are off during the timed region (the ``timeit``
    discipline): a gen-2 pass landing inside a polling handoff on a
    small host inflates an exchange by two orders of magnitude, and
    what is being measured here is the carrier, not the collector.
    """
    fn()  # warm up (dial, segment map, allocator)
    gc.collect()
    gc.disable()
    try:
        loops = 1
        while True:
            start = time.perf_counter()
            for _ in range(loops):
                fn()
            elapsed = time.perf_counter() - start
            if elapsed >= MIN_SECONDS:
                break
            loops *= 2
        best = elapsed / loops
        for _ in range(2):
            start = time.perf_counter()
            for _ in range(loops):
                fn()
            best = min(best, (time.perf_counter() - start) / loops)
        return best
    finally:
        gc.enable()


def memcpy_per_byte() -> float:
    """The floor both carriers share: one plain bulk copy."""
    source = memoryview(_SOURCE)
    scratch = bytearray(BULK_BIG)

    def copy(n: int) -> None:
        scratch[:n] = source[:n]

    small = seconds_per_call(lambda: copy(BULK_SMALL))
    big = seconds_per_call(lambda: copy(BULK_BIG))
    return (big - small) / (BULK_BIG - BULK_SMALL)


def carrier_per_byte(
    carrier: str,
    measured_hook: Optional[Callable[[Callable[[], None]], None]] = None,
) -> float:
    """Marginal per-byte seconds of a bulk reply over one carrier.

    The server's handler performs exactly one production copy on both
    carriers — ``bytes`` slicing for tcp, a ``reserve_payload`` fill
    for shm — so the difference in slope is pure carrier overhead.
    ``measured_hook`` (e.g. ``pytest-benchmark``'s pedantic runner)
    receives the big-fetch closure while the deployment is still up.
    """
    if carrier == TCP:
        server = TcpTransport("B", retry=_PATIENT)
        client = TcpTransport("A", retry=_PATIENT)
    else:
        # The segment holds many big extents so the bump allocator
        # never waits on the one-behind deferred reply acks.
        server = ShmTransport(
            "B", retry=_PATIENT, segment_size=64 * 1024 * 1024
        )
        client = ShmTransport("A", retry=_PATIENT)
    try:
        server.start()
        client.start()
        client.add_peer("B", server.address)
        server.add_peer("A", client.address)
        source = memoryview(_SOURCE)

        if carrier == SHM:
            def handler(message):
                n = _SIZE_REQ.unpack(bytes(message.payload))[0]
                payload = server.reserve_payload(n)
                payload.view[:] = source[:n]
                return payload
        else:
            def handler(message):
                n = _SIZE_REQ.unpack(bytes(message.payload))[0]
                return _SOURCE[:n]

        server.endpoint.register_handler(MessageKind.CALL, handler)

        def fetch(n: int) -> None:
            reply = client.endpoint.send(
                "B",
                MessageKind.CALL,
                _SIZE_REQ.pack(n),
                reply_kind=MessageKind.REPLY,
            )
            assert len(reply) == n

        small = seconds_per_call(lambda: fetch(BULK_SMALL))
        big = seconds_per_call(lambda: fetch(BULK_BIG))
        if measured_hook is not None:
            measured_hook(lambda: fetch(BULK_BIG))
        return (big - small) / (BULK_BIG - BULK_SMALL)
    finally:
        client.close()
        server.close()
