"""Cost-model calibration and the paper's reported curves.

The testbed was a pair of Sun SPARCstations (28.5 MIPS) on 10 Mbps
Ethernet, SunOS 4.1.1, TCP with ``TCP_NODELAY``, Sun XDR.  The
constants below translate that hardware into the simulator's charges:

* ``byte_wire`` — 10 Mbps is 0.8 us per byte;
* ``byte_codec`` — the fully eager run is flat at ~2.1 s while moving
  a ~524 KB tree (~655 KB encoded): after wire time the remainder is
  XDR encode + decode and copying on 28.5 MIPS CPUs, which pins the
  per-byte-per-side codec cost near 0.9 us;
* ``message_latency`` and ``page_fault`` — the fully lazy run needed
  ~12 s for ~33 k callbacks (Figs. 4/5), i.e. ~366 us per
  fault + request/reply pair *including* codec work on ~100 encoded
  bytes; with ``byte_codec`` fixed by the eager curve, that leaves
  ~50 us per message and ~40 us per fault.

PAPER_* below are the paper's own curves, digitised off Figures 4-7
(the paper prints no tables of numbers); EXPERIMENTS.md compares them
against what the simulation reproduces.
"""

from __future__ import annotations

from repro.simnet.clock import CostModel

PAPER_COST_MODEL = CostModel(
    message_latency=50e-6,
    byte_wire=0.8e-6,
    byte_codec=0.9e-6,
    page_fault=40e-6,
    local_access=0.35e-6,
    visit_compute=1.2e-6,
    malloc_op=6e-6,
)
"""The calibration every figure-regenerating benchmark uses."""

ACCESS_RATIOS = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
"""X axis of Figures 4, 5 and 7."""

FIG4_NODES = 32767
"""Tree size of the Figure 4/5/7 experiments."""

FIG4_CLOSURE = 8192
"""Closure size (bytes) of the proposed method in Figures 4, 5 and 7."""

FIG6_NODE_COUNTS = [16383, 32767, 65535]
"""Tree sizes swept in Figure 6."""

FIG6_CLOSURE_SIZES = [
    0,
    1024,
    2048,
    4096,
    8192,
    16384,
    24576,
    32768,
    49152,
]
"""Closure sizes (bytes) swept in Figure 6 (paper X axis: 0-50 KB)."""

FIG6_REPEATS = 10
"""Paper: "visited from the root to the leaves for 10 times"."""

# -- the paper's curves, read off the printed figures -------------------------
#
# The 1994 proceedings reproduce the plots at low resolution; values are
# digitised to roughly +-10%.  They are reference shapes, not ground
# truth to three digits.

PAPER_FIG4_EAGER = {ratio: 2.1 for ratio in ACCESS_RATIOS}
PAPER_FIG4_LAZY = {
    0.0: 0.05, 0.1: 1.2, 0.2: 2.4, 0.3: 3.6, 0.4: 4.8, 0.5: 6.0,
    0.6: 7.2, 0.7: 8.4, 0.8: 9.6, 0.9: 10.8, 1.0: 12.0,
}
PAPER_FIG4_PROPOSED = {
    0.0: 0.1, 0.1: 0.4, 0.2: 0.75, 0.3: 1.1, 0.4: 1.45, 0.5: 1.8,
    0.6: 2.1, 0.7: 2.45, 0.8: 2.8, 0.9: 3.1, 1.0: 3.4,
}

PAPER_FIG5_LAZY = {
    ratio: int(ratio * FIG4_NODES) for ratio in ACCESS_RATIOS
}
PAPER_FIG5_PROPOSED = {
    0.0: 1, 0.1: 10, 0.2: 25, 0.3: 45, 0.4: 70, 0.5: 100,
    0.6: 135, 0.7: 175, 0.8: 220, 0.9: 270, 1.0: 330,
}

PAPER_FIG6_OPTIMA = {16383: 4096, 32767: 8192, 65535: 16384}
"""Paper: optimal closure sizes were 4, 8 and 16 KB respectively."""

PAPER_FIG7_RATIO_UPDATED_TO_VISITED = 2.0
"""Paper: updated processing time is "just twice" the visit-only time."""
