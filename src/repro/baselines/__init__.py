"""The two baseline RPC systems from the paper's Section 2.

* :class:`~repro.baselines.eager.FullyEagerRpc` — the whole transitive
  closure of every pointer argument is deep-copied to the callee before
  the procedure body runs (``rpcgen``-style recursive marshalling);
* :class:`~repro.baselines.lazy.FullyLazyRpc` — pointer contents are
  fetched by a callback at each first dereference, with no eager
  closure and no sharing of pages between data.

Both run the *same* workload code as the proposed method, so the
Figure 4/5 comparison measures the transfer policies, not different
programs.
"""

from repro.baselines.eager import FullyEagerRpc
from repro.baselines.lazy import FullyLazyRpc

__all__ = ["FullyEagerRpc", "FullyLazyRpc"]
