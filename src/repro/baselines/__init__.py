"""The baseline RPC systems from the paper's Section 2.

Both baselines are now *transfer policies* of the one smart runtime
(:mod:`repro.smartrpc.policy`), so every method runs the same code
path and the Figure 4/5 comparison measures the policies, not
different programs:

* the **fully eager** method is the ``graphcopy`` policy — the whole
  transitive closure of every pointer argument is deep-copied to the
  callee before the procedure body runs (``rpcgen``-style recursive
  marshalling).  :class:`~repro.baselines.eager.FullyEagerRpc` survives
  as a convenience constructor pinned to that policy;
* the **fully lazy** method is the ``lazy`` policy — closure size 0
  with isolated placeholder pages, one callback per first dereference.
  Build it with ``SmartRpcRuntime(..., policy="lazy")``.
"""

from repro.baselines.eager import FullyEagerRpc

__all__ = ["FullyEagerRpc"]
