"""The fully lazy baseline (paper §2, "lazy method").

"Whenever a remote pointer must be dereferenced during the execution of
a callee program, the callee calls back the caller with a request to
pass the contents of the pointer."  The contents of one pointer — and
nothing else — cross the wire per callback.

Mechanically this is the smart runtime with both knobs at their lazy
extremes:

* closure size 0 — a data request carries exactly the faulted data, no
  eager prefetch;
* ``isolated`` placeholder allocation — every datum sits alone on its
  own protected page, so the first dereference of *every* pointer
  faults and issues its own callback (no page-sharing, no batching).

Fetched data is still cached (the paper's measured lazy baseline
performs one callback per first dereference; see Fig. 5, where the
callback count equals the number of visited nodes).
"""

from __future__ import annotations

from typing import Optional

from repro.memory.address_space import AddressSpace
from repro.namesvc.client import TypeResolver
from repro.transport.base import Endpoint, Transport
from repro.smartrpc.cache import ISOLATED
from repro.smartrpc.runtime import SmartRpcRuntime
from repro.xdr.arch import Architecture


class FullyLazyRpc(SmartRpcRuntime):
    """Callback-per-dereference remote pointers."""

    def __init__(
        self,
        network: Transport,
        site: Endpoint,
        arch: Architecture,
        resolver: Optional[TypeResolver] = None,
        space: Optional[AddressSpace] = None,
    ) -> None:
        super().__init__(
            network,
            site,
            arch,
            resolver=resolver,
            space=space,
            closure_size=0,
            allocation_strategy=ISOLATED,
        )
