"""The fully eager baseline (paper §2, "eager method").

Pointer arguments (and pointer results) are marshalled by deep-copying
their entire transitive closure, before the remote procedure body runs.
The callee works on a private copy in its own heap: accesses are plain
local accesses and never fault, but the whole structure crosses the
wire whether or not the body touches it — "marshaling the whole tree
and sending it to the remote procedure would terribly increase the
execution overhead" when only a portion is needed.

Copies are one-way: modifications made by the callee stay in the
callee's copy (conventional RPC input-argument semantics).

This class carries no marshalling logic of its own any more: it is the
smart runtime pinned to the ``graphcopy`` transfer policy, which routes
pointer marshalling through :mod:`repro.smartrpc.graphcopy` and
disables the data plane and coherency protocol.  It survives as a
convenience constructor; ``SmartRpcRuntime(..., policy="graphcopy")``
is the same system.
"""

from __future__ import annotations

from typing import Optional

from repro.memory.address_space import AddressSpace
from repro.namesvc.client import TypeResolver
from repro.smartrpc.runtime import SmartRpcRuntime
from repro.transport.base import Endpoint, Transport
from repro.xdr.arch import Architecture


class FullyEagerRpc(SmartRpcRuntime):
    """Conventional RPC plus rpcgen-style deep copy of pointer closures."""

    def __init__(
        self,
        network: Transport,
        site: Endpoint,
        arch: Architecture,
        resolver: Optional[TypeResolver] = None,
        space: Optional[AddressSpace] = None,
    ) -> None:
        super().__init__(
            network,
            site,
            arch,
            resolver=resolver,
            space=space,
            policy="graphcopy",
        )
