"""The fully eager baseline (paper §2, "eager method").

Pointer arguments (and pointer results) are marshalled by deep-copying
their entire transitive closure, before the remote procedure body runs.
The callee works on a private copy in its own heap: accesses are plain
local accesses and never fault, but the whole structure crosses the
wire whether or not the body touches it — "marshaling the whole tree
and sending it to the remote procedure would terribly increase the
execution overhead" when only a portion is needed.

Copies are one-way: modifications made by the callee stay in the
callee's copy (conventional RPC input-argument semantics).
"""

from __future__ import annotations

from repro.baselines import graphcopy
from repro.rpc import marshal
from repro.rpc.runtime import RpcRuntime
from repro.rpc.session import SessionState
from repro.xdr.stream import XdrDecoder, XdrEncoder


class FullyEagerRpc(RpcRuntime):
    """Conventional RPC plus rpcgen-style deep copy of pointer closures."""

    def _bind_pointer_out(self, state: SessionState) -> marshal.PointerOut:
        def pointer_out(
            encoder: XdrEncoder, pointer: int, target_type_id: str
        ) -> None:
            graphcopy.encode_graph(self, encoder, pointer, target_type_id)

        return pointer_out

    def _bind_pointer_in(self, state: SessionState) -> marshal.PointerIn:
        def pointer_in(decoder: XdrDecoder, target_type_id: str) -> int:
            return graphcopy.decode_graph(self, decoder, target_type_id)

        return pointer_in
