"""Deep-copy marshalling (moved to :mod:`repro.smartrpc.graphcopy`).

The graphcopy encoder/decoder now lives in the smart-RPC package where
the ``graphcopy`` transfer policy uses it; this module re-exports it
for code written against the old location.
"""

from repro.smartrpc.graphcopy import decode_graph, encode_graph

__all__ = ["decode_graph", "encode_graph"]
