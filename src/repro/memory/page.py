"""Pages and page protection.

Page size defaults to 4096 bytes, the SunOS 4.1.1 / SPARC page size of
the paper's testbed.
"""

from __future__ import annotations

import enum

PAGE_SIZE_DEFAULT = 4096


class Protection(enum.Enum):
    """Access rights of one page, as set through the simulated MMU.

    ``NONE`` is the state of a freshly allocated *protected page area*
    (reads and writes both fault); ``READ`` is the state of a filled
    cache page (first write faults, which is how dirtiness is detected);
    ``READ_WRITE`` is ordinary memory.
    """

    NONE = 0
    READ = 1
    READ_WRITE = 2

    def allows_read(self) -> bool:
        """Whether a load from the page succeeds."""
        return self is not Protection.NONE

    def allows_write(self) -> bool:
        """Whether a store to the page succeeds."""
        return self is Protection.READ_WRITE


class Page:
    """One page of simulated physical memory."""

    __slots__ = ("number", "size", "protection", "data")

    def __init__(
        self,
        number: int,
        size: int = PAGE_SIZE_DEFAULT,
        protection: Protection = Protection.READ_WRITE,
    ) -> None:
        self.number = number
        self.size = size
        self.protection = protection
        self.data = bytearray(size)

    @property
    def base_address(self) -> int:
        """First address of the page."""
        return self.number * self.size

    def contains(self, address: int) -> bool:
        """Whether ``address`` falls inside this page."""
        return self.base_address <= address < self.base_address + self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Page(#{self.number} {self.protection.name})"
