"""The program-facing memory accessor.

Workload code ("the remote procedure body") never touches an
:class:`~repro.memory.address_space.AddressSpace` directly; it goes
through :class:`Mem`, which plays the role of the CPU load/store path:

1. attempt the access;
2. on an access violation, deliver the fault to the registered
   user-level handler (as the kernel delivers SIGSEGV / a Mach
   exception);
3. re-execute the access.

This makes remote data *transparent* to the program: the same
``mem.load_int(...)`` works whether the page is ordinary local memory,
an already-filled cache page, or a protected page whose data is still
on another machine.  Once a page is resident, the only cost is
``CostModel.local_access`` — the paper's claim that cached remote data
costs exactly as much as local data.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.memory.address_space import AddressSpace
from repro.memory.faults import AccessViolation, FaultLoopError
from repro.simnet.clock import CostModel, SimClock
from repro.simnet.stats import StatsCollector

_MAX_FAULT_RETRIES = 8


class Mem:
    """Checked, fault-transparent access to one address space."""

    def __init__(
        self,
        space: AddressSpace,
        clock: Optional[SimClock] = None,
        cost_model: Optional[CostModel] = None,
        stats: Optional[StatsCollector] = None,
    ) -> None:
        self.space = space
        self.clock = clock
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.stats = stats
        #: Called as ``observer(address, size, is_write)`` after each
        #: successful access.  Only the program plane goes through
        #: :class:`Mem`, so this sees exactly what the procedure body
        #: touches — the smart runtime hooks it for shipped-vs-touched
        #: accounting — and never the codec's raw-plane traffic.
        self.observer: Optional[Callable[[int, int, bool], None]] = None

    # -- raw loads/stores ----------------------------------------------------

    def load(self, address: int, size: int) -> bytes:
        """Load ``size`` bytes, transparently resolving faults."""
        for _ in range(_MAX_FAULT_RETRIES):
            try:
                data = self.space.read(address, size)
            except AccessViolation as fault:
                self._deliver(fault)
                continue
            self._charge_access()
            if self.observer is not None:
                self.observer(address, size, False)
            return data
        raise FaultLoopError(
            f"load of {address:#x} in {self.space.space_id!r} still faults "
            f"after {_MAX_FAULT_RETRIES} handler invocations"
        )

    def store(self, address: int, data: bytes) -> None:
        """Store bytes, transparently resolving faults."""
        for _ in range(_MAX_FAULT_RETRIES):
            try:
                self.space.write(address, data)
            except AccessViolation as fault:
                self._deliver(fault)
                continue
            self._charge_access()
            if self.observer is not None:
                self.observer(address, len(data), True)
            return
        raise FaultLoopError(
            f"store to {address:#x} in {self.space.space_id!r} still faults "
            f"after {_MAX_FAULT_RETRIES} handler invocations"
        )

    # -- integer/float convenience --------------------------------------------

    def load_uint(
        self, address: int, size: int, byteorder: str = "big"
    ) -> int:
        """Load an unsigned integer of ``size`` bytes."""
        return int.from_bytes(self.load(address, size), byteorder)

    def store_uint(
        self, address: int, value: int, size: int, byteorder: str = "big"
    ) -> None:
        """Store an unsigned integer of ``size`` bytes."""
        self.store(address, value.to_bytes(size, byteorder))

    def load_int(self, address: int, size: int, byteorder: str = "big") -> int:
        """Load a signed (two's-complement) integer."""
        return int.from_bytes(
            self.load(address, size), byteorder, signed=True
        )

    def store_int(
        self, address: int, value: int, size: int, byteorder: str = "big"
    ) -> None:
        """Store a signed (two's-complement) integer."""
        self.store(address, value.to_bytes(size, byteorder, signed=True))

    # -- internals ------------------------------------------------------------

    def _deliver(self, fault: AccessViolation) -> None:
        handler = self.space.fault_handler
        if handler is None:
            raise fault
        if self.stats is not None:
            self.stats.page_faults += 1
        handler(fault)

    def _charge_access(self) -> None:
        if self.clock is not None:
            self.clock.advance(self.cost_model.local_access)
