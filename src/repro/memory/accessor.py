"""The program-facing memory accessor.

Workload code ("the remote procedure body") never touches an
:class:`~repro.memory.address_space.AddressSpace` directly; it goes
through :class:`Mem`, which plays the role of the CPU load/store path:

1. attempt the access;
2. on an access violation, deliver the fault to the registered
   user-level handler (as the kernel delivers SIGSEGV / a Mach
   exception);
3. re-execute the access.

This makes remote data *transparent* to the program: the same
``mem.load_int(...)`` works whether the page is ordinary local memory,
an already-filled cache page, or a protected page whose data is still
on another machine.  Once a page is resident, the only cost is
``CostModel.local_access`` — the paper's claim that cached remote data
costs exactly as much as local data.

Two mechanisms keep the *Python-level* cost of that claim honest:

* **Page access tokens.**  On the first touch of a page, ``Mem``
  caches ``(readable, writable, buffer view)`` for it; subsequent
  accesses on the page skip the checked ``AddressSpace.read``/``write``
  path entirely and slice the page buffer directly.  Tokens are
  discarded wholesale whenever the space's ``generation`` counter
  moves — ``map_region``, ``unmap_page`` and ``protect`` all bump it —
  so a coherency-driven protection flip is never missed.  Page buffers
  are mutated in place (never rebound), so a live token always sees
  current contents.
* **Access runs.**  :meth:`load_run`/:meth:`store_run` perform one
  protection check for a whole run of accesses, charge the clock once
  per modelled access (in the same float-accumulation order as the
  per-access loop they replace) and emit a single coalesced observer
  callback covering the run's byte range.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.memory.address_space import AddressSpace
from repro.memory.faults import AccessViolation, FaultLoopError
from repro.simnet.clock import CostModel, SimClock
from repro.simnet.stats import StatsCollector

_MAX_FAULT_RETRIES = 8

#: token = (readable, writable, page buffer view)
_Token = Tuple[bool, bool, memoryview]


class Mem:
    """Checked, fault-transparent access to one address space."""

    def __init__(
        self,
        space: AddressSpace,
        clock: Optional[SimClock] = None,
        cost_model: Optional[CostModel] = None,
        stats: Optional[StatsCollector] = None,
        use_tokens: bool = True,
    ) -> None:
        self.space = space
        self.clock = clock
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.stats = stats
        #: Called as ``observer(address, size, is_write)`` after each
        #: successful access.  Only the program plane goes through
        #: :class:`Mem`, so this sees exactly what the procedure body
        #: touches — the smart runtime hooks it for shipped-vs-touched
        #: accounting — and never the codec's raw-plane traffic.  A
        #: bulk run reports once for its whole byte range.
        self.observer: Optional[Callable[[int, int, bool], None]] = None
        #: Whether the token fast path is used.  Disabled, every access
        #: takes the legacy checked ``AddressSpace.read``/``write``
        #: path — the knob ``bench_hotpath.py`` uses to price the
        #: checked path against the tokenized one.
        self.use_tokens = use_tokens
        self._tokens: Dict[int, _Token] = {}
        self._token_gen = -1
        self._bill = getattr(clock, "bill", None)
        # CostModel is a frozen dataclass, so the per-access charge can
        # be snapshotted once instead of read on every fast-path access.
        self._local_access = self.cost_model.local_access

    # -- page access tokens ----------------------------------------------------

    def _token(self, page_number: int) -> Optional[_Token]:
        """The access token for a page, acquiring one when mapped.

        Callers must have synchronised ``_token_gen`` with the space's
        generation first; the cached protection bits are then valid
        because any later ``protect``/``unmap_page`` bumps the
        generation and discards the whole token table.
        """
        token = self._tokens.get(page_number)
        if token is None:
            page = self.space.page_if_mapped(page_number)
            if page is None:
                return None
            protection = page.protection
            token = (
                protection.allows_read(),
                protection.allows_write(),
                memoryview(page.data),
            )
            self._tokens[page_number] = token
        return token

    def _sync_tokens(self) -> None:
        generation = self.space.generation
        if self._token_gen != generation:
            self._tokens.clear()
            self._token_gen = generation

    # -- raw loads/stores ----------------------------------------------------

    def load(self, address: int, size: int) -> bytes:
        """Load ``size`` bytes, transparently resolving faults."""
        if self.use_tokens and size >= 0:
            space = self.space
            if self._token_gen != space.generation:
                self._tokens.clear()
                self._token_gen = space.generation
            page_size = space.page_size
            page_number = address // page_size
            token = self._tokens.get(page_number)
            if token is None:
                token = self._token(page_number)
            if token is not None and token[0]:
                offset = address - page_number * page_size
                end = offset + size
                if end <= page_size:
                    data = bytes(token[2][offset:end])
                    if self.clock is not None:
                        self.clock.advance(self._local_access)
                    if self.observer is not None:
                        self.observer(address, size, False)
                    return data
        for _ in range(_MAX_FAULT_RETRIES):
            try:
                data = self.space.read(address, size)
            except AccessViolation as fault:
                self._deliver(fault)
                continue
            self._charge_access()
            if self.observer is not None:
                self.observer(address, size, False)
            return data
        raise FaultLoopError(
            f"load of {address:#x} in {self.space.space_id!r} still faults "
            f"after {_MAX_FAULT_RETRIES} handler invocations"
        )

    def store(self, address: int, data: bytes) -> None:
        """Store bytes, transparently resolving faults."""
        size = len(data)
        if self.use_tokens:
            space = self.space
            if self._token_gen != space.generation:
                self._tokens.clear()
                self._token_gen = space.generation
            page_size = space.page_size
            page_number = address // page_size
            token = self._tokens.get(page_number)
            if token is None:
                token = self._token(page_number)
            if token is not None and token[1]:
                offset = address - page_number * page_size
                end = offset + size
                if end <= page_size:
                    token[2][offset:end] = data
                    if self.clock is not None:
                        self.clock.advance(self._local_access)
                    if self.observer is not None:
                        self.observer(address, size, True)
                    return
        for _ in range(_MAX_FAULT_RETRIES):
            try:
                self.space.write(address, data)
            except AccessViolation as fault:
                self._deliver(fault)
                continue
            self._charge_access()
            if self.observer is not None:
                self.observer(address, size, True)
            return
        raise FaultLoopError(
            f"store to {address:#x} in {self.space.space_id!r} still faults "
            f"after {_MAX_FAULT_RETRIES} handler invocations"
        )

    # -- bulk access runs ------------------------------------------------------

    def load_run(self, address: int, size: int, accesses: int = 1) -> bytes:
        """Load ``size`` bytes as one checked run of ``accesses`` accesses.

        The protection check is paid once for the whole run instead of
        once per element; the clock is still charged ``accesses``
        times (in per-access accumulation order, so simulated time is
        byte-identical to the loop this replaces) and one coalesced
        observer callback covers the run's byte range.  A run touching
        protected pages faults and retries like any access — each page
        the run covers may fault once.
        """
        if self.use_tokens and size >= 0:
            space = self.space
            if self._token_gen != space.generation:
                self._tokens.clear()
                self._token_gen = space.generation
            page_size = space.page_size
            page_number = address // page_size
            token = self._tokens.get(page_number)
            if token is None:
                token = self._token(page_number)
            if token is not None and token[0]:
                offset = address - page_number * page_size
                end = offset + size
                if end <= page_size:
                    data = bytes(token[2][offset:end])
                    bill = self._bill
                    if bill is not None and accesses > 0:
                        bill(self._local_access, accesses)
                    elif bill is None:
                        self._charge_run(accesses)
                    if self.observer is not None:
                        self.observer(address, size, False)
                    return data
        budget = _MAX_FAULT_RETRIES + max(0, size - 1) // self.space.page_size
        for _ in range(budget):
            try:
                data = self.space.read(address, size)
            except AccessViolation as fault:
                self._deliver(fault)
                continue
            self._charge_run(accesses)
            if self.observer is not None:
                self.observer(address, size, False)
            return data
        raise FaultLoopError(
            f"bulk load of {address:#x} in {self.space.space_id!r} still "
            f"faults after {budget} handler invocations"
        )

    def store_run(self, address: int, data: bytes, accesses: int = 1) -> None:
        """Store bytes as one checked run of ``accesses`` accesses."""
        size = len(data)
        if self.use_tokens:
            space = self.space
            if self._token_gen != space.generation:
                self._tokens.clear()
                self._token_gen = space.generation
            page_size = space.page_size
            page_number = address // page_size
            token = self._tokens.get(page_number)
            if token is None:
                token = self._token(page_number)
            if token is not None and token[1]:
                offset = address - page_number * page_size
                end = offset + size
                if end <= page_size:
                    token[2][offset:end] = data
                    bill = self._bill
                    if bill is not None and accesses > 0:
                        bill(self._local_access, accesses)
                    elif bill is None:
                        self._charge_run(accesses)
                    if self.observer is not None:
                        self.observer(address, size, True)
                    return
        budget = _MAX_FAULT_RETRIES + max(0, size - 1) // self.space.page_size
        for _ in range(budget):
            try:
                self.space.write(address, data)
            except AccessViolation as fault:
                self._deliver(fault)
                continue
            self._charge_run(accesses)
            if self.observer is not None:
                self.observer(address, size, True)
            return
        raise FaultLoopError(
            f"bulk store to {address:#x} in {self.space.space_id!r} still "
            f"faults after {budget} handler invocations"
        )

    # -- bulk typed access -----------------------------------------------------
    #
    # The typed helpers delegate layout questions to ``repro.xdr``;
    # those imports are deferred to call time because ``repro.xdr``
    # imports this package at module load.

    def load_array(
        self, address: int, element_spec, count: int, arch
    ) -> List[Union[int, float, bytes]]:
        """Load ``count`` identity-layout elements in one checked run.

        ``element_spec`` must have the identity property on ``arch``
        (``repro.xdr.raw.raw_identity_size``): native memory already is
        the canonical form, so the run is a single bulk copy decoded
        without a per-element accessor round.  One ``local_access`` is
        charged per element.
        """
        from repro.xdr.raw import raw_identity_size
        from repro.xdr.types import OpaqueType, ScalarType

        if count < 0:
            raise ValueError(f"negative element count {count!r}")
        unit = raw_identity_size(element_spec, arch)
        if unit is None:
            raise ValueError(
                f"{element_spec!r} has no identity layout on {arch.name}"
            )
        blob = self.load_run(address, unit * count, accesses=count)
        if isinstance(element_spec, ScalarType):
            prefix = ">" if arch.byteorder == "big" else "<"
            code = element_spec.kind.struct_code
            return list(struct.unpack(prefix + code * count, blob))
        assert isinstance(element_spec, OpaqueType)
        return [blob[i * unit : (i + 1) * unit] for i in range(count)]

    def store_array(
        self,
        address: int,
        element_spec,
        values: Sequence[Union[int, float, bytes]],
        arch,
    ) -> None:
        """Store identity-layout elements in one checked run."""
        from repro.xdr.raw import raw_identity_size
        from repro.xdr.types import OpaqueType, ScalarType

        unit = raw_identity_size(element_spec, arch)
        if unit is None:
            raise ValueError(
                f"{element_spec!r} has no identity layout on {arch.name}"
            )
        count = len(values)
        if isinstance(element_spec, ScalarType):
            prefix = ">" if arch.byteorder == "big" else "<"
            code = element_spec.kind.struct_code
            blob = struct.pack(prefix + code * count, *values)
        else:
            assert isinstance(element_spec, OpaqueType)
            for value in values:
                if not isinstance(value, bytes) or len(value) != unit:
                    raise ValueError(
                        f"opaque element of {unit} bytes given {value!r}"
                    )
            blob = b"".join(values)
        self.store_run(address, blob, accesses=count)

    def load_struct_run(
        self, address: int, spec, names: Sequence[str], arch
    ) -> tuple:
        """Load several members of the struct at ``address`` in one run.

        One checked access covers the contiguous byte span of the named
        fields (padding gaps included); one ``local_access`` is charged
        per member (per element for array members, whose values are
        returned flattened).  Values come back in ``names`` order.
        """
        from repro.xdr.view import compile_run_plan

        plan = compile_run_plan(spec, arch, tuple(names))
        blob = self.load_run(
            address + plan.start, plan.span, plan.accesses
        )
        return plan.unpack(blob)

    # -- integer/float convenience --------------------------------------------

    def load_uint(
        self, address: int, size: int, byteorder: str = "big"
    ) -> int:
        """Load an unsigned integer of ``size`` bytes."""
        return int.from_bytes(self.load(address, size), byteorder)

    def store_uint(
        self, address: int, value: int, size: int, byteorder: str = "big"
    ) -> None:
        """Store an unsigned integer of ``size`` bytes."""
        self.store(address, value.to_bytes(size, byteorder))

    def load_int(self, address: int, size: int, byteorder: str = "big") -> int:
        """Load a signed (two's-complement) integer."""
        return int.from_bytes(
            self.load(address, size), byteorder, signed=True
        )

    def store_int(
        self, address: int, value: int, size: int, byteorder: str = "big"
    ) -> None:
        """Store a signed (two's-complement) integer."""
        self.store(address, value.to_bytes(size, byteorder, signed=True))

    # -- internals ------------------------------------------------------------

    def _deliver(self, fault: AccessViolation) -> None:
        handler = self.space.fault_handler
        if handler is None:
            raise fault
        handler(fault)
        # Counted only after the handler returns: a handler that raises
        # did not resolve anything, so it must not score a fault.
        if self.stats is not None:
            self.stats.page_faults += 1

    def _charge_access(self) -> None:
        if self.clock is not None:
            self.clock.advance(self.cost_model.local_access)

    def _charge_run(self, accesses: int) -> None:
        if self.clock is None or accesses <= 0:
            return
        bill = self._bill
        if bill is not None:
            bill(self.cost_model.local_access, accesses)
            return
        cost = self.cost_model.local_access
        advance = self.clock.advance
        for _ in range(accesses):
            advance(cost)
