"""The system-controlled typed heap.

The paper assumes that all data reachable through long pointers lives
"in the heap area under the system control".  That assumption does two
jobs and this class implements both:

* every allocation carries its *data type specifier*, so the home
  runtime can walk the transitive closure of a pointer (it knows where
  the pointer fields are) and can encode the data canonically for a
  heterogeneous peer;
* an arbitrary interior address can be resolved back to the allocation
  containing it, which is how *unswizzling* turns an ordinary local
  pointer into a long pointer.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.memory.address_space import AddressSpace
from repro.memory.page import Protection

_CHUNK_PAGES = 16
_ALIGNMENT = 8


class HeapError(Exception):
    """Invalid heap usage (double free, foreign pointer, bad size)."""


@dataclass
class Allocation:
    """One live heap allocation."""

    address: int
    size: int
    type_id: str

    @property
    def end(self) -> int:
        """One past the last byte of the allocation."""
        return self.address + self.size

    def contains(self, address: int) -> bool:
        """Whether ``address`` points into this allocation."""
        return self.address <= address < self.end


class Heap:
    """A bump allocator with a per-size free list over an address space.

    Simplicity is deliberate: the paper's contribution is not the
    allocator, and a bump+freelist design keeps behaviour deterministic
    for the benchmarks while supporting the malloc/free traffic of
    ``extended_malloc``/``extended_free``.
    """

    def __init__(self, space: AddressSpace) -> None:
        self.space = space
        self._allocations: Dict[int, Allocation] = {}
        self._sorted_addresses: List[int] = []
        self._free_lists: Dict[int, List[int]] = {}
        self._bump = 0
        self._limit = 0

    # -- allocation --------------------------------------------------------

    def malloc(self, size: int, type_id: str) -> int:
        """Allocate ``size`` bytes typed ``type_id``; return the address."""
        if size <= 0:
            raise HeapError(f"bad allocation size {size!r}")
        rounded = _round_up(size, _ALIGNMENT)
        address = self._take_free(rounded)
        if address is None:
            address = self._bump_alloc(rounded)
        allocation = Allocation(address, rounded, type_id)
        self._allocations[address] = allocation
        bisect.insort(self._sorted_addresses, address)
        return address

    def free(self, address: int) -> None:
        """Release the allocation starting at ``address``."""
        allocation = self._allocations.pop(address, None)
        if allocation is None:
            raise HeapError(
                f"free of non-allocated address {address:#x} in "
                f"{self.space.space_id!r}"
            )
        index = bisect.bisect_left(self._sorted_addresses, address)
        del self._sorted_addresses[index]
        self._free_lists.setdefault(allocation.size, []).append(address)

    # -- lookup --------------------------------------------------------------

    def allocation_at(self, address: int) -> Optional[Allocation]:
        """The live allocation containing ``address``, or ``None``."""
        index = bisect.bisect_right(self._sorted_addresses, address)
        if index == 0:
            return None
        candidate = self._allocations[self._sorted_addresses[index - 1]]
        return candidate if candidate.contains(address) else None

    def owns(self, address: int) -> bool:
        """Whether ``address`` points into any live allocation."""
        return self.allocation_at(address) is not None

    @property
    def live_allocations(self) -> List[Allocation]:
        """All live allocations in address order."""
        return [self._allocations[a] for a in self._sorted_addresses]

    @property
    def live_bytes(self) -> int:
        """Total bytes currently allocated."""
        return sum(a.size for a in self._allocations.values())

    # -- internals ------------------------------------------------------------

    def _take_free(self, size: int) -> Optional[int]:
        free = self._free_lists.get(size)
        if free:
            return free.pop()
        return None

    def _bump_alloc(self, size: int) -> int:
        if self._bump + size > self._limit:
            pages = max(_CHUNK_PAGES, -(-size // self.space.page_size))
            base = self.space.map_region(pages, Protection.READ_WRITE)
            # Regions need not be contiguous with the previous chunk (the
            # cache manager maps regions in the same space), so restart the
            # bump pointer at the new chunk and abandon any old tail.
            self._bump = base
            self._limit = base + pages * self.space.page_size
            if self._bump + size > self._limit:
                raise HeapError(f"allocation of {size} bytes failed to fit")
        address = self._bump
        self._bump += size
        return address


def _round_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)
