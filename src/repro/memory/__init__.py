"""Simulated paged virtual memory with user-level fault handling.

The paper relies on two facilities that SunOS/Mach exposed to user
programs: setting page protection on regions of the address space, and
catching the access-violation exception raised when a protected page is
touched.  This package provides both over pure-Python address spaces:

* :class:`~repro.memory.address_space.AddressSpace` — a paged,
  byte-addressable space with per-page :class:`~repro.memory.page.Protection`
  and privileged (kernel-style) access that bypasses protection;
* :class:`~repro.memory.faults.AccessViolation` — the exception a
  protected access raises, carrying the fault address and access type;
* :class:`~repro.memory.accessor.Mem` — the program-facing accessor that
  transparently invokes the registered fault handler and retries, the
  way the OS restarts a faulted instruction after the handler returns;
* :class:`~repro.memory.heap.Heap` — the system-controlled *typed* heap:
  the paper assumes "all data referenced by long pointers are located in
  the heap area under the system control", which is what lets a home
  space walk transitive closures and unswizzle addresses back to typed
  long pointers.
"""

from repro.memory.accessor import Mem
from repro.memory.address_space import AddressSpace
from repro.memory.faults import AccessViolation, FaultKind, SegmentationError
from repro.memory.heap import Allocation, Heap, HeapError
from repro.memory.page import PAGE_SIZE_DEFAULT, Page, Protection

__all__ = [
    "AccessViolation",
    "AddressSpace",
    "Allocation",
    "FaultKind",
    "Heap",
    "HeapError",
    "Mem",
    "PAGE_SIZE_DEFAULT",
    "Page",
    "Protection",
    "SegmentationError",
]
