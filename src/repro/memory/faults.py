"""Memory faults.

:class:`AccessViolation` models the access-violation exception the MMU
raises on a protected access; the runtime registers a handler for it
(SunOS signal handler / Mach exception port in the original).
:class:`SegmentationError` models an access to an unmapped address — a
genuine bug, never handled transparently.
"""

from __future__ import annotations

import enum


class FaultKind(enum.Enum):
    """Which kind of access triggered the fault."""

    READ = "read"
    WRITE = "write"


class SegmentationError(Exception):
    """Access to an address that is not mapped in the address space."""

    def __init__(self, space_id: str, address: int, kind: FaultKind) -> None:
        super().__init__(
            f"segmentation fault: {kind.value} of unmapped address "
            f"{address:#x} in space {space_id!r}"
        )
        self.space_id = space_id
        self.address = address
        self.kind = kind


class AccessViolation(Exception):
    """A protected page was accessed.

    Carries everything the paper's fault handler needs: which address
    faulted (hence which page), and whether the access was a read or a
    write.  Modern kernels deliver exactly this information ("catching
    the exception, the handler determines at which location the
    exception was raised").
    """

    def __init__(
        self,
        space_id: str,
        address: int,
        kind: FaultKind,
        page_number: int,
    ) -> None:
        super().__init__(
            f"access violation: {kind.value} of protected address "
            f"{address:#x} (page {page_number}) in space {space_id!r}"
        )
        self.space_id = space_id
        self.address = address
        self.kind = kind
        self.page_number = page_number


class FaultLoopError(Exception):
    """The fault handler failed to make progress.

    Raised by :class:`repro.memory.accessor.Mem` when the same access
    keeps faulting after the handler ran — the simulated equivalent of a
    handler that returns without fixing the mapping, which on real
    hardware would spin forever re-executing the faulting instruction.
    """
