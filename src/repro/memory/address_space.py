"""Paged address spaces.

An :class:`AddressSpace` is a sparse collection of pages addressed by
integer byte addresses starting at :data:`REGION_BASE` (address 0 is
kept unmapped so that 0 can serve as the NULL pointer, as in C).

Two access planes exist, mirroring user/kernel mode:

* :meth:`read` / :meth:`write` check page protection and raise
  :class:`~repro.memory.faults.AccessViolation` — programs go through
  these (via :class:`~repro.memory.accessor.Mem`);
* :meth:`read_raw` / :meth:`write_raw` bypass protection — the runtime
  uses these to fill protected cache pages, the way the original
  runtime wrote through a second unprotected mapping / kernel copy.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.memory.faults import AccessViolation, FaultKind, SegmentationError
from repro.memory.page import PAGE_SIZE_DEFAULT, Page, Protection

REGION_BASE = PAGE_SIZE_DEFAULT  # keep page 0 unmapped: NULL stays invalid

FaultHandler = Callable[[AccessViolation], None]


class AddressSpace:
    """One process's address space on one site.

    Regions are allocated page-grain through :meth:`map_region`; within a
    region, finer allocation is the job of :class:`repro.memory.heap.Heap`
    or of the smart-RPC cache manager.
    """

    def __init__(
        self,
        space_id: str,
        page_size: int = PAGE_SIZE_DEFAULT,
    ) -> None:
        if page_size <= 0 or page_size % 8 != 0:
            raise ValueError(f"bad page size {page_size!r}")
        self.space_id = space_id
        self.page_size = page_size
        self._pages: Dict[int, Page] = {}
        self._next_page = max(1, REGION_BASE // page_size)
        self._fault_handler: Optional[FaultHandler] = None
        #: Mapping/protection generation.  Bumped whenever the page
        #: table changes shape (:meth:`map_region`, :meth:`unmap_page`)
        #: or protection (:meth:`protect`).  :class:`repro.memory
        #: .accessor.Mem` compares it to discard stale page access
        #: tokens, so a coherency-driven protection flip is never
        #: missed by the token fast path.  Read-only to callers.
        self.generation = 0
        self._mapped_cache: Optional[List[int]] = None

    # -- mapping -----------------------------------------------------------

    def map_region(
        self,
        num_pages: int,
        protection: Protection = Protection.READ_WRITE,
    ) -> int:
        """Map ``num_pages`` fresh zeroed pages; return the base address."""
        if num_pages <= 0:
            raise ValueError(f"bad region size {num_pages!r} pages")
        base_page = self._next_page
        for offset in range(num_pages):
            number = base_page + offset
            self._pages[number] = Page(number, self.page_size, protection)
        self._next_page += num_pages
        self.generation += 1
        self._mapped_cache = None
        return base_page * self.page_size

    def unmap_page(self, page_number: int) -> None:
        """Remove one page from the space (cache invalidation)."""
        if page_number not in self._pages:
            raise SegmentationError(
                self.space_id, page_number * self.page_size, FaultKind.READ
            )
        del self._pages[page_number]
        self.generation += 1
        self._mapped_cache = None

    def is_mapped(self, address: int) -> bool:
        """Whether ``address`` falls on a mapped page."""
        return (address // self.page_size) in self._pages

    def page_number(self, address: int) -> int:
        """The page an address belongs to."""
        return address // self.page_size

    def page(self, page_number: int) -> Page:
        """Look up a mapped page."""
        try:
            return self._pages[page_number]
        except KeyError:
            raise SegmentationError(
                self.space_id, page_number * self.page_size, FaultKind.READ
            ) from None

    def page_if_mapped(self, page_number: int) -> Optional[Page]:
        """The page, or ``None`` when unmapped (no fault raised)."""
        return self._pages.get(page_number)

    @property
    def mapped_pages(self) -> List[int]:
        """Sorted numbers of all mapped pages.

        The sorted list is cached and invalidated on map/unmap, so
        per-sweep callers (``validate.py``, write-back) do not re-sort
        the whole page dict on every call.  A fresh copy is returned
        each time; callers may mutate it freely.
        """
        cached = self._mapped_cache
        if cached is None:
            cached = self._mapped_cache = sorted(self._pages)
        return list(cached)

    # -- protection (the mprotect interface) --------------------------------

    def protect(self, page_number: int, protection: Protection) -> None:
        """Change one page's protection."""
        self.page(page_number).protection = protection
        self.generation += 1

    def protection_of(self, page_number: int) -> Protection:
        """Current protection of one page."""
        return self.page(page_number).protection

    def set_fault_handler(self, handler: Optional[FaultHandler]) -> None:
        """Register the user-level access-violation handler.

        The handler is invoked by :class:`repro.memory.accessor.Mem`
        (playing the role of the kernel's signal delivery), not by the
        address space itself.
        """
        self._fault_handler = handler

    @property
    def fault_handler(self) -> Optional[FaultHandler]:
        """The registered handler, if any."""
        return self._fault_handler

    # -- checked access (user mode) -----------------------------------------

    def read(self, address: int, size: int) -> bytes:
        """Protection-checked load of ``size`` bytes."""
        self._check(address, size, FaultKind.READ)
        return self.read_raw(address, size)

    def write(self, address: int, data: bytes) -> None:
        """Protection-checked store."""
        self._check(address, len(data), FaultKind.WRITE)
        self.write_raw(address, data)

    def _check(self, address: int, size: int, kind: FaultKind) -> None:
        if size < 0:
            raise ValueError(f"negative access size {size!r}")
        first = address // self.page_size
        last = (address + max(size, 1) - 1) // self.page_size
        for number in range(first, last + 1):
            page = self._pages.get(number)
            if page is None:
                raise SegmentationError(self.space_id, address, kind)
            allowed = (
                page.protection.allows_read()
                if kind is FaultKind.READ
                else page.protection.allows_write()
            )
            if not allowed:
                fault_address = max(address, page.base_address)
                raise AccessViolation(
                    self.space_id, fault_address, kind, number
                )

    # -- raw access (kernel mode) --------------------------------------------

    def read_raw(self, address: int, size: int) -> bytes:
        """Load bytes ignoring protection (runtime/kernel plane)."""
        # Fast path: the access stays within one page.
        page = self._pages.get(address // self.page_size)
        if page is not None:
            offset = address - page.base_address
            if offset + size <= self.page_size:
                return bytes(page.data[offset : offset + size])
        out = bytearray()
        cursor = address
        remaining = size
        while remaining > 0:
            page = self.page(cursor // self.page_size)
            offset = cursor - page.base_address
            chunk = min(remaining, self.page_size - offset)
            out += page.data[offset : offset + chunk]
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def write_raw(self, address: int, data: bytes) -> None:
        """Store bytes ignoring protection (runtime/kernel plane)."""
        # Fast path: the access stays within one page.
        page = self._pages.get(address // self.page_size)
        if page is not None:
            offset = address - page.base_address
            if offset + len(data) <= self.page_size:
                page.data[offset : offset + len(data)] = data
                return
        cursor = address
        view = memoryview(data)
        while view.nbytes > 0:
            page = self.page(cursor // self.page_size)
            offset = cursor - page.base_address
            chunk = min(view.nbytes, self.page_size - offset)
            page.data[offset : offset + chunk] = view[:chunk]
            cursor += chunk
            view = view[chunk:]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AddressSpace({self.space_id!r}, {len(self._pages)} pages "
            f"of {self.page_size}B)"
        )
