"""Per-site vector clocks for causal trace stamping.

Every :class:`~repro.transport.base.Endpoint` owns one
:class:`VectorClock`.  Each traced protocol event *ticks* the owning
site's component and records the resulting snapshot; each exchange
piggybacks the sender's snapshot on the frame and the receiver *merges*
it before the handler runs (and the sender merges the receiver's
snapshot back off the reply).  The recorded stamps therefore encode the
genuine happens-before relation of the run: event ``a`` happened before
event ``b`` iff ``a``'s clock is pointwise ≤ ``b``'s and the two
differ.  The offline sanitizer (:mod:`repro.analysis.sanitizer`)
rebuilds the causal order from the stamps alone, so merged multi-process
traces need no synchronized wall clocks.

Clocks are thread-safe: the TCP transport dispatches handlers on worker
threads, and the pipeline touches the trace from its prefetch executor.
"""

from __future__ import annotations

import threading
from typing import Dict, Mapping, Optional

__all__ = [
    "VectorClock",
    "concurrent",
    "dominates",
    "happens_before",
]

#: A clock snapshot: site id -> number of local ticks observed.
ClockMap = Dict[str, int]


class VectorClock:
    """One site's vector clock plus its per-session event sequences."""

    def __init__(self, site_id: str) -> None:
        self.site_id = site_id
        self._clock: ClockMap = {}
        self._seqs: Dict[Optional[str], int] = {}
        self._lock = threading.Lock()

    def tick(self) -> ClockMap:
        """Advance this site's component; return the new snapshot."""
        with self._lock:
            self._clock[self.site_id] = self._clock.get(self.site_id, 0) + 1
            return dict(self._clock)

    def merge(self, other: Optional[Mapping[str, int]]) -> None:
        """Fold a received snapshot in (pointwise maximum)."""
        if not other:
            return
        with self._lock:
            for site, count in other.items():
                if count > self._clock.get(site, 0):
                    self._clock[site] = int(count)

    def snapshot(self) -> ClockMap:
        """The current clock, as a plain dict (safe to piggyback)."""
        with self._lock:
            return dict(self._clock)

    def next_seq(self, session: Optional[str] = None) -> int:
        """The next per-(site, session) monotonic event sequence."""
        with self._lock:
            value = self._seqs.get(session, -1) + 1
            self._seqs[session] = value
            return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VectorClock({self.site_id!r}, {self.snapshot()!r})"


def dominates(a: Mapping[str, int], b: Mapping[str, int]) -> bool:
    """Whether ``a`` is pointwise ≥ ``b``."""
    return all(a.get(site, 0) >= count for site, count in b.items())


def happens_before(a: Mapping[str, int], b: Mapping[str, int]) -> bool:
    """Whether the event stamped ``a`` happened before the one stamped
    ``b``: ``a ≤ b`` pointwise and the stamps differ."""
    return dict(a) != dict(b) and dominates(b, a)


def concurrent(a: Mapping[str, int], b: Mapping[str, int]) -> bool:
    """Whether two stamps are causally unordered."""
    return (
        dict(a) != dict(b)
        and not dominates(b, a)
        and not dominates(a, b)
    )
