"""Process hosts: one address space per OS process.

``python -m repro.transport serve`` runs one of these.  A *space host*
owns a full smart-RPC address space — runtime, heap, allocation table,
bound workload servers — attached to a :class:`TcpTransport`, and
registers itself with the site directory so peers can find it.  A
*registry host* (``--serve-registry``) instead hosts the shared name
services every deployment needs exactly once: the
:class:`~repro.namesvc.directory.SiteDirectory` and the
:class:`~repro.namesvc.server.TypeNameServer`.

The host prints one ``READY site=<id> addr=<host>:<port>`` line to
stdout once it is serving — spawners wait for that line — then blocks
until a signal (SIGINT/SIGTERM) or a ``SHUTDOWN`` control message
arrives.  While blocked it heartbeats the directory so liveness
information stays fresh, and — when the runtime's policy sets an
``orphan_grace`` — feeds the directory's liveness ages to the orphan
reaper so sessions grounded at (or joined by) a dead peer are
discarded (DESIGN.md §12).  On the way out it deregisters, dumps its
recorded trace (``--trace``) and closes the transport.

Two control exchanges make hosts observable and drivable without
wall-clock sleeps:

* ``STATUS`` is a *readiness barrier*: the request names the condition
  to wait for (``min_heartbeats`` successful directory heartbeats,
  ``min_reaped`` orphaned sessions reaped, a ``max_wait`` bound) and
  the reply reports the host's counters plus its open-session and
  invariant-error counts.  Tests block on it instead of sleeping.
* ``RUN_SESSION`` asks a space host to play *ground*: it runs the
  shared crash-matrix scenario (:func:`run_crash_session`) against the
  named peers and reports completed/aborted.  Combined with crash
  fault injection this drives caller-crash cells from outside the
  dying process.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.namesvc.client import TypeResolver
from repro.namesvc.directory import DirectoryClient, SiteDirectory
from repro.namesvc.server import TypeNameServer
from repro.rpc.runtime import RpcRuntime
from repro.simnet.message import Message, MessageKind
from repro.simnet.stats import StatsCollector
from repro.simnet.tracefmt import save_trace
from repro.smartrpc.errors import SessionAbortedError
from repro.smartrpc.policy import POLICY_NAMES, make_policy
from repro.smartrpc.runtime import SmartRpcRuntime, SmartSessionState
from repro.smartrpc.validate import session_diagnostics
from repro.transport.base import Endpoint, RetryPolicy, TransportError
from repro.transport.shm import (
    DEFAULT_RING_SLOTS,
    DEFAULT_SEGMENT_SIZE,
    ShmTransport,
    purge_stale_segments,
)
from repro.transport.tcp import FaultInjector, TcpTransport
from repro.workloads.hashtable import bind_hash_server, register_hash_types
from repro.workloads.linked_list import bind_list_server, register_list_types
from repro.workloads.traversal import (
    TREE_EXPOSE,
    TREE_OPS,
    bind_tree_expose,
    bind_tree_server,
    tree_expose_client,
)
from repro.workloads.trees import (
    TREE_NODE_TYPE_ID,
    build_complete_tree,
    register_tree_types,
    tree_node_spec,
)
from repro.xdr.arch import SPARC32, Architecture
from repro.xdr.registry import TypeRegistry
from repro.xdr.stream import XdrDecoder, XdrEncoder
from repro.xdr.view import StructView

#: Default site id of the registry host (directory + type name server).
REGISTRY_SITE = "NS"

#: Carriers a host can serve on.  ``tcp`` listens on a socket; ``shm``
#: listens on a shared-memory segment (same-machine deployments), and
#: its "address" is the listener segment name published to the
#: directory as a host string with port 0.
TRANSPORTS = ("tcp", "shm")


def _make_transport(
    transport: str,
    site_id: str,
    host: str,
    port: int,
    *,
    stats: Optional[StatsCollector] = None,
    clock=None,
    peers=None,
    directory_site: Optional[str] = None,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultInjector] = None,
    listen: bool = True,
    segment_size: int = DEFAULT_SEGMENT_SIZE,
    ring_slots: int = DEFAULT_RING_SLOTS,
):
    """Build (and start) the chosen carrier for one host process."""
    if transport == "shm":
        # Reap segments abandoned by crashed hosts (``os._exit`` never
        # runs ``close()``) before creating fresh ones.
        purge_stale_segments()
        built = ShmTransport(
            site_id,
            stats=stats,
            clock=clock,
            peers=peers,
            directory_site=directory_site,
            retry=retry,
            faults=faults,
            listen=listen,
            segment_size=segment_size,
            ring_slots=ring_slots,
        )
    elif transport == "tcp":
        built = TcpTransport(
            site_id,
            host,
            port,
            stats=stats,
            clock=clock,
            peers=peers,
            directory_site=directory_site,
            retry=retry,
            faults=faults,
            listen=listen,
        )
    else:
        raise TransportError(
            f"unknown transport {transport!r} (expected one of "
            f"{', '.join(TRANSPORTS)})"
        )
    built.start()
    return built

#: Seconds between directory heartbeats while a space host is serving.
HEARTBEAT_INTERVAL = 2.0

#: Grace period after a shutdown trigger so in-flight replies (the
#: SHUTDOWN_ACK itself) drain before the transport closes.
_DRAIN_SECONDS = 0.2

PROPOSED = "proposed"
FULLY_EAGER = "eager"
FULLY_LAZY = "lazy"
#: Historical method names plus every transfer-policy preset.  The
#: historical ``eager`` maps to the ``graphcopy`` policy (the §2 deep
#: copy baseline this flag always meant); any policy name is accepted
#: directly.
METHODS = tuple(
    [FULLY_EAGER, FULLY_LAZY, PROPOSED]
    + sorted(set(POLICY_NAMES) - {"lazy"})
)


def _method_policy(method: str, closure_size: int):
    """Map a host ``--method`` to a transfer policy."""
    if method == PROPOSED:
        return make_policy("paper", closure_size=closure_size)
    if method == FULLY_EAGER:
        return make_policy("graphcopy")
    if method in POLICY_NAMES:
        return make_policy(method)
    raise ValueError(f"unknown method {method!r}")


# -- control-plane wire formats (STATUS / RUN_SESSION) -----------------------

#: RUN_SESSION reply statuses.
RUN_COMPLETED = 0
RUN_ABORTED = 1
RUN_ERROR = 2

#: The value :func:`run_crash_session` writes into every peer's exposed
#: root node — survivors check for it to prove the write-back landed
#: (commit crossed) or did not (crash before commit rolled back).
CRASH_SCENARIO_MARK = 555


def encode_status_request(
    min_heartbeats: int = 0, min_reaped: int = 0, max_wait: float = 0.0
) -> bytes:
    """Payload of one STATUS barrier request."""
    encoder = XdrEncoder()
    encoder.pack_uint32(min_heartbeats)
    encoder.pack_uint32(min_reaped)
    encoder.pack_double(max_wait)
    return encoder.getvalue()


def decode_status_reply(payload: bytes) -> Dict[str, int]:
    """Parse a STATUS reply into its counter mapping."""
    decoder = XdrDecoder(payload)
    status = {
        "heartbeats": decoder.unpack_uint32(),
        "orphans_reaped": decoder.unpack_uint32(),
        "open_sessions": decoder.unpack_uint32(),
        "invariant_errors": decoder.unpack_uint32(),
    }
    decoder.expect_done()
    return status


def query_status(
    endpoint: Endpoint,
    site: str,
    *,
    min_heartbeats: int = 0,
    min_reaped: int = 0,
    max_wait: float = 0.0,
    timeout: Optional[float] = None,
) -> Dict[str, int]:
    """Block until ``site`` reaches the named condition; return counters.

    This is the readiness barrier tests use instead of wall-clock
    sleeps: the *host* blocks the exchange until it has performed
    ``min_heartbeats`` directory heartbeats and reaped ``min_reaped``
    orphaned sessions (or ``max_wait`` elapses), so the caller resumes
    the instant the condition holds.  Keep ``max_wait`` below the
    sender's retry schedule (about 11 s under the default
    :class:`RetryPolicy`) or the exchange gives up first; retransmits
    while the barrier blocks are parked on the in-flight handler, not
    re-run.
    """
    reply = endpoint.send(
        site,
        MessageKind.STATUS,
        encode_status_request(min_heartbeats, min_reaped, max_wait),
        reply_kind=MessageKind.STATUS_REPLY,
        timeout=timeout,
    )
    return decode_status_reply(reply)


def encode_run_session(peers: List[str]) -> bytes:
    """Payload of one RUN_SESSION request (the ground's callee list)."""
    encoder = XdrEncoder()
    encoder.pack_uint32(len(peers))
    for peer in peers:
        encoder.pack_string(peer)
    return encoder.getvalue()


def decode_run_reply(payload: bytes) -> Tuple[int, str]:
    """Parse a RUN_SESSION reply into ``(status, detail)``."""
    decoder = XdrDecoder(payload)
    status = decoder.unpack_uint32()
    detail = decoder.unpack_string()
    decoder.expect_done()
    return status, detail


def run_crash_session(runtime: SmartRpcRuntime, peers: List[str]) -> Dict[str, int]:
    """The shared crash-matrix scenario: one ground session over ``peers``.

    Every step is one column of the crash matrix, in order:

    1. *call* — a ``tree_root`` CALL to each peer;
    2. *fault-fill* — dereferencing each returned pointer faults and
       pulls the node (DATA_REQUEST), then the write dirties it;
    3. *activity-transfer* — a ``tree_checksum`` CALL to each peer,
       carrying the modified-data-set piggyback;
    4. *writeback-prepare* / *writeback-commit* — the two-phase
       session end, one prepare+commit pair per dirty home.

    The test process and the RUN_SESSION handler both run exactly this
    function, so caller-crash and callee-crash cells exercise the same
    message sequence.  Returns each peer's mid-session checksum
    (diagnostic only — survivors judge the outcome by re-reading their
    own heaps after the session ends or aborts).
    """
    spec = runtime.resolver.resolve(TREE_NODE_TYPE_ID)
    checksums: Dict[str, int] = {}
    with runtime.session() as session:
        views = {}
        for peer in peers:
            pointer = tree_expose_client(runtime, peer).tree_root(session)
            views[peer] = StructView(
                runtime.mem, pointer, spec, runtime.arch
            )
        for peer in peers:
            views[peer].set(
                "data", CRASH_SCENARIO_MARK.to_bytes(8, "big")
            )
        for peer in peers:
            checksums[peer] = tree_expose_client(
                runtime, peer
            ).tree_checksum(session)
    return checksums


def make_space(
    site_id: str,
    method: str = PROPOSED,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    registry: Optional[Tuple[str, int]] = None,
    registry_site: str = REGISTRY_SITE,
    arch: Architecture = SPARC32,
    stats: Optional[StatsCollector] = None,
    clock=None,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultInjector] = None,
    listen: bool = True,
    closure_size: int = 8192,
    expose_tree: int = 0,
    session_deadline: float = 0.0,
    exchange_timeout: float = 0.0,
    orphan_grace: float = 0.0,
    transport: str = "tcp",
    segment_size: int = DEFAULT_SEGMENT_SIZE,
    ring_slots: int = DEFAULT_RING_SLOTS,
):
    """Build one carrier-attached address space: transport plus runtime.

    The runtime mirrors what :func:`repro.bench.harness.make_world`
    builds per site — workload types registered, tree interface
    imported, workload servers bound — so a space host can play caller
    or callee for any existing experiment.  The transport (``tcp`` or
    ``shm``) is started; directory registration is the caller's
    business (spawned hosts register, in-process test transports often
    use static peers).
    """
    if transport == "shm" and isinstance(registry, tuple):
        registry = registry[0]  # the directory's listener segment name
    peers = {registry_site: registry} if registry is not None else None
    built = _make_transport(
        transport,
        site_id,
        host,
        port,
        stats=stats,
        clock=clock,
        peers=peers,
        directory_site=registry_site if registry is not None else None,
        retry=retry,
        faults=faults,
        listen=listen,
        segment_size=segment_size,
        ring_slots=ring_slots,
    )
    resolver = TypeResolver(
        built.endpoint,
        registry_site if registry is not None else None,
    )
    policy = _method_policy(method, closure_size)
    # Fault-tolerance knobs (DESIGN.md §12); the zero defaults leave
    # the policy exactly as its preset built it.
    policy.session_deadline = session_deadline
    policy.exchange_timeout = exchange_timeout
    policy.orphan_grace = orphan_grace
    runtime: RpcRuntime = SmartRpcRuntime(
        built,
        built.endpoint,
        arch,
        resolver=resolver,
        policy=policy,
    )
    register_tree_types(runtime)
    register_hash_types(runtime)
    register_list_types(runtime)
    runtime.import_interface(TREE_OPS)
    runtime.import_interface(TREE_EXPOSE)
    bind_tree_server(runtime)
    bind_hash_server(runtime)
    bind_list_server(runtime)
    if expose_tree:
        # This space homes a tree of its own and hands out the root
        # pointer, so remote grounds can dereference, modify and — at
        # session end — write back into this process's heap.
        bind_tree_expose(runtime, build_complete_tree(runtime, expose_tree))
    return built, runtime


class ProcessHost:
    """One serving OS process: an address space or the registry."""

    def __init__(
        self,
        site_id: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[Tuple[str, int]] = None,
        registry_site: str = REGISTRY_SITE,
        serve_registry: bool = False,
        method: str = PROPOSED,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        trace_path: Optional[str] = None,
        faults: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
        expose_tree: int = 0,
        session_deadline: float = 0.0,
        exchange_timeout: float = 0.0,
        orphan_grace: float = 0.0,
        transport: str = "tcp",
        segment_size: int = DEFAULT_SEGMENT_SIZE,
        ring_slots: int = DEFAULT_RING_SLOTS,
    ) -> None:
        if not serve_registry and registry is None:
            raise TransportError(
                "a space host needs --registry (HOST:PORT, or the "
                "registry's segment name under --transport shm) to "
                "find peers"
            )
        self.site_id = site_id
        self.serve_registry = serve_registry
        self.heartbeat_interval = heartbeat_interval
        self.trace_path = trace_path
        self._stop = threading.Event()
        self._stats = StatsCollector(trace=trace_path is not None)
        #: STATUS-barrier counters, guarded by ``_status_cond`` so the
        #: blocking STATUS handler can wait for them to advance.
        self._status_cond = threading.Condition()
        self.heartbeats = 0
        self.orphans_reaped = 0
        self.runtime: Optional[RpcRuntime] = None
        self.directory: Optional[SiteDirectory] = None
        self._directory_client: Optional[DirectoryClient] = None
        if serve_registry:
            self.transport = _make_transport(
                transport,
                site_id,
                host,
                port,
                stats=self._stats,
                retry=retry,
                segment_size=segment_size,
                ring_slots=ring_slots,
            )
            self.directory = SiteDirectory(self.transport.endpoint)
            registry_types = TypeRegistry()
            server = TypeNameServer(self.transport.endpoint, registry_types)
            # Publish the standard workload types so spaces may resolve
            # them over the wire instead of registering locally.
            server.publish(TREE_NODE_TYPE_ID, tree_node_spec())
        else:
            self.transport, self.runtime = make_space(
                site_id,
                method,
                host=host,
                port=port,
                registry=registry,
                registry_site=registry_site,
                stats=self._stats,
                retry=retry,
                faults=faults,
                expose_tree=expose_tree,
                session_deadline=session_deadline,
                exchange_timeout=exchange_timeout,
                orphan_grace=orphan_grace,
                transport=transport,
                segment_size=segment_size,
                ring_slots=ring_slots,
            )
            self._directory_client = DirectoryClient(
                self.transport.endpoint, registry_site
            )
            self.transport.endpoint.register_handler(
                MessageKind.RUN_SESSION, self._handle_run_session
            )
        self.transport.endpoint.register_handler(
            MessageKind.SHUTDOWN, self._handle_shutdown
        )
        self.transport.endpoint.register_handler(
            MessageKind.STATUS, self._handle_status
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound listening address.

        A shm host's "address" is its listener segment name; it is
        normalised to ``(name, 0)`` so directory registration and the
        READY line keep the one ``host:port`` shape everywhere.
        """
        address = self.transport.address
        assert address is not None
        if isinstance(address, tuple):
            return address
        return (address, 0)

    def _handle_shutdown(self, message: Message) -> bytes:
        self._stop.set()
        return b""

    def _handle_status(self, message: Message) -> bytes:
        """The readiness barrier: block until the counters reach the ask.

        Runs on a transport worker thread, so blocking here never
        stalls the serve loop (whose heartbeats advance the counters)
        or other exchanges; retransmissions of this request park on
        the in-flight handler instead of re-entering it.
        """
        decoder = XdrDecoder(message.payload)
        min_heartbeats = decoder.unpack_uint32()
        min_reaped = decoder.unpack_uint32()
        max_wait = decoder.unpack_double()
        decoder.expect_done()
        deadline = time.monotonic() + max_wait
        with self._status_cond:
            while (
                self.heartbeats < min_heartbeats
                or self.orphans_reaped < min_reaped
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._status_cond.wait(remaining):
                    break
            heartbeats = self.heartbeats
            reaped = self.orphans_reaped
        open_sessions = 0
        invariant_errors = 0
        if isinstance(self.runtime, SmartRpcRuntime):
            for state in list(self.runtime._sessions.values()):
                if not isinstance(state, SmartSessionState):
                    continue
                open_sessions += 1
                invariant_errors += sum(
                    1
                    for diagnostic in session_diagnostics(
                        self.runtime, state
                    )
                    if diagnostic.is_error
                )
        encoder = XdrEncoder()
        encoder.pack_uint32(heartbeats)
        encoder.pack_uint32(reaped)
        encoder.pack_uint32(open_sessions)
        encoder.pack_uint32(invariant_errors)
        return encoder.getvalue()

    def _handle_run_session(self, message: Message) -> bytes:
        """Play ground: run the crash-matrix scenario against peers."""
        decoder = XdrDecoder(message.payload)
        count = decoder.unpack_uint32()
        peers = [decoder.unpack_string() for _ in range(count)]
        decoder.expect_done()
        assert isinstance(self.runtime, SmartRpcRuntime)
        encoder = XdrEncoder()
        try:
            checksums = run_crash_session(self.runtime, peers)
            encoder.pack_uint32(RUN_COMPLETED)
            encoder.pack_string(
                ",".join(
                    f"{peer}={total}"
                    for peer, total in sorted(checksums.items())
                )
            )
        except SessionAbortedError as exc:
            encoder.pack_uint32(RUN_ABORTED)
            encoder.pack_string(exc.reason or str(exc))
        except Exception as exc:  # a broken scenario must still reply
            encoder.pack_uint32(RUN_ERROR)
            encoder.pack_string(f"{type(exc).__name__}: {exc}")
        return encoder.getvalue()

    def request_stop(self) -> None:
        """Ask the serve loop to exit (signal handlers land here)."""
        self._stop.set()

    def serve_forever(self) -> None:
        """Register, announce readiness, heartbeat until told to stop."""
        if self._directory_client is not None:
            bound_host, bound_port = self.address
            self._directory_client.register(bound_host, bound_port)
        bound_host, bound_port = self.address
        print(
            f"READY site={self.site_id} addr={bound_host}:{bound_port}",
            flush=True,
        )
        try:
            while not self._stop.wait(self.heartbeat_interval):
                if self._directory_client is None:
                    continue
                reaped = 0
                try:
                    self._directory_client.heartbeat()
                    runtime = self.runtime
                    if (
                        isinstance(runtime, SmartRpcRuntime)
                        and runtime.policy.orphan_grace > 0
                    ):
                        # The directory's liveness ages are the failure
                        # detector: a peer past the grace (or missing
                        # entirely) is dead, and every session it took
                        # part in is reaped.
                        ages = self._directory_client.liveness_ages()
                        reaped = len(runtime.reap_orphans(ages))
                except TransportError:
                    # A dead registry should not kill a serving
                    # space; peers holding our address still work.
                    continue
                with self._status_cond:
                    self.heartbeats += 1
                    self.orphans_reaped += reaped
                    self._status_cond.notify_all()
        finally:
            time.sleep(_DRAIN_SECONDS)
            self.close()

    def close(self) -> None:
        """Deregister, dump the trace, release the transport."""
        if self._directory_client is not None:
            try:
                self._directory_client.deregister()
            except TransportError:
                pass
            self._directory_client = None
        if self.trace_path is not None:
            save_trace(self._stats, self.trace_path)
            self.trace_path = None
        self.transport.close()


def parse_address(text: str) -> Tuple[str, int]:
    """Parse a ``HOST:PORT`` CLI argument."""
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"bad address {text!r} (expected HOST:PORT)")
    return host, int(port)


def _registry_argument(args):
    """The --registry value: ``(host, port)`` on tcp, a bare listener
    segment name on shm (a ``name:0`` form is accepted too)."""
    if args.registry is None:
        return None
    if getattr(args, "transport", "tcp") == "shm":
        name, _, port = args.registry.rpartition(":")
        return name if name and port.isdigit() else args.registry
    return parse_address(args.registry)


def _control_transport(args, role: str):
    """A non-listening transport for ping/status/shutdown commands."""
    return _make_transport(
        getattr(args, "transport", "tcp"),
        f"_{role}-{os.getpid()}",
        "127.0.0.1",
        0,
        listen=False,
        peers={args.registry_site: _registry_argument(args)},
        directory_site=args.registry_site,
    )


def run_serve(args) -> int:
    """Entry point for ``python -m repro.transport serve``."""
    registry = _registry_argument(args)
    faults = (
        FaultInjector.parse(args.fault) if args.fault is not None else None
    )
    host = ProcessHost(
        args.site,
        host=args.host,
        port=args.port,
        registry=registry,
        registry_site=args.registry_site,
        serve_registry=args.serve_registry,
        method=args.method,
        heartbeat_interval=args.heartbeat,
        trace_path=args.trace,
        faults=faults,
        expose_tree=args.expose_tree,
        session_deadline=args.session_deadline,
        exchange_timeout=args.exchange_timeout,
        orphan_grace=args.orphan_grace,
        transport=args.transport,
        segment_size=args.segment_size,
        ring_slots=args.ring_slots,
    )
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: host.request_stop())
    host.serve_forever()
    return 0


def run_ping(args) -> int:
    """Entry point for ``python -m repro.transport ping``."""
    transport = _control_transport(args, "ping")
    try:
        rtt = transport.ping(args.site, timeout=args.timeout)
        print(f"{args.site}: {rtt * 1000:.3f} ms")
        return 0
    except TransportError as exc:
        print(f"ping failed: {exc}", file=sys.stderr)
        return 1
    finally:
        transport.close()


def run_status(args) -> int:
    """Entry point for ``python -m repro.transport status``."""
    transport = _control_transport(args, "status")
    try:
        status = query_status(
            transport.endpoint,
            args.site,
            min_heartbeats=args.min_heartbeats,
            min_reaped=args.min_reaped,
            max_wait=args.max_wait,
        )
        print(
            f"{args.site}: heartbeats={status['heartbeats']} "
            f"reaped={status['orphans_reaped']} "
            f"open-sessions={status['open_sessions']} "
            f"invariant-errors={status['invariant_errors']}"
        )
        return 0
    except TransportError as exc:
        print(f"status failed: {exc}", file=sys.stderr)
        return 1
    finally:
        transport.close()


def run_shutdown(args) -> int:
    """Entry point for ``python -m repro.transport shutdown``."""
    transport = _control_transport(args, "control")
    try:
        transport.endpoint.send(
            args.site,
            MessageKind.SHUTDOWN,
            b"",
            reply_kind=MessageKind.SHUTDOWN_ACK,
        )
        print(f"{args.site}: shutting down")
        return 0
    except TransportError as exc:
        print(f"shutdown failed: {exc}", file=sys.stderr)
        return 1
    finally:
        transport.close()
