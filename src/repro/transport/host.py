"""Process hosts: one address space per OS process.

``python -m repro.transport serve`` runs one of these.  A *space host*
owns a full smart-RPC address space — runtime, heap, allocation table,
bound workload servers — attached to a :class:`TcpTransport`, and
registers itself with the site directory so peers can find it.  A
*registry host* (``--serve-registry``) instead hosts the shared name
services every deployment needs exactly once: the
:class:`~repro.namesvc.directory.SiteDirectory` and the
:class:`~repro.namesvc.server.TypeNameServer`.

The host prints one ``READY site=<id> addr=<host>:<port>`` line to
stdout once it is serving — spawners wait for that line — then blocks
until a signal (SIGINT/SIGTERM) or a ``SHUTDOWN`` control message
arrives.  While blocked it heartbeats the directory so liveness
information stays fresh.  On the way out it deregisters, dumps its
recorded trace (``--trace``) and closes the transport.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
import time
from typing import Optional, Tuple

from repro.namesvc.client import TypeResolver
from repro.namesvc.directory import DirectoryClient, SiteDirectory
from repro.namesvc.server import TypeNameServer
from repro.rpc.runtime import RpcRuntime
from repro.simnet.message import Message, MessageKind
from repro.simnet.stats import StatsCollector
from repro.simnet.tracefmt import save_trace
from repro.smartrpc.policy import POLICY_NAMES, make_policy
from repro.smartrpc.runtime import SmartRpcRuntime
from repro.transport.base import RetryPolicy, TransportError
from repro.transport.tcp import FaultInjector, TcpTransport
from repro.workloads.hashtable import bind_hash_server, register_hash_types
from repro.workloads.linked_list import bind_list_server, register_list_types
from repro.workloads.traversal import (
    TREE_EXPOSE,
    TREE_OPS,
    bind_tree_expose,
    bind_tree_server,
)
from repro.workloads.trees import (
    TREE_NODE_TYPE_ID,
    build_complete_tree,
    register_tree_types,
    tree_node_spec,
)
from repro.xdr.arch import SPARC32, Architecture
from repro.xdr.registry import TypeRegistry

#: Default site id of the registry host (directory + type name server).
REGISTRY_SITE = "NS"

#: Seconds between directory heartbeats while a space host is serving.
HEARTBEAT_INTERVAL = 2.0

#: Grace period after a shutdown trigger so in-flight replies (the
#: SHUTDOWN_ACK itself) drain before the transport closes.
_DRAIN_SECONDS = 0.2

PROPOSED = "proposed"
FULLY_EAGER = "eager"
FULLY_LAZY = "lazy"
#: Historical method names plus every transfer-policy preset.  The
#: historical ``eager`` maps to the ``graphcopy`` policy (the §2 deep
#: copy baseline this flag always meant); any policy name is accepted
#: directly.
METHODS = tuple(
    [FULLY_EAGER, FULLY_LAZY, PROPOSED]
    + sorted(set(POLICY_NAMES) - {"lazy"})
)


def _method_policy(method: str, closure_size: int):
    """Map a host ``--method`` to a transfer policy."""
    if method == PROPOSED:
        return make_policy("paper", closure_size=closure_size)
    if method == FULLY_EAGER:
        return make_policy("graphcopy")
    if method in POLICY_NAMES:
        return make_policy(method)
    raise ValueError(f"unknown method {method!r}")


def make_space(
    site_id: str,
    method: str = PROPOSED,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    registry: Optional[Tuple[str, int]] = None,
    registry_site: str = REGISTRY_SITE,
    arch: Architecture = SPARC32,
    stats: Optional[StatsCollector] = None,
    clock=None,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultInjector] = None,
    listen: bool = True,
    closure_size: int = 8192,
    expose_tree: int = 0,
) -> Tuple[TcpTransport, RpcRuntime]:
    """Build one TCP-attached address space: transport plus runtime.

    The runtime mirrors what :func:`repro.bench.harness.make_world`
    builds per site — workload types registered, tree interface
    imported, workload servers bound — so a space host can play caller
    or callee for any existing experiment.  The transport is started;
    directory registration is the caller's business (spawned hosts
    register, in-process test transports often use static peers).
    """
    peers = {registry_site: registry} if registry is not None else None
    transport = TcpTransport(
        site_id,
        host,
        port,
        stats=stats,
        clock=clock,
        peers=peers,
        directory_site=registry_site if registry is not None else None,
        retry=retry,
        faults=faults,
        listen=listen,
    )
    transport.start()
    resolver = TypeResolver(
        transport.endpoint,
        registry_site if registry is not None else None,
    )
    runtime: RpcRuntime = SmartRpcRuntime(
        transport,
        transport.endpoint,
        arch,
        resolver=resolver,
        policy=_method_policy(method, closure_size),
    )
    register_tree_types(runtime)
    register_hash_types(runtime)
    register_list_types(runtime)
    runtime.import_interface(TREE_OPS)
    runtime.import_interface(TREE_EXPOSE)
    bind_tree_server(runtime)
    bind_hash_server(runtime)
    bind_list_server(runtime)
    if expose_tree:
        # This space homes a tree of its own and hands out the root
        # pointer, so remote grounds can dereference, modify and — at
        # session end — write back into this process's heap.
        bind_tree_expose(runtime, build_complete_tree(runtime, expose_tree))
    return transport, runtime


class ProcessHost:
    """One serving OS process: an address space or the registry."""

    def __init__(
        self,
        site_id: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[Tuple[str, int]] = None,
        registry_site: str = REGISTRY_SITE,
        serve_registry: bool = False,
        method: str = PROPOSED,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        trace_path: Optional[str] = None,
        faults: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
        expose_tree: int = 0,
    ) -> None:
        if not serve_registry and registry is None:
            raise TransportError(
                "a space host needs --registry HOST:PORT to find peers"
            )
        self.site_id = site_id
        self.serve_registry = serve_registry
        self.heartbeat_interval = heartbeat_interval
        self.trace_path = trace_path
        self._stop = threading.Event()
        self._stats = StatsCollector(trace=trace_path is not None)
        self.runtime: Optional[RpcRuntime] = None
        self.directory: Optional[SiteDirectory] = None
        self._directory_client: Optional[DirectoryClient] = None
        if serve_registry:
            self.transport = TcpTransport(
                site_id, host, port, stats=self._stats, retry=retry
            )
            self.transport.start()
            self.directory = SiteDirectory(self.transport.endpoint)
            registry_types = TypeRegistry()
            server = TypeNameServer(self.transport.endpoint, registry_types)
            # Publish the standard workload types so spaces may resolve
            # them over the wire instead of registering locally.
            server.publish(TREE_NODE_TYPE_ID, tree_node_spec())
        else:
            self.transport, self.runtime = make_space(
                site_id,
                method,
                host=host,
                port=port,
                registry=registry,
                registry_site=registry_site,
                stats=self._stats,
                retry=retry,
                faults=faults,
                expose_tree=expose_tree,
            )
            self._directory_client = DirectoryClient(
                self.transport.endpoint, registry_site
            )
        self.transport.endpoint.register_handler(
            MessageKind.SHUTDOWN, self._handle_shutdown
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound listening address."""
        assert self.transport.address is not None
        return self.transport.address

    def _handle_shutdown(self, message: Message) -> bytes:
        self._stop.set()
        return b""

    def request_stop(self) -> None:
        """Ask the serve loop to exit (signal handlers land here)."""
        self._stop.set()

    def serve_forever(self) -> None:
        """Register, announce readiness, heartbeat until told to stop."""
        if self._directory_client is not None:
            bound_host, bound_port = self.address
            self._directory_client.register(bound_host, bound_port)
        bound_host, bound_port = self.address
        print(
            f"READY site={self.site_id} addr={bound_host}:{bound_port}",
            flush=True,
        )
        try:
            while not self._stop.wait(self.heartbeat_interval):
                if self._directory_client is not None:
                    try:
                        self._directory_client.heartbeat()
                    except TransportError:
                        # A dead registry should not kill a serving
                        # space; peers holding our address still work.
                        pass
        finally:
            time.sleep(_DRAIN_SECONDS)
            self.close()

    def close(self) -> None:
        """Deregister, dump the trace, release the transport."""
        if self._directory_client is not None:
            try:
                self._directory_client.deregister()
            except TransportError:
                pass
            self._directory_client = None
        if self.trace_path is not None:
            save_trace(self._stats, self.trace_path)
            self.trace_path = None
        self.transport.close()


def parse_address(text: str) -> Tuple[str, int]:
    """Parse a ``HOST:PORT`` CLI argument."""
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"bad address {text!r} (expected HOST:PORT)")
    return host, int(port)


def run_serve(args) -> int:
    """Entry point for ``python -m repro.transport serve``."""
    registry = (
        parse_address(args.registry) if args.registry is not None else None
    )
    faults = (
        FaultInjector.parse(args.fault) if args.fault is not None else None
    )
    host = ProcessHost(
        args.site,
        host=args.host,
        port=args.port,
        registry=registry,
        registry_site=args.registry_site,
        serve_registry=args.serve_registry,
        method=args.method,
        heartbeat_interval=args.heartbeat,
        trace_path=args.trace,
        faults=faults,
        expose_tree=args.expose_tree,
    )
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: host.request_stop())
    host.serve_forever()
    return 0


def run_ping(args) -> int:
    """Entry point for ``python -m repro.transport ping``."""
    registry = parse_address(args.registry)
    transport = TcpTransport(
        f"_ping-{os.getpid()}",
        listen=False,
        peers={args.registry_site: registry},
        directory_site=args.registry_site,
    )
    transport.start()
    try:
        rtt = transport.ping(args.site, timeout=args.timeout)
        print(f"{args.site}: {rtt * 1000:.3f} ms")
        return 0
    except TransportError as exc:
        print(f"ping failed: {exc}", file=sys.stderr)
        return 1
    finally:
        transport.close()


def run_shutdown(args) -> int:
    """Entry point for ``python -m repro.transport shutdown``."""
    registry = parse_address(args.registry)
    transport = TcpTransport(
        f"_control-{os.getpid()}",
        listen=False,
        peers={args.registry_site: registry},
        directory_site=args.registry_site,
    )
    transport.start()
    try:
        transport.endpoint.send(
            args.site,
            MessageKind.SHUTDOWN,
            b"",
            reply_kind=MessageKind.SHUTDOWN_ACK,
        )
        print(f"{args.site}: shutting down")
        return 0
    except TransportError as exc:
        print(f"shutdown failed: {exc}", file=sys.stderr)
        return 1
    finally:
        transport.close()
