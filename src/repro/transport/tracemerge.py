"""Merging per-process trace logs into one timeline.

Each process host records its own trace (``serve --trace``): the
messages it initiated and the runtime events of its address space.
Offline analysis wants one file.  Because every
:class:`~repro.transport.wallclock.WallClock` reads the same epoch
time, timestamps from different processes are directly comparable;
the merge is a *stable* sort on time, so events from one process that
share a timestamp keep their recorded order — which is what the
per-process conformance rules (:mod:`repro.analysis.trace_rules`)
depend on.

Each merged event is annotated with ``data["proc"]`` naming its source
log, so interleavings stay attributable after the merge.

When the ``REPRO_TRACE_EXPORT`` environment variable names a
directory, :func:`export_trace` copies merged traces there — CI sets
it so the integration suites leave their merged timelines behind for
the coherency-sanitizer gate and the uploaded race-report artifact.
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.simnet.stats import TraceEvent
from repro.simnet.tracefmt import load_trace, save_trace


def annotate(events: Iterable[TraceEvent], proc: str) -> List[TraceEvent]:
    """Tag each event with the process (trace file) it came from."""
    tagged = []
    for event in events:
        data = dict(event.data) if event.data is not None else {}
        data.setdefault("proc", proc)
        tagged.append(
            TraceEvent(
                time=event.time,
                category=event.category,
                detail=event.detail,
                data=data,
            )
        )
    return tagged


def merge_events(
    streams: Sequence[List[TraceEvent]],
) -> List[TraceEvent]:
    """Stable time-ordered merge of several per-process event lists."""
    merged: List[TraceEvent] = []
    for stream in streams:
        merged.extend(stream)
    merged.sort(key=lambda event: event.time)  # stable: ties keep order
    return merged


def merge_trace_files(paths: Sequence, out_path) -> int:
    """Merge trace logs at ``paths`` into ``out_path``; event count."""
    streams = [
        annotate(load_trace(path), Path(path).stem) for path in paths
    ]
    merged = merge_events(streams)
    save_trace(merged, out_path)
    return len(merged)


def export_trace(path, label: Optional[str] = None) -> Optional[Path]:
    """Copy a trace into ``$REPRO_TRACE_EXPORT`` for CI artifacts.

    A no-op returning ``None`` unless the environment variable names a
    directory (created on demand).  ``label`` overrides the exported
    file's stem; the ``.jsonl`` suffix is kept so the analysis CLI's
    directory scan picks the copy up.
    """
    export_dir = os.environ.get("REPRO_TRACE_EXPORT")
    if not export_dir:
        return None
    source = Path(path)
    destination = Path(export_dir) / (
        f"{label}.jsonl" if label else source.name
    )
    destination.parent.mkdir(parents=True, exist_ok=True)
    shutil.copyfile(source, destination)
    return destination


def run_merge(args) -> int:
    """Entry point for ``python -m repro.transport merge-traces``."""
    count = merge_trace_files(args.traces, args.out)
    print(f"merged {len(args.traces)} trace(s), {count} events -> {args.out}")
    return 0
