"""Merging per-process trace logs into one timeline.

Each process host records its own trace (``serve --trace``): the
messages it initiated and the runtime events of its address space.
Offline analysis wants one file.  Because every
:class:`~repro.transport.wallclock.WallClock` reads the same epoch
time, timestamps from different processes are directly comparable;
the merge is a *stable* sort on time, so events from one process that
share a timestamp keep their recorded order — which is what the
per-process conformance rules (:mod:`repro.analysis.trace_rules`)
depend on.

Each merged event is annotated with ``data["proc"]`` naming its source
log, so interleavings stay attributable after the merge.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Sequence

from repro.simnet.stats import TraceEvent
from repro.simnet.tracefmt import load_trace, save_trace


def annotate(events: Iterable[TraceEvent], proc: str) -> List[TraceEvent]:
    """Tag each event with the process (trace file) it came from."""
    tagged = []
    for event in events:
        data = dict(event.data) if event.data is not None else {}
        data.setdefault("proc", proc)
        tagged.append(
            TraceEvent(
                time=event.time,
                category=event.category,
                detail=event.detail,
                data=data,
            )
        )
    return tagged


def merge_events(
    streams: Sequence[List[TraceEvent]],
) -> List[TraceEvent]:
    """Stable time-ordered merge of several per-process event lists."""
    merged: List[TraceEvent] = []
    for stream in streams:
        merged.extend(stream)
    merged.sort(key=lambda event: event.time)  # stable: ties keep order
    return merged


def merge_trace_files(paths: Sequence, out_path) -> int:
    """Merge trace logs at ``paths`` into ``out_path``; event count."""
    streams = [
        annotate(load_trace(path), Path(path).stem) for path in paths
    ]
    merged = merge_events(streams)
    save_trace(merged, out_path)
    return len(merged)


def run_merge(args) -> int:
    """Entry point for ``python -m repro.transport merge-traces``."""
    count = merge_trace_files(args.traces, args.out)
    print(f"merged {len(args.traces)} trace(s), {count} events -> {args.out}")
    return 0
