"""The transport abstraction every runtime speaks through.

Extracted from :class:`repro.simnet.network.Network`: the runtimes
never cared that the simulator delivered messages synchronously — they
only ever used a *site-shaped* object (``register_handler`` + ``send``)
and a *network-shaped* object (``clock`` + ``cost_model`` + ``stats``).
This module names that contract so a real inter-process transport can
slot in underneath the same runtimes, baselines, name service, tests
and benchmarks.

The pieces of the Birrell-Nelson at-most-once machinery that both
backends share also live here: the :class:`ReplyCache` (the receiver
half — a retransmitted exchange returns the cached reply instead of
re-running the handler) and the :class:`RetryPolicy` (the sender half —
timeout, exponential backoff, bounded attempts).
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Hashable,
    Iterator,
    Optional,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily at runtime: simnet.network implements this
    # module's ABCs, so a module-level import here would be circular.
    from repro.simnet.clock import CostModel
    from repro.simnet.message import Message, MessageKind
    from repro.simnet.stats import StatsCollector

from repro.transport.vclock import VectorClock

Handler = Callable[["Message"], bytes]


class TransportError(Exception):
    """A transport-level failure the runtimes cannot recover from."""


class ReplyCache:
    """LRU cache of replies keyed by exchange id.

    The receiver half of at-most-once RPC: a retransmitted request
    (same key) returns the cached reply without re-running the handler,
    so handler side effects happen exactly once per logical send.

    Eviction is least-recently-*used*: a hit refreshes the entry's
    recency, so a hot exchange id being retransmitted is not evicted
    before cold ones merely because it was inserted earlier.

    Two kinds of "hit" are kept apart.  ``retransmission_hits`` is the
    at-most-once metric proper: a duplicate *request* answered from the
    cache instead of re-running the handler.  ``piggyback_hits`` counts
    faults the fetch pipeline satisfied by absorbing an exchange that
    was already in flight (see :mod:`repro.smartrpc.pipeline`) — no
    duplicate request ever reached this cache, so folding them into the
    retransmission counter would inflate the at-most-once metrics.
    """

    def __init__(self, limit: int = 4096) -> None:
        if limit < 1:
            raise ValueError(f"bad reply cache limit {limit!r}")
        self.limit = limit
        self._entries: "OrderedDict[Hashable, bytes]" = OrderedDict()
        self.retransmission_hits = 0
        self.piggyback_hits = 0

    @property
    def hits(self) -> int:
        """Legacy alias for :attr:`retransmission_hits`."""
        return self.retransmission_hits

    def note_piggyback(self) -> None:
        """Count one fault absorbed by an in-flight exchange."""
        self.piggyback_hits += 1

    def get(self, key: Hashable) -> Optional[bytes]:
        """The cached reply for ``key``, refreshing its recency."""
        reply = self._entries.get(key)
        if reply is not None:
            self._entries.move_to_end(key)
            self.retransmission_hits += 1
        return reply

    def put(self, key: Hashable, reply: bytes) -> None:
        """Cache ``reply``, evicting the least recently used entries."""
        self._entries[key] = reply
        self._entries.move_to_end(key)
        while len(self._entries) > self.limit:
            self._entries.popitem(last=False)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(frozen=True)
class RetryPolicy:
    """Sender-side retransmission schedule: timeout, backoff, bound.

    Attributes:
        timeout: seconds to wait for the first reply.
        backoff: multiplier applied to the timeout after each failure.
        max_timeout: ceiling the growing timeout saturates at.
        max_attempts: total transmissions before the exchange fails.
    """

    timeout: float = 0.25
    backoff: float = 2.0
    max_timeout: float = 2.0
    max_attempts: int = 8

    def __post_init__(self) -> None:
        if self.timeout <= 0 or self.backoff < 1.0 or self.max_attempts < 1:
            raise ValueError(f"bad retry policy {self!r}")

    def timeouts(self) -> Iterator[float]:
        """Yield the per-attempt timeouts, exponentially backed off."""
        current = self.timeout
        for _ in range(self.max_attempts):
            yield min(current, self.max_timeout)
            current *= self.backoff


class Endpoint(abc.ABC):
    """One address space's attachment point to a transport.

    A runtime installs one handler per :class:`MessageKind` and sends
    messages to peers by site id; the transport below decides whether
    that is a synchronous simulated delivery or a framed TCP exchange.
    """

    #: Exception type raised when no handler matches an incoming kind;
    #: implementations may narrow it to their own error hierarchy.
    no_handler_error = TransportError

    def __init__(
        self, site_id: str, reply_cache_limit: int = 4096
    ) -> None:
        self.site_id = site_id
        self._handlers: Dict[MessageKind, Handler] = {}
        self.reply_cache = ReplyCache(reply_cache_limit)
        self.vclock = VectorClock(site_id)

    def stamp(self, session: Optional[str] = None) -> Dict[str, object]:
        """Causal stamp for one trace event recorded at this site.

        Ticks the site's vector clock and returns the ``site`` /
        ``seq`` / ``vc`` triple every protocol event carries: the
        recording site, a per-(site, session) monotonic sequence, and
        the post-tick vector-clock snapshot.
        """
        return {
            "site": self.site_id,
            "seq": self.vclock.next_seq(session),
            "vc": self.vclock.tick(),
        }

    def register_handler(self, kind: MessageKind, handler: Handler) -> None:
        """Install ``handler`` for incoming messages of ``kind``."""
        self._handlers[kind] = handler

    def handler_for(self, kind: MessageKind) -> Optional[Handler]:
        """The installed handler for ``kind``, if any."""
        return self._handlers.get(kind)

    def handle(self, message: Message) -> bytes:
        """Dispatch an incoming message to its registered handler."""
        handler = self._handlers.get(message.kind)
        if handler is None:
            raise self.no_handler_error(
                f"site {self.site_id!r} has no handler for {message.kind}"
            )
        return handler(message)

    def handle_at_most_once(
        self, exchange_key: Hashable, message: Message
    ) -> bytes:
        """Dispatch, executing the handler at most once per exchange.

        A retransmitted request (same exchange key) returns the cached
        reply without re-running the handler — the receiver half of
        at-most-once RPC semantics.
        """
        cached = self.reply_cache.get(exchange_key)
        if cached is not None:
            return cached
        reply = self.handle(message)
        self.reply_cache.put(exchange_key, reply)
        return reply

    @abc.abstractmethod
    def send(
        self,
        dst: str,
        kind: MessageKind,
        payload: bytes,
        reply_kind: Optional[MessageKind] = None,
        timeout: Optional[float] = None,
    ) -> bytes:
        """Send one message to ``dst``; return the reply body.

        When ``reply_kind`` is ``None`` the message is one-way: the
        handler must produce no reply body and ``b""`` is returned.

        ``timeout`` caps the whole exchange (including retransmits) in
        seconds; the exchange fails with :class:`TransportError` once
        it elapses instead of running the full retry schedule.
        Backends with synchronous delivery (the simulator) may ignore
        it.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.site_id!r})"


class Transport(abc.ABC):
    """What connects endpoints: clock, cost model, stats, delivery.

    Implementations provide the three shared accounting objects the
    runtimes charge to (``clock``, ``cost_model``, ``stats``) and the
    actual message delivery behind each endpoint's ``send``.
    """

    def __init__(
        self,
        clock=None,
        cost_model: Optional[CostModel] = None,
        stats: Optional[StatsCollector] = None,
    ) -> None:
        from repro.simnet.clock import CostModel as _CostModel
        from repro.simnet.clock import SimClock as _SimClock
        from repro.simnet.stats import StatsCollector as _StatsCollector

        # ``clock`` is anything clock-shaped (``now`` + ``advance``):
        # the simulator's SimClock or a transport's WallClock.
        self.clock = clock if clock is not None else _SimClock()
        self.cost_model = (
            cost_model if cost_model is not None else _CostModel()
        )
        self.stats = stats if stats is not None else _StatsCollector()

    def close(self) -> None:
        """Release transport resources (connections, threads, ports)."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- shared accounting ----------------------------------------------------

    def note_message(
        self, message: Message, stamp: Optional[dict] = None
    ) -> None:
        """Count and trace one transmitted message.

        Both backends record the same ``message`` event shape, so the
        offline trace tooling (:mod:`repro.simnet.tracefmt`,
        :mod:`repro.analysis.trace_rules`) reads simulated and real
        runs identically.  ``stamp`` is the sending endpoint's causal
        stamp (:meth:`Endpoint.stamp`) when the carrier has one in
        hand.
        """
        self.stats.record_message(message)
        data = {
            "src": message.src,
            "dst": message.dst,
            "kind": message.kind.value,
            "size": message.size,
        }
        if stamp:
            data.update(stamp)
        self.stats.record_event(
            self.clock.now,
            "message",
            f"{message.src}->{message.dst} {message.kind.value} "
            f"{message.size}B",
            data=data,
        )

    def note_timeout(
        self, detail: str = "retransmitting", site: Optional[str] = None
    ) -> None:
        """Trace one retransmission timeout at ``site`` (the sender)."""
        self.stats.record_event(
            self.clock.now,
            "timeout",
            detail,
            data={"site": site} if site else None,
        )
