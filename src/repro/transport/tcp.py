"""A real inter-process transport: asyncio TCP with framed exchanges.

:class:`TcpTransport` carries the same :class:`~repro.simnet.message`
traffic as the simulator, but across genuine OS processes over
localhost (or any) TCP.  One transport hosts exactly one address
space; its event loop runs on a dedicated daemon thread so the
runtimes above stay fully synchronous — ``endpoint.send`` blocks the
calling thread exactly as a simulated delivery does.

Reliability mirrors the classic Birrell-Nelson machinery the simulator
models (and the acceptance tests inject faults to prove it):

* every exchange carries a per-sender exchange id; the sender
  retransmits on timeout with exponential backoff
  (:class:`~repro.transport.base.RetryPolicy`);
* the receiver suppresses duplicates through the shared
  :class:`~repro.transport.base.ReplyCache` keyed by
  ``(sender, exchange id)`` plus an in-flight table, so handler side
  effects stay exactly-once per logical send however many
  retransmissions (or duplicated frames) arrive;
* connections are pooled and reused; a versioned handshake
  (:mod:`repro.transport.framing`) rejects incompatible peers at
  connect time.

Because a callee blocked inside a handler routinely issues nested
exchanges back to its caller (fault-driven data requests, callbacks),
handlers run on a worker-thread pool while the event loop keeps
serving — the process is always able to answer incoming requests even
while one of its own calls is outstanding.

Statistics and trace events are recorded into the transport's shared
:class:`~repro.simnet.stats.StatsCollector` with the same structured
shapes as the simulator's, so recorded real runs replay through
:mod:`repro.analysis.trace_rules` unchanged.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import random
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.simnet.clock import CostModel, SimClock
from repro.simnet.message import Message, MessageKind
from repro.simnet.stats import StatsCollector
from repro.transport.base import (
    Endpoint,
    RetryPolicy,
    Transport,
    TransportError,
)
from repro.transport.framing import (
    PROTOCOL_VERSION,
    STATUS_HANDLER_ERROR,
    STATUS_OK,
    FramingError,
    Goodbye,
    Hello,
    Ping,
    Pong,
    Reply,
    Request,
    Welcome,
    clock_to_wire,
    decode_frame,
    encode_frame,
    frame_length,
)
from repro.transport.wallclock import WallClock

#: How long connect + handshake may take before the attempt fails.
HANDSHAKE_TIMEOUT = 5.0

#: Idle connections kept per peer for reuse.
POOL_SIZE = 4


class HandshakeError(TransportError):
    """The peer refused the connection or speaks another protocol."""


class RemoteHandlerError(TransportError):
    """The remote handler raised outside the RPC error envelope."""


class FaultInjector:
    """Deterministic wire faults for exercising the retry machinery.

    ``drop_requests`` / ``duplicate_requests`` / ``drop_replies`` are
    1-based indices into this transport's sequence of outgoing request
    (resp. reply) transmissions; ``loss_rate`` adds seeded random
    request drops on top for chaos-style tests.

    ``crash_sends`` / ``crash_recvs`` map a message-kind value to a
    1-based ordinal N: the *process* exits hard (``os._exit``) right
    after transmitting (resp. right before handling) its Nth frame of
    that kind — the deterministic process-kill primitive behind the
    crash-matrix tests.  A crash-send dies with the frame already on
    the wire (the peer processes it; the reply is lost with the
    sender); a crash-recv dies before the handler runs.
    """

    DROP = "drop"
    DUPLICATE = "duplicate"

    #: Exit status of an injected crash, so harnesses can tell a
    #: planned death from an accidental one.
    CRASH_EXIT_CODE = 86

    def __init__(
        self,
        drop_requests: Iterable[int] = (),
        duplicate_requests: Iterable[int] = (),
        drop_replies: Iterable[int] = (),
        loss_rate: float = 0.0,
        seed: int = 0,
        crash_sends: Optional[Dict[str, int]] = None,
        crash_recvs: Optional[Dict[str, int]] = None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"bad loss rate {loss_rate!r}")
        self.drop_requests = frozenset(drop_requests)
        self.duplicate_requests = frozenset(duplicate_requests)
        self.drop_replies = frozenset(drop_replies)
        self.loss_rate = loss_rate
        self.crash_sends = dict(crash_sends or {})
        self.crash_recvs = dict(crash_recvs or {})
        self._rng = random.Random(seed)
        self._requests_seen = 0
        self._replies_seen = 0
        self._sends_by_kind: Dict[str, int] = {}
        self._recvs_by_kind: Dict[str, int] = {}

    def request_action(self) -> Optional[str]:
        """Fault to apply to the next outgoing request frame, if any."""
        self._requests_seen += 1
        if self._requests_seen in self.drop_requests:
            return self.DROP
        if self._requests_seen in self.duplicate_requests:
            return self.DUPLICATE
        if self.loss_rate and self._rng.random() < self.loss_rate:
            return self.DROP
        return None

    def reply_action(self) -> Optional[str]:
        """Fault to apply to the next outgoing reply frame, if any."""
        self._replies_seen += 1
        if self._replies_seen in self.drop_replies:
            return self.DROP
        return None

    def crash_after_send(self, kind: "MessageKind") -> bool:
        """Whether the process must die now, having sent this frame."""
        planned = self.crash_sends.get(kind.value)
        if planned is None:
            return False
        seen = self._sends_by_kind.get(kind.value, 0) + 1
        self._sends_by_kind[kind.value] = seen
        return seen == planned

    def crash_on_receive(self, kind: "MessageKind") -> bool:
        """Whether the process must die now, before handling this frame."""
        planned = self.crash_recvs.get(kind.value)
        if planned is None:
            return False
        seen = self._recvs_by_kind.get(kind.value, 0) + 1
        self._recvs_by_kind[kind.value] = seen
        return seen == planned

    @classmethod
    def parse(cls, spec: str) -> "FaultInjector":
        """Build an injector from a CLI spec.

        ``spec`` is a comma-separated list of ``drop-request=N``,
        ``dup-request=N``, ``drop-reply=N``, ``loss=RATE``, ``seed=N``,
        ``crash-send=KIND:N`` and ``crash-recv=KIND:N`` clauses, e.g.
        ``drop-request=1,crash-recv=writeback_prepare:1``.
        """
        drop_requests: Set[int] = set()
        duplicate_requests: Set[int] = set()
        drop_replies: Set[int] = set()
        crash_sends: Dict[str, int] = {}
        crash_recvs: Dict[str, int] = {}
        loss_rate = 0.0
        seed = 0
        for clause in filter(None, spec.split(",")):
            name, _, value = clause.partition("=")
            try:
                if name == "drop-request":
                    drop_requests.add(int(value))
                elif name == "dup-request":
                    duplicate_requests.add(int(value))
                elif name == "drop-reply":
                    drop_replies.add(int(value))
                elif name == "loss":
                    loss_rate = float(value)
                elif name == "seed":
                    seed = int(value)
                elif name in ("crash-send", "crash-recv"):
                    kind, _, ordinal = value.partition(":")
                    MessageKind(kind)  # reject unknown kinds early
                    target = (
                        crash_sends if name == "crash-send" else crash_recvs
                    )
                    target[kind] = int(ordinal) if ordinal else 1
                else:
                    raise ValueError(name)
            except ValueError:
                raise ValueError(
                    f"bad fault clause {clause!r} (expected "
                    "drop-request=N, dup-request=N, drop-reply=N, "
                    "loss=RATE, seed=N, crash-send=KIND:N or "
                    "crash-recv=KIND:N)"
                ) from None
        return cls(
            drop_requests=drop_requests,
            duplicate_requests=duplicate_requests,
            drop_replies=drop_replies,
            loss_rate=loss_rate,
            seed=seed,
            crash_sends=crash_sends,
            crash_recvs=crash_recvs,
        )


class TcpEndpoint(Endpoint):
    """The one address space a :class:`TcpTransport` hosts."""

    def __init__(
        self,
        site_id: str,
        transport: "TcpTransport",
        reply_cache_limit: int = 4096,
    ) -> None:
        super().__init__(site_id, reply_cache_limit=reply_cache_limit)
        self.transport = transport

    def send(
        self,
        dst: str,
        kind: MessageKind,
        payload: bytes,
        reply_kind: Optional[MessageKind] = None,
        timeout: Optional[float] = None,
    ) -> bytes:
        """Run one framed exchange with ``dst``; blocks until replied."""
        return self.transport.exchange(
            dst, kind, payload, reply_kind, timeout=timeout
        )


class _Connection:
    """One pooled TCP connection to (or from) a peer."""

    def __init__(
        self,
        peer: Optional[str],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.peer = peer
        self.reader = reader
        self.writer = writer
        self.alive = True
        self.pending: Dict[int, asyncio.Future] = {}
        self.pings: Dict[int, asyncio.Future] = {}
        self.pump_task: Optional[asyncio.Task] = None
        self._write_lock = asyncio.Lock()

    async def write(self, data: bytes) -> None:
        async with self._write_lock:
            self.writer.write(data)
            await self.writer.drain()

    def abort(self, error: Exception) -> None:
        """Mark dead and fail every outstanding waiter."""
        self.alive = False
        for waiter in list(self.pending.values()):
            if not waiter.done():
                waiter.set_exception(error)
        self.pending.clear()
        for waiter in list(self.pings.values()):
            if not waiter.done():
                waiter.set_exception(error)
        self.pings.clear()
        try:
            self.writer.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass


class TcpTransport(Transport):
    """Length-prefixed, retried, at-most-once exchanges over TCP.

    One instance per OS process (or per simulated "process" when tests
    run several transports inside one interpreter).  ``peers`` maps
    site ids to ``(host, port)``; unknown destinations are resolved
    through the site directory at ``directory_site`` when configured
    (see :mod:`repro.namesvc.directory`).
    """

    def __init__(
        self,
        site_id: str,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        clock=None,
        cost_model: Optional[CostModel] = None,
        stats: Optional[StatsCollector] = None,
        peers: Optional[Dict[str, Tuple[str, int]]] = None,
        directory_site: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultInjector] = None,
        reply_cache_limit: int = 4096,
        max_workers: int = 32,
        listen: bool = True,
        protocol_version: int = PROTOCOL_VERSION,
        accept_versions: Optional[Iterable[int]] = None,
    ) -> None:
        super().__init__(
            clock=clock if clock is not None else WallClock(),
            cost_model=cost_model,
            stats=stats,
        )
        self.site_id = site_id
        self._host = host
        self._port = port
        self._listen = listen
        self._peers = peers if peers is not None else {}
        self._directory_site = directory_site
        self._retry = retry if retry is not None else RetryPolicy()
        self._faults = faults
        self._protocol_version = protocol_version
        self._accept_versions = frozenset(
            accept_versions if accept_versions is not None
            else (protocol_version,)
        )
        self.endpoint = TcpEndpoint(
            site_id, self, reply_cache_limit=reply_cache_limit
        )
        self.address: Optional[Tuple[str, int]] = None
        self.retransmissions = 0
        self.dials: Dict[str, int] = {}
        # Exchange ids carry a random 32-bit incarnation in their high
        # half — Birrell-Nelson's per-boot conversation identifier.
        # Without it, a restarted process reusing a site id would
        # restart its counter at 1 and collide with the replies its
        # predecessor left in peers' duplicate-suppression caches.
        incarnation = int.from_bytes(os.urandom(4), "big")
        self._exchange_ids = itertools.count((incarnation << 32) | 1)
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix=f"rpc-{site_id}"
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool: Dict[str, List[_Connection]] = {}
        self._inflight: Dict[Tuple[str, int], asyncio.Future] = {}
        self._server_tasks: Set[asyncio.Task] = set()
        self._server_conns: Set[_Connection] = set()
        self._closed = False

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> Optional[Tuple[str, int]]:
        """Start the event loop thread (and listener); return the bound
        ``(host, port)`` or ``None`` for a client-only transport."""
        if self._thread is not None:
            raise TransportError(
                f"transport for {self.site_id!r} already started"
            )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name=f"tcp-{self.site_id}",
            daemon=True,
        )
        self._thread.start()
        if self._listen:
            future = asyncio.run_coroutine_threadsafe(
                self._start_server(), self._loop
            )
            self.address = future.result(HANDSHAKE_TIMEOUT)
        return self.address

    async def _start_server(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._accept, self._host, self._port
        )
        name = self._server.sockets[0].getsockname()
        return name[0], name[1]

    def close(self) -> None:
        """Close listener, connections and the event loop thread."""
        if self._closed or self._loop is None:
            return
        self._closed = True
        future = asyncio.run_coroutine_threadsafe(
            self._shutdown(), self._loop
        )
        try:
            future.result(HANDSHAKE_TIMEOUT)
        except Exception:  # pragma: no cover - teardown best effort
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(HANDSHAKE_TIMEOUT)
        self._executor.shutdown(wait=False)
        if not self._loop.is_running():
            self._loop.close()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._server_tasks):
            task.cancel()
        goodbye = encode_frame(Goodbye(self.site_id, "shutting down"))
        for pool in self._pool.values():
            for conn in pool:
                try:
                    await asyncio.wait_for(conn.write(goodbye), 0.2)
                except Exception:
                    pass
                conn.abort(ConnectionResetError("transport closed"))
        self._pool.clear()
        for conn in list(self._server_conns):
            conn.abort(ConnectionResetError("transport closed"))
        self._server_conns.clear()

    # -- peer addressing ------------------------------------------------------

    def add_peer(self, site_id: str, address: Tuple[str, int]) -> None:
        """Teach this transport where ``site_id`` listens."""
        self._peers[site_id] = tuple(address)

    async def _resolve(self, dst: str) -> Tuple[str, int]:
        address = self._peers.get(dst)
        if address is not None:
            return address
        if self._directory_site is not None and dst != self._directory_site:
            from repro.namesvc.directory import (
                decode_lookup_reply,
                encode_lookup,
            )

            payload = await self._exchange(
                self._directory_site,
                MessageKind.SITE_LOOKUP,
                encode_lookup(dst),
                MessageKind.DIR_REPLY,
            )
            host, port, _age = decode_lookup_reply(payload, dst)
            self._peers[dst] = (host, port)
            return host, port
        raise TransportError(
            f"site {self.site_id!r} has no route to {dst!r}"
        )

    # -- client side ----------------------------------------------------------

    def exchange(
        self,
        dst: str,
        kind: MessageKind,
        payload: bytes,
        reply_kind: Optional[MessageKind] = None,
        timeout: Optional[float] = None,
    ) -> bytes:
        """Blocking request/response exchange with at-most-once retries.

        ``timeout`` caps the *whole* exchange — connects, retransmits
        and all — failing it with :class:`TransportError` once elapsed
        instead of running the full retry schedule (the per-exchange
        guard of the session fault-tolerance layer).
        """
        if self._loop is None:
            raise TransportError(
                f"transport for {self.site_id!r} is not started"
            )
        if threading.current_thread() is self._thread:
            raise TransportError(
                "exchange() must not be called from the event loop thread"
            )
        future = asyncio.run_coroutine_threadsafe(
            self._exchange(dst, kind, payload, reply_kind, timeout),
            self._loop,
        )
        return future.result()

    async def _exchange(
        self,
        dst: str,
        kind: MessageKind,
        payload: bytes,
        reply_kind: Optional[MessageKind],
        cap: Optional[float] = None,
    ) -> bytes:
        deadline = (
            self._loop.time() + cap if cap is not None else None
        )
        address = await self._resolve(dst)
        exchange_id = next(self._exchange_ids)
        # Piggyback this site's vector clock on the request; the
        # responder merges it before running the handler.  The frame is
        # encoded once, so every retransmission carries the same clock.
        encoded = encode_frame(
            Request(
                exchange_id=exchange_id,
                src=self.site_id,
                dst=dst,
                kind=kind.value,
                expects_reply=reply_kind is not None,
                payload=payload,
                clock=clock_to_wire(self.endpoint.vclock.tick()),
            )
        )
        attempts = 0
        last_error: Optional[BaseException] = None
        for timeout in self._retry.timeouts():
            attempts += 1
            if deadline is not None:
                remaining = deadline - self._loop.time()
                if remaining <= 0:
                    raise TransportError(
                        f"{kind.value} exchange {self.site_id!r}->"
                        f"{dst!r} exceeded its {cap}s cap after "
                        f"{attempts - 1} attempt(s) ({last_error})"
                    )
                timeout = min(timeout, remaining)
            try:
                conn = await self._acquire(dst, address)
            except HandshakeError:
                raise
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                last_error = exc
                self.note_timeout(
                    f"connect to {dst!r} failed ({exc}); retrying",
                    site=self.site_id,
                )
                await asyncio.sleep(timeout)
                continue
            waiter = self._loop.create_future()
            conn.pending[exchange_id] = waiter
            action = (
                self._faults.request_action() if self._faults else None
            )
            try:
                message = Message(
                    src=self.site_id, dst=dst, kind=kind, payload=payload
                )
                if action == FaultInjector.DROP:
                    # Charged as sent, lost in transit — the simulator's
                    # lossy path does exactly this.
                    self.note_message(message, stamp=self._stamp())
                    self.stats.record_event(
                        self.clock.now,
                        "loss",
                        f"injected drop of {kind.value} "
                        f"{self.site_id}->{dst}",
                        data={"site": self.site_id},
                    )
                else:
                    await conn.write(encoded)
                    self.note_message(message, stamp=self._stamp())
                    if self._faults is not None and (
                        self._faults.crash_after_send(kind)
                    ):
                        # Planned death: the frame is on the wire (the
                        # peer will process it) but this process dies
                        # before its reply can land.
                        os._exit(FaultInjector.CRASH_EXIT_CODE)
                    if action == FaultInjector.DUPLICATE:
                        await conn.write(encoded)
                        self.note_message(message, stamp=self._stamp())
                reply = await asyncio.wait_for(waiter, timeout)
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                last_error = exc
                self.retransmissions += 1
                self.note_timeout(
                    f"{kind.value} exchange {self.site_id}->{dst} timed "
                    "out; retransmitting",
                    site=self.site_id,
                )
                conn.pending.pop(exchange_id, None)
                conn.abort(ConnectionResetError("exchange timed out"))
                continue
            finally:
                conn.pending.pop(exchange_id, None)
            await self._release(dst, conn)
            return self._finish(dst, kind, reply_kind, reply)
        raise TransportError(
            f"{kind.value} exchange {self.site_id!r}->{dst!r} failed "
            f"after {attempts} attempts ({last_error})"
        )

    def _stamp(self) -> Optional[dict]:
        """The endpoint's causal stamp, or None when tracing is off."""
        return self.endpoint.stamp() if self.stats.tracing else None

    def _finish(
        self,
        dst: str,
        kind: MessageKind,
        reply_kind: Optional[MessageKind],
        reply: Reply,
    ) -> bytes:
        # The reply piggybacks the responder's clock: merging it makes
        # everything the handler did happen-before this site's next
        # traced event.
        self.endpoint.vclock.merge(dict(reply.clock))
        if reply.status == STATUS_HANDLER_ERROR:
            raise RemoteHandlerError(
                f"{kind.value} handler at {dst!r} failed: "
                f"{reply.payload.decode('utf-8', 'replace')}"
            )
        if reply.status != STATUS_OK:
            raise TransportError(
                f"bad reply status {reply.status!r} from {dst!r}"
            )
        if reply_kind is None:
            if reply.payload:
                raise TransportError(
                    f"one-way {kind} message to {dst!r} produced a reply"
                )
            return b""
        self.note_message(
            Message(
                src=dst,
                dst=self.site_id,
                kind=reply_kind,
                payload=reply.payload,
            ),
            stamp=self._stamp(),
        )
        return reply.payload

    async def _acquire(
        self, dst: str, address: Tuple[str, int]
    ) -> _Connection:
        pool = self._pool.setdefault(dst, [])
        while pool:
            conn = pool.pop()
            if conn.alive:
                return conn
        return await self._dial(dst, address)

    async def _release(self, dst: str, conn: _Connection) -> None:
        if not conn.alive:
            return
        pool = self._pool.setdefault(dst, [])
        if len(pool) < POOL_SIZE:
            pool.append(conn)
        else:
            conn.abort(ConnectionResetError("pool full"))

    async def _dial(
        self, dst: str, address: Tuple[str, int]
    ) -> _Connection:
        host, port = address
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), HANDSHAKE_TIMEOUT
        )
        conn = _Connection(dst, reader, writer)
        await conn.write(
            encode_frame(Hello(self._protocol_version, self.site_id))
        )
        frame = await asyncio.wait_for(
            self._read_frame(reader), HANDSHAKE_TIMEOUT
        )
        if isinstance(frame, Goodbye):
            conn.abort(ConnectionResetError("refused"))
            raise HandshakeError(
                f"site {dst!r} refused the connection: {frame.reason}"
            )
        if (
            not isinstance(frame, Welcome)
            or frame.version != self._protocol_version
        ):
            conn.abort(ConnectionResetError("bad handshake"))
            raise HandshakeError(
                f"bad handshake from {dst!r}: expected WELCOME v"
                f"{self._protocol_version}, got {frame!r}"
            )
        conn.pump_task = self._loop.create_task(self._pump(conn))
        self.dials[dst] = self.dials.get(dst, 0) + 1
        return conn

    async def _pump(self, conn: _Connection) -> None:
        """Dispatch incoming frames on a client connection."""
        try:
            while True:
                frame = await self._read_frame(conn.reader)
                if frame is None or isinstance(frame, Goodbye):
                    break
                if isinstance(frame, Reply):
                    waiter = conn.pending.get(frame.exchange_id)
                    # A late reply to an exchange that already timed out
                    # and completed via retransmission is simply dropped.
                    if waiter is not None and not waiter.done():
                        waiter.set_result(frame)
                elif isinstance(frame, Pong):
                    waiter = conn.pings.pop(frame.token, None)
                    if waiter is not None and not waiter.done():
                        waiter.set_result(self._loop.time())
        except (ConnectionError, OSError, FramingError):
            pass
        finally:
            conn.abort(ConnectionResetError("connection lost"))

    def ping(self, dst: str, timeout: float = 2.0) -> float:
        """Round-trip a transport-level PING; returns the RTT seconds."""
        if self._loop is None:
            raise TransportError(
                f"transport for {self.site_id!r} is not started"
            )
        future = asyncio.run_coroutine_threadsafe(
            self._ping(dst, timeout), self._loop
        )
        return future.result()

    async def _ping(self, dst: str, timeout: float) -> float:
        address = await self._resolve(dst)
        conn = await self._acquire(dst, address)
        token = next(self._exchange_ids)
        waiter = self._loop.create_future()
        conn.pings[token] = waiter
        started = self._loop.time()
        try:
            await conn.write(encode_frame(Ping(token)))
            finished = await asyncio.wait_for(waiter, timeout)
        except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
            conn.abort(ConnectionResetError("ping failed"))
            raise TransportError(
                f"no PONG from {dst!r} within {timeout}s ({exc})"
            ) from None
        finally:
            conn.pings.pop(token, None)
        await self._release(dst, conn)
        return finished - started

    # -- server side ----------------------------------------------------------

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(None, reader, writer)
        self._server_conns.add(conn)
        try:
            frame = await asyncio.wait_for(
                self._read_frame(reader), HANDSHAKE_TIMEOUT
            )
            if not isinstance(frame, Hello):
                await conn.write(
                    encode_frame(
                        Goodbye(self.site_id, "expected HELLO")
                    )
                )
                return
            if frame.version not in self._accept_versions:
                supported = ", ".join(
                    str(v) for v in sorted(self._accept_versions)
                )
                await conn.write(
                    encode_frame(
                        Goodbye(
                            self.site_id,
                            f"unsupported protocol version "
                            f"{frame.version} (supported: {supported})",
                        )
                    )
                )
                return
            conn.peer = frame.site_id
            await conn.write(
                encode_frame(Welcome(frame.version, self.site_id))
            )
            while True:
                frame = await self._read_frame(reader)
                if frame is None or isinstance(frame, Goodbye):
                    break
                if isinstance(frame, Ping):
                    await conn.write(encode_frame(Pong(frame.token)))
                elif isinstance(frame, Request):
                    task = self._loop.create_task(
                        self._serve_request(frame, conn)
                    )
                    self._server_tasks.add(task)
                    task.add_done_callback(self._server_tasks.discard)
        except (
            ConnectionError,
            OSError,
            FramingError,
            asyncio.TimeoutError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            self._server_conns.discard(conn)
            conn.abort(ConnectionResetError("connection closed"))

    async def _serve_request(
        self, request: Request, conn: _Connection
    ) -> None:
        """Run (or replay) one exchange and send its reply frame."""
        key = (request.src, request.exchange_id)
        cache = self.endpoint.reply_cache
        encoded = cache.get(key)
        if encoded is None:
            inflight = self._inflight.get(key)
            if inflight is not None:
                # A retransmission arrived while the first transmission's
                # handler is still running: wait for that one result.
                encoded = await asyncio.shield(inflight)
            else:
                future = self._loop.create_future()
                self._inflight[key] = future
                try:
                    encoded = await self._execute(request)
                    cache.put(key, encoded)
                    future.set_result(encoded)
                except asyncio.CancelledError:
                    future.cancel()
                    raise
                finally:
                    self._inflight.pop(key, None)
        if self._faults is not None and (
            self._faults.reply_action() == FaultInjector.DROP
        ):
            self.stats.record_event(
                self.clock.now,
                "loss",
                f"injected drop of reply {self.site_id}->{request.src}",
                data={"site": self.site_id},
            )
            return
        try:
            await conn.write(encoded)
        except (ConnectionError, OSError):
            pass  # the peer will retransmit and hit the reply cache

    async def _execute(self, request: Request) -> bytes:
        """Dispatch one request to its handler on the worker pool."""
        try:
            kind = MessageKind(request.kind)
            if self._faults is not None and (
                self._faults.crash_on_receive(kind)
            ):
                # Planned death: the frame arrived but this process
                # dies before its handler can run.
                os._exit(FaultInjector.CRASH_EXIT_CODE)
            # Observe the sender's piggybacked clock before the handler
            # runs, so every event the handler records happens-after
            # everything the sender did up to this exchange.
            self.endpoint.vclock.merge(dict(request.clock))
            message = Message(
                src=request.src,
                dst=request.dst,
                kind=kind,
                payload=request.payload,
            )
            body = await self._loop.run_in_executor(
                self._executor, self.endpoint.handle, message
            )
            if not request.expects_reply and body:
                raise TransportError(
                    f"one-way {kind} message produced a reply"
                )
            reply = Reply(
                request.exchange_id,
                STATUS_OK,
                body,
                clock=clock_to_wire(self.endpoint.vclock.tick()),
            )
        except Exception as exc:  # noqa: BLE001 - ship transport errors
            reply = Reply(
                request.exchange_id,
                STATUS_HANDLER_ERROR,
                f"{type(exc).__name__}: {exc}".encode("utf-8"),
                clock=clock_to_wire(self.endpoint.vclock.tick()),
            )
        return encode_frame(reply)

    # -- frame I/O ------------------------------------------------------------

    @staticmethod
    async def _read_frame(reader: asyncio.StreamReader):
        """Read one frame; ``None`` on clean EOF."""
        try:
            prefix = await reader.readexactly(4)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise FramingError(
                "connection closed mid-frame (truncated length prefix)"
            ) from None
        length = frame_length(prefix)
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise FramingError(
                "connection closed mid-frame (truncated body)"
            ) from None
        return decode_frame(body)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TcpTransport({self.site_id!r}, address={self.address!r})"
        )
