"""A zero-copy shared-memory carrier: segment-offset page shipping.

:class:`ShmTransport` is the third carrier beside the simulator and
:class:`~repro.transport.tcp.TcpTransport`.  It speaks the exact same
:class:`~repro.transport.base.Transport` / ``Endpoint`` contract —
every runtime, workload, benchmark and test runs on it unmodified via
``make_world(transport="shm")`` — but nothing it ships crosses a
socket.  Control traffic flows through lock-free SPSC ring buffers in
a shared *connection segment*; bulk payloads (protected-page fills,
activity transfers, write-back batches) never enter the rings at all:
the sender parks the bytes once in its own *data segment* and ships a
``SEG_REQUEST`` / ``SEG_REPLY`` frame carrying only ``(segment,
offset, length, extent, epoch)`` — the swizzling target of a long
pointer becomes a segment offset, and the receiver reads the payload
in place through a ``memoryview``.

Layout and protocol
-------------------

Three kinds of POSIX shared-memory segment, all named under the
transport's random base name (``srpc-<hex>``):

* the **listener segment** (the base name itself) is the transport's
  published address — directory registrations carry it in the ``host``
  field with port 0.  Its header holds magic, protocol version, owner
  pid and a ready/closed word so a dialer can refuse a corpse.
* a **connection segment** (``<listener>.c<hex>``) is created by each
  dialer: a header with per-side closed flags and heartbeat words,
  then two slotted SPSC rings (dialer→listener, listener→dialer).
  A slot is ``[seq:u64][len:u32][pad][payload]``; the producer writes
  length and payload first and publishes by storing ``seq = pos + 1``
  last, the consumer retires the slot by storing ``seq = pos + slots``
  (Vyukov's sequence scheme, futex-free: both sides spin with a short
  sleep backoff; aligned 8-byte stores are the only synchronisation).
* the **data segment** (``<listener>.d``) backs the zero-copy path:
  a :class:`SegmentAllocator` hands out epoch-stamped *extents*
  (``[stamp:u64][len:u32][pad]`` + payload, stamp written last as the
  publication barrier).  The receiver validates the segment epoch and
  extent stamp before reading and acknowledges with ``SEG_ACK`` when
  done, which unpins the extent for reuse.  The two-phase write-back
  of DESIGN.md §12 commits *in place*: ``WRITEBACK_PREPARE`` stages a
  :class:`SegmentLease` on the staged batch (the bytes stay in the
  sender's segment), and ``WRITEBACK_COMMIT`` applies through the
  staged view and releases the lease — the commit is the flip of the
  extent's stamp word from pinned to retired, not a re-ship of pages.

Reliability mirrors :class:`TcpTransport` frame for frame: exchange
ids carry a per-boot incarnation, senders retransmit on timeout with
exponential backoff, receivers suppress duplicates through the shared
:class:`~repro.transport.base.ReplyCache` plus an in-flight table, and
the same :class:`~repro.transport.tcp.FaultInjector` drops, duplicates
and crash-kills frames for the crash-matrix tests.  Peer death is
detected by heartbeat words going stale (or a closed flag) — never a
hang — and a dying transport bumps its data segment's epoch so any
extent reference still in flight fails validation instead of reading
freed memory (no torn page can be observed).

Every exchange carries the PR 6 vector clocks in its frame header, and
every zero-copy mapping records a ``segment-handover`` trace event
(checked offline by rule SRPC330 and replayed by the SRPC4xx
sanitizer).  Segments a crashed process left behind are reaped by
:func:`purge_stale_segments`, keyed on the owner pid in each header.
"""

from __future__ import annotations

import itertools
import os
import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.simnet.clock import CostModel
from repro.simnet.message import Message, MessageKind
from repro.simnet.stats import StatsCollector
from repro.transport.base import (
    Endpoint,
    RetryPolicy,
    Transport,
    TransportError,
)
from repro.transport.framing import (
    PROTOCOL_VERSION,
    STATUS_HANDLER_ERROR,
    STATUS_OK,
    FramingError,
    Frame,
    Goodbye,
    Hello,
    Ping,
    Pong,
    Reply,
    Request,
    SegAck,
    SegReply,
    SegRequest,
    Welcome,
    clock_to_wire,
    decode_frame,
    encode_frame,
)
from repro.transport.tcp import (
    HANDSHAKE_TIMEOUT,
    FaultInjector,
    HandshakeError,
    RemoteHandlerError,
)
from repro.transport.wallclock import WallClock

#: Where the kernel exposes POSIX shared memory objects.
SHM_DIR = "/dev/shm"

#: Listener/data/connection segment names all start with this.
NAME_PREFIX = "srpc-"

#: Data segment capacity (``--segment-size``).
DEFAULT_SEGMENT_SIZE = 16 * 1024 * 1024

#: Slots per SPSC ring (``--ring-slots``).
DEFAULT_RING_SLOTS = 64

#: Payload capacity of one ring slot; frames that do not fit ship
#: their payload through the data segment instead.
DEFAULT_SLOT_BYTES = 4096

#: Seconds of silent heartbeat after which a peer is declared dead.
DEFAULT_PEER_TIMEOUT = 2.0

#: How often the poller bumps its heartbeat words.
HEARTBEAT_INTERVAL = 0.05

#: How often the listener rescans ``/dev/shm`` for new dialers.
ACCEPT_SCAN_INTERVAL = 0.002

#: A pinned extent whose SEG_ACK never arrives is reclaimed after
#: this many seconds (the peer crashed mid-read, or a retained
#: write-back lease was orphaned by an aborted session).
PIN_TTL = 60.0

_LISTENER_MAGIC = b"SRPCLSN1"
_CONN_MAGIC = b"SRPCCON1"
_DATA_MAGIC = b"SRPCDAT1"

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

# Listener segment header offsets.
_L_MAGIC, _L_VERSION, _L_READY, _L_CLOSED, _L_PID = 0, 8, 12, 16, 24
_LISTENER_SEG_SIZE = 64

# Connection segment header offsets (rings follow at _CONN_HEADER).
_C_MAGIC, _C_VERSION, _C_READY = 0, 8, 12
_C_CLOSED_A, _C_CLOSED_B = 16, 20
_C_HB_A, _C_HB_B, _C_PID_A, _C_PID_B = 24, 32, 40, 48
_CONN_HEADER = 64

# Data segment header offsets (extents follow at SegmentAllocator.HEADER).
_D_MAGIC, _D_VERSION, _D_EPOCH, _D_PID, _D_SIZE = 0, 8, 16, 24, 32

# Per-slot ring header: published sequence number, payload length.
_SLOT_HEADER = 16

# Per-extent header: publication stamp, payload length.
_EXTENT_HEADER = 16


def _ring_decode(data: bytes) -> Frame:
    """Decode one ring slot (a whole wire image, prefix included).

    Slots carry :func:`encode_frame` output verbatim — the 4-byte
    length prefix is redundant next to the slot's own length word, but
    keeping it means recorded frames are byte-identical across the TCP
    and shm carriers.
    """
    return decode_frame(memoryview(data)[4:])


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Detach ``shm`` from the resource tracker.

    CPython (bpo-39959) registers shared memory with the tracker on
    *attach* as well as create, so any process that merely mapped a
    segment would unlink it on exit — yanking live memory out from
    under its surviving peers and spewing leak warnings.  Ownership is
    ours to manage: each segment is unlinked exactly once, by its
    creator's ``close()`` or by :func:`purge_stale_segments`.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker is an implementation detail
        pass


def _create_segment(name: str, size: int) -> shared_memory.SharedMemory:
    shm = shared_memory.SharedMemory(name=name, create=True, size=size)
    _untrack(shm)
    return shm


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    shm = shared_memory.SharedMemory(name=name)
    _untrack(shm)
    return shm


def _close_segment(
    shm: Optional[shared_memory.SharedMemory], unlink: bool = False
) -> None:
    """Best-effort unmap (and unlink) tolerating exported views.

    ``mmap.close`` refuses while zero-copy ``memoryview``s over the
    segment are still alive (``BufferError``); the mapping then simply
    lives until process exit.  ``unlink`` always proceeds — a POSIX
    shm object stays readable for everyone who already mapped it.
    """
    if shm is None:
        return
    if unlink:
        # Not shm.unlink(): that would send a second UNREGISTER to the
        # resource tracker (we already detached in ``_untrack``), and
        # the tracker daemon logs a KeyError for every unpaired one.
        try:
            import _posixshmem

            _posixshmem.shm_unlink(shm._name)
        except FileNotFoundError:
            pass
        except Exception:  # pragma: no cover - teardown best effort
            pass
    try:
        shm.close()
    except BufferError:
        # Zero-copy views over the mapping are still alive.  Hand the
        # mmap over to them (it unmaps when the last view dies), close
        # the fd now, and blank the object so its ``__del__`` does not
        # retry ``close()`` and re-raise at GC time.
        try:
            shm._mmap = None
            if shm._fd >= 0:
                os.close(shm._fd)
                shm._fd = -1
        except Exception:  # pragma: no cover - teardown best effort
            pass
    except Exception:  # pragma: no cover - teardown best effort
        pass


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    except OSError:  # pragma: no cover - defensive
        return False
    return True


def purge_stale_segments(prefix: str = NAME_PREFIX) -> List[str]:
    """Unlink segments whose recorded owner process is dead.

    Crash tests kill hosts with ``os._exit``, which never runs
    ``close()``; the segments they leave in :data:`SHM_DIR` carry the
    owner pid in their header, so anybody (the next test, a fresh
    host) can reap them.  Returns the names unlinked.
    """
    reaped: List[str] = []
    try:
        names = sorted(os.listdir(SHM_DIR))
    except OSError:  # pragma: no cover - no /dev/shm
        return reaped
    for name in names:
        if not name.startswith(prefix):
            continue
        try:
            shm = _attach_segment(name)
        except (FileNotFoundError, OSError, ValueError):
            continue
        try:
            magic = bytes(shm.buf[:8])
            if magic == _LISTENER_MAGIC:
                pid = _U64.unpack_from(shm.buf, _L_PID)[0]
            elif magic == _CONN_MAGIC:
                pid = _U64.unpack_from(shm.buf, _C_PID_A)[0]
            elif magic == _DATA_MAGIC:
                pid = _U64.unpack_from(shm.buf, _D_PID)[0]
            else:
                continue
            if not _pid_alive(pid):
                reaped.append(name)
        finally:
            _close_segment(shm, unlink=name in reaped)
    return reaped


class _Backoff:
    """Spin → yield → sleep, the futex-free waiting discipline.

    A handful of raw spins catches the common case (the peer is about
    to publish), ``sleep(0)`` yields the GIL to in-process peers, and
    a short capped sleep keeps an idle poller near-free while bounding
    added latency to ~0.2 ms.
    """

    __slots__ = ("spins",)

    def __init__(self) -> None:
        self.spins = 0

    def reset(self) -> None:
        self.spins = 0

    def pause(self) -> None:
        self.spins += 1
        if self.spins <= 16:
            return
        if self.spins <= 64:
            time.sleep(0)
            return
        time.sleep(min(0.0002, 0.00001 * (self.spins - 64)))


class _Ring:
    """One SPSC slotted ring inside a connection segment.

    Exactly one process produces and exactly one consumes; within the
    producing process a lock serialises concurrent senders, so the
    cross-process protocol stays single-producer.  Publication relies
    on aligned 8-byte stores being atomic and ordered after the
    payload write (x86-64 TSO; CPython's ``pack_into`` into an aligned
    ``memoryview`` is a single 8-byte store).
    """

    def __init__(
        self, mv: memoryview, base: int, slots: int, slot_bytes: int
    ) -> None:
        self._mv = mv
        self._base = base
        self._slots = slots
        self._stride = _SLOT_HEADER + slot_bytes
        self.capacity = slot_bytes
        self._pos = 0  # this side's produce (or consume) position
        self._lock = threading.Lock()

    @staticmethod
    def region_size(slots: int, slot_bytes: int) -> int:
        return slots * (_SLOT_HEADER + slot_bytes)

    @staticmethod
    def format(mv: memoryview, base: int, slots: int, slot_bytes: int) -> None:
        """Initialise slot sequence numbers for an empty ring."""
        stride = _SLOT_HEADER + slot_bytes
        for index in range(slots):
            _U64.pack_into(mv, base + index * stride, index)
            _U32.pack_into(mv, base + index * stride + 8, 0)

    def try_push(self, data: bytes) -> bool:
        """Publish one frame; False when the ring is full."""
        if len(data) > self.capacity:
            raise FramingError(
                f"frame of {len(data)} bytes exceeds the ring slot "
                f"capacity of {self.capacity}"
            )
        with self._lock:
            pos = self._pos
            slot = self._base + (pos % self._slots) * self._stride
            if _U64.unpack_from(self._mv, slot)[0] != pos:
                return False
            body = slot + _SLOT_HEADER
            _U32.pack_into(self._mv, slot + 8, len(data))
            self._mv[body : body + len(data)] = data
            # The store of seq = pos + 1 is the publication barrier.
            _U64.pack_into(self._mv, slot, pos + 1)
            self._pos = pos + 1
            return True

    def try_pop(self) -> Optional[bytes]:
        """Consume one frame; None when the ring is empty."""
        pos = self._pos
        slot = self._base + (pos % self._slots) * self._stride
        if _U64.unpack_from(self._mv, slot)[0] != pos + 1:
            return None
        length = _U32.unpack_from(self._mv, slot + 8)[0]
        body = slot + _SLOT_HEADER
        data = bytes(self._mv[body : body + length])
        # Retiring the slot hands it back to the producer's next lap.
        _U64.pack_into(self._mv, slot, pos + self._slots)
        self._pos = pos + 1
        return data


class _Waiter:
    """One blocked exchange (or ping) awaiting its reply frame."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Optional[Frame] = None
        self.error: Optional[BaseException] = None

    def resolve(self, frame: Frame) -> None:
        if not self.event.is_set():
            self.value = frame
            self.event.set()

    def fail(self, error: BaseException) -> None:
        if not self.event.is_set():
            self.error = error
            self.event.set()

    def wait(self, timeout: float) -> Frame:
        if not self.event.wait(timeout):
            raise TimeoutError("no reply within the attempt timeout")
        if self.error is not None:
            raise self.error
        assert self.value is not None
        return self.value


class _Connection:
    """One connection segment: two rings plus liveness words."""

    def __init__(
        self,
        name: str,
        shm: shared_memory.SharedMemory,
        side: str,
        slots: int,
        slot_bytes: int,
        owned: bool,
    ) -> None:
        self.name = name
        self.shm = shm
        self.side = side  # "a" dialed it, "b" accepted it
        self.owned = owned  # we created the segment (and unlink it)
        self.peer: Optional[str] = None
        self.alive = True
        self.pending: Dict[int, _Waiter] = {}
        self.pings: Dict[int, _Waiter] = {}
        mv = shm.buf
        self._mv = mv
        ring_a = _CONN_HEADER
        ring_b = ring_a + _Ring.region_size(slots, slot_bytes)
        if side == "a":
            self.tx = _Ring(mv, ring_a, slots, slot_bytes)
            self.rx = _Ring(mv, ring_b, slots, slot_bytes)
            self._hb_mine, self._hb_theirs = _C_HB_A, _C_HB_B
            self._closed_mine, self._closed_theirs = (
                _C_CLOSED_A,
                _C_CLOSED_B,
            )
        else:
            self.tx = _Ring(mv, ring_b, slots, slot_bytes)
            self.rx = _Ring(mv, ring_a, slots, slot_bytes)
            self._hb_mine, self._hb_theirs = _C_HB_B, _C_HB_A
            self._closed_mine, self._closed_theirs = (
                _C_CLOSED_B,
                _C_CLOSED_A,
            )
        self._hb_value = 0
        self._peer_hb = -1
        self._peer_hb_seen = time.monotonic()

    def beat(self) -> None:
        """Bump this side's heartbeat word."""
        self._hb_value += 1
        _U64.pack_into(self._mv, self._hb_mine, self._hb_value)

    def peer_stalled(self, timeout: float) -> bool:
        """True once the peer's heartbeat word has been silent too long."""
        current = _U64.unpack_from(self._mv, self._hb_theirs)[0]
        now = time.monotonic()
        if current != self._peer_hb:
            self._peer_hb = current
            self._peer_hb_seen = now
            return False
        return now - self._peer_hb_seen > timeout

    def peer_closed(self) -> bool:
        return _U32.unpack_from(self._mv, self._closed_theirs)[0] != 0

    def mark_closed(self) -> None:
        try:
            _U32.pack_into(self._mv, self._closed_mine, 1)
        except Exception:  # pragma: no cover - segment already unmapped
            pass

    def write(self, data: bytes, timeout: float) -> None:
        """Push one frame, spinning while the ring is full."""
        deadline = time.monotonic() + timeout
        backoff = _Backoff()
        while True:
            if not self.alive:
                raise ConnectionResetError(
                    f"connection {self.name} is closed"
                )
            if self.tx.try_push(data):
                return
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"ring to {self.peer!r} full for {timeout}s"
                )
            backoff.pause()

    def try_write(self, data: bytes, timeout: float = 0.2) -> bool:
        """Push best-effort (acks, goodbyes); False if it did not fit."""
        try:
            self.write(data, timeout)
            return True
        except (TimeoutError, ConnectionResetError, ValueError, TypeError):
            return False

    def abort(self, error: Exception) -> None:
        """Mark dead and fail every outstanding waiter."""
        self.alive = False
        for waiter in list(self.pending.values()):
            waiter.fail(error)
        self.pending.clear()
        for waiter in list(self.pings.values()):
            waiter.fail(error)
        self.pings.clear()

    def release(self) -> None:
        """Unmap (and unlink, if we created the segment)."""
        self._mv = memoryview(b"")
        self.tx = self.rx = None  # type: ignore[assignment]
        _close_segment(self.shm, unlink=self.owned)


class SegmentLease:
    """A receiver's claim on one extent of a peer's data segment.

    Attached to :attr:`Message.carrier_ref` whenever a payload is a
    zero-copy view.  The transport settles the lease (sends the
    ``SEG_ACK`` that unpins the extent) as soon as the handler
    returns, *unless* the handler called :meth:`retain` — the staged
    write-back does exactly that, keeping the batch pinned in the
    sender's segment until ``WRITEBACK_COMMIT`` applies it in place
    and releases.
    """

    def __init__(
        self,
        transport: "ShmTransport",
        conn: _Connection,
        segment: str,
        offset: int,
        extent: int,
        epoch: int,
        view: memoryview,
    ) -> None:
        self._transport = transport
        self._conn = conn
        self.segment = segment
        self.offset = offset
        self.extent = extent
        self.epoch = epoch
        self.view: Optional[memoryview] = view
        self.retained = False
        self._released = False
        self._lock = threading.Lock()

    def retain(self) -> None:
        """Keep the extent pinned past the handler's return."""
        with self._lock:
            if self._released:
                raise TransportError(
                    f"lease on {self.segment}+{self.offset} already released"
                )
            self.retained = True

    def validate(self) -> None:
        """Re-check the extent's stamp and epoch (tear detection)."""
        self._transport._validate_extent(
            self.segment, self.offset, self.extent, self.epoch
        )

    def release(self) -> None:
        """Drop the view and acknowledge the extent back to its owner."""
        with self._lock:
            if self._released:
                return
            self._released = True
            self.view = None
        self._transport._lease_released(self)
        ack = encode_frame(
            SegAck(segment=self.segment, offset=self.offset,
                   extent=self.extent)
        )
        # Best effort: a dead connection means the owner is reaping
        # pins for this peer (or expiring them by TTL) anyway.
        self._conn.try_write(ack)

    def settle(self) -> None:
        """Release unless the handler retained the lease."""
        if not self.retained:
            self.release()


class SegmentPayload:
    """A payload already resident in this transport's data segment.

    The fully zero-copy *send* path: ``reserve_payload`` hands out a
    writable view straight into the data segment, the caller fills it
    (or decodes/encodes in place), and ``exchange`` ships only the
    offset — no per-byte work happens in the carrier at all.  Plain
    ``bytes`` payloads still work everywhere and cost the carrier one
    copy into the segment.
    """

    __slots__ = ("offset", "stamp", "view", "length", "published")

    def __init__(
        self, offset: int, stamp: int, view: memoryview, length: int
    ) -> None:
        self.offset = offset
        self.stamp = stamp
        self.view = view
        self.length = length
        self.published = False

    def __len__(self) -> int:
        return self.length

    def __bool__(self) -> bool:
        return self.length > 0


class SegmentAllocator:
    """Epoch-stamped extent allocator over one data segment.

    Extents are bump-allocated and *pinned* until the receiving peer
    acknowledges them (``SEG_ACK``) — the allocator skips pinned
    regions when the bump pointer laps the segment.  Every extent
    carries a monotonically increasing stamp written *after* its
    payload: the stamp both publishes the bytes and lets a reader
    detect a stale or torn reference (stamp mismatch).  The segment
    header's epoch word invalidates every outstanding reference at
    once — bumped when the owner shuts down or a peer is declared
    dead, so a crashed owner's extents fail validation instead of
    being read half-written.
    """

    HEADER = 64

    def __init__(self, name: str, size: int) -> None:
        if size < self.HEADER + _EXTENT_HEADER + 64:
            raise ValueError(f"data segment size {size} too small")
        self.name = name
        self.size = size
        self.shm = _create_segment(name, size)
        self._mv = self.shm.buf
        # The magic goes in LAST: purge_stale_segments treats a valid
        # magic with a dead (or zero) owner pid as reapable, so the pid
        # must be visible before the segment identifies itself.
        _U32.pack_into(self._mv, _D_VERSION, PROTOCOL_VERSION)
        _U64.pack_into(self._mv, _D_EPOCH, 1)
        _U64.pack_into(self._mv, _D_PID, os.getpid())
        _U64.pack_into(self._mv, _D_SIZE, size)
        self._mv[_D_MAGIC : _D_MAGIC + 8] = _DATA_MAGIC
        self._epoch = 1
        self._stamps = itertools.count(1)
        self._bump = self.HEADER
        # offset -> [end, stamp, pinned_at, peer]
        self._pins: Dict[int, List] = {}
        self._lock = threading.Lock()

    @property
    def epoch(self) -> int:
        return self._epoch

    def bump_epoch(self) -> None:
        """Invalidate every outstanding extent reference at once."""
        with self._lock:
            self._epoch += 1
            _U64.pack_into(self._mv, _D_EPOCH, self._epoch)

    def pinned_bytes(self) -> int:
        with self._lock:
            return sum(end - off for off, (end, *_rest) in self._pins.items())

    def reserve(
        self,
        length: int,
        peer: Optional[str] = None,
        timeout: float = HANDSHAKE_TIMEOUT,
    ) -> Tuple[int, int, memoryview]:
        """Pin a fresh extent; returns ``(offset, stamp, view)``.

        The view is the writable payload region.  The extent is not
        visible to readers until :meth:`publish` stamps it.
        """
        need = _EXTENT_HEADER + length
        need += (-need) % 64
        if need > self.size - self.HEADER:
            raise TransportError(
                f"payload of {length} bytes exceeds the {self.size}-byte "
                f"data segment {self.name!r} (raise --segment-size)"
            )
        deadline = time.monotonic() + timeout
        backoff = _Backoff()
        while True:
            with self._lock:
                offset = self._find(need)
                if offset is not None:
                    stamp = next(self._stamps)
                    self._pins[offset] = [
                        offset + need, stamp, time.monotonic(), peer,
                    ]
                    break
            self.expire_pins()
            if time.monotonic() > deadline:
                raise TransportError(
                    f"data segment {self.name!r} has no room for "
                    f"{length} bytes ({len(self._pins)} extents pinned; "
                    "raise --segment-size)"
                )
            backoff.pause()
        body = offset + _EXTENT_HEADER
        _U32.pack_into(self._mv, offset + 8, length)
        return offset, stamp, self._mv[body : body + length]

    def _find(self, need: int) -> Optional[int]:
        """First gap of ``need`` bytes not overlapping a pinned extent."""
        pins = sorted(
            (off, entry[0]) for off, entry in self._pins.items()
        )
        for start in (self._bump, self.HEADER):
            pos = start
            while pos + need <= self.size:
                clash = next(
                    (p for p in pins if p[0] < pos + need and p[1] > pos),
                    None,
                )
                if clash is None:
                    self._bump = pos + need
                    return pos
                pos = clash[1]
        return None

    def publish(self, offset: int) -> None:
        """Stamp the extent — the store that makes it readable."""
        with self._lock:
            entry = self._pins.get(offset)
            if entry is None:
                raise TransportError(
                    f"publish of unreserved extent at offset {offset}"
                )
            stamp = entry[1]
        _U64.pack_into(self._mv, offset, stamp)

    def release(self, offset: int, stamp: int) -> bool:
        """Unpin the extent, guarded by its stamp (stale acks no-op)."""
        with self._lock:
            entry = self._pins.get(offset)
            if entry is None or entry[1] != stamp:
                return False
            del self._pins[offset]
            return True

    def release_peer(self, peer: str) -> int:
        """Unpin everything shipped to a now-dead peer."""
        with self._lock:
            stale = [
                off for off, entry in self._pins.items()
                if entry[3] == peer
            ]
            for off in stale:
                del self._pins[off]
            return len(stale)

    def expire_pins(self, ttl: float = PIN_TTL) -> int:
        """Reclaim pins whose SEG_ACK never arrived (crashed readers)."""
        now = time.monotonic()
        with self._lock:
            stale = [
                off for off, entry in self._pins.items()
                if now - entry[2] > ttl
            ]
            for off in stale:
                del self._pins[off]
            return len(stale)

    def close(self) -> None:
        """Invalidate outstanding references, unmap and unlink."""
        try:
            self.bump_epoch()
        except (ValueError, TypeError):  # pragma: no cover - unmapped
            pass
        self._mv = memoryview(b"")
        _close_segment(self.shm, unlink=True)


class ShmEndpoint(Endpoint):
    """The one address space a :class:`ShmTransport` hosts."""

    def __init__(
        self,
        site_id: str,
        transport: "ShmTransport",
        reply_cache_limit: int = 4096,
    ) -> None:
        super().__init__(site_id, reply_cache_limit=reply_cache_limit)
        self.transport = transport

    def send(
        self,
        dst: str,
        kind: MessageKind,
        payload: bytes,
        reply_kind: Optional[MessageKind] = None,
        timeout: Optional[float] = None,
    ) -> bytes:
        """Run one framed exchange with ``dst``; blocks until replied."""
        return self.transport.exchange(
            dst, kind, payload, reply_kind, timeout=timeout
        )


class ShmTransport(Transport):
    """Ring-buffered, segment-offset-shipped at-most-once exchanges.

    One instance per OS process (or per simulated "process" when tests
    run several transports inside one interpreter — the rings work
    identically across threads).  ``peers`` maps site ids to listener
    segment names; unknown destinations resolve through the site
    directory at ``directory_site``, whose records carry the segment
    name in their ``host`` field (port 0).
    """

    def __init__(
        self,
        site_id: str,
        *,
        clock=None,
        cost_model: Optional[CostModel] = None,
        stats: Optional[StatsCollector] = None,
        peers: Optional[Dict[str, str]] = None,
        directory_site: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultInjector] = None,
        reply_cache_limit: int = 4096,
        max_workers: int = 32,
        listen: bool = True,
        segment_size: int = DEFAULT_SEGMENT_SIZE,
        ring_slots: int = DEFAULT_RING_SLOTS,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
        peer_timeout: float = DEFAULT_PEER_TIMEOUT,
        protocol_version: int = PROTOCOL_VERSION,
        accept_versions: Optional[Iterable[int]] = None,
    ) -> None:
        super().__init__(
            clock=clock if clock is not None else WallClock(),
            cost_model=cost_model,
            stats=stats,
        )
        if ring_slots < 2 or slot_bytes < 256:
            raise ValueError(
                f"bad ring geometry slots={ring_slots} bytes={slot_bytes}"
            )
        self.site_id = site_id
        self._listen = listen
        # Shared by reference (like TcpTransport): make_world mutates
        # one peer table in place as each stack's listener comes up.
        self._peers: Dict[str, str] = peers if peers is not None else {}
        self._directory_site = directory_site
        self._retry = retry if retry is not None else RetryPolicy()
        self._faults = faults
        self._segment_size = segment_size
        self._ring_slots = ring_slots
        self._slot_bytes = slot_bytes
        self._peer_timeout = peer_timeout
        self._protocol_version = protocol_version
        self._accept_versions = frozenset(
            accept_versions if accept_versions is not None
            else (protocol_version,)
        )
        # Payloads above this ship as segment extents; the threshold
        # leaves headroom in the slot for the frame envelope.
        self.spill_threshold = slot_bytes - 512
        self.endpoint = ShmEndpoint(
            site_id, self, reply_cache_limit=reply_cache_limit
        )
        self.name = NAME_PREFIX + os.urandom(6).hex()
        self.address: Optional[str] = None
        self.retransmissions = 0
        self.dials: Dict[str, int] = {}
        self.handovers = 0
        incarnation = int.from_bytes(os.urandom(4), "big")
        self._exchange_ids = itertools.count((incarnation << 32) | 1)
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix=f"shm-{site_id}"
        )
        self._allocator: Optional[SegmentAllocator] = None
        self._listener_shm: Optional[shared_memory.SharedMemory] = None
        self._conns: Dict[str, _Connection] = {}  # segment name -> conn
        self._by_peer: Dict[str, _Connection] = {}
        self._accepting: Dict[str, Tuple[_Connection, float]] = {}
        self._seen_conn_names: Set[str] = set()
        self._conn_lock = threading.Lock()
        self._dial_lock = threading.Lock()
        self._serve_lock = threading.Lock()
        self._inflight: Dict[Tuple[str, int], threading.Event] = {}
        self._attached: Dict[str, Tuple[shared_memory.SharedMemory,
                                        memoryview]] = {}
        self._attach_lock = threading.Lock()
        self._deferred = threading.local()
        self._all_deferred: Set[SegmentLease] = set()
        self._deferred_lock = threading.Lock()
        self._poller: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._closed = False

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> Optional[str]:
        """Create segments, start the poller; return the address
        (the listener segment name) or ``None`` when not listening."""
        if self._poller is not None:
            raise TransportError(
                f"transport for {self.site_id!r} already started"
            )
        if not os.path.isdir(SHM_DIR):  # pragma: no cover - exotic host
            raise TransportError(
                f"shared-memory carrier needs {SHM_DIR} (POSIX shm)"
            )
        self._allocator = SegmentAllocator(
            self.name + ".d", self._segment_size
        )
        if self._listen:
            shm = _create_segment(self.name, _LISTENER_SEG_SIZE)
            mv = shm.buf
            # Magic last: a concurrent purge must never see the magic
            # with the owner-pid word still zero (it would reap us).
            _U32.pack_into(mv, _L_VERSION, self._protocol_version)
            _U64.pack_into(mv, _L_PID, os.getpid())
            _U32.pack_into(mv, _L_CLOSED, 0)
            _U32.pack_into(mv, _L_READY, 1)
            mv[_L_MAGIC : _L_MAGIC + 8] = _LISTENER_MAGIC
            self._listener_shm = shm
            self.address = self.name
        self._poller = threading.Thread(
            target=self._poll_loop,
            name=f"shm-poll-{self.site_id}",
            daemon=True,
        )
        self._poller.start()
        return self.address

    def close(self) -> None:
        """Say goodbye, invalidate the segment epoch, unlink everything."""
        if self._closed:
            return
        self._closed = True
        # Settle zero-copy reply leases still deferred anywhere.
        with self._deferred_lock:
            leases = list(self._all_deferred)
        for lease in leases:
            lease.release()
        goodbye = encode_frame(Goodbye(self.site_id, "shutting down"))
        with self._conn_lock:
            conns = list(self._conns.values())
        for conn in conns:
            if conn.alive:
                conn.mark_closed()
                conn.try_write(goodbye, timeout=0.05)
            conn.abort(ConnectionResetError("transport closed"))
        if self._listener_shm is not None:
            try:
                _U32.pack_into(self._listener_shm.buf, _L_CLOSED, 1)
            except (ValueError, TypeError):  # pragma: no cover
                pass
        self._stop.set()
        if self._poller is not None:
            self._poller.join(HANDSHAKE_TIMEOUT)
        self._executor.shutdown(wait=False)
        with self._conn_lock:
            conns = list(self._conns.values())
            self._conns.clear()
            self._by_peer.clear()
            for conn, _deadline in self._accepting.values():
                conns.append(conn)
            self._accepting.clear()
        for conn in conns:
            conn.release()
        with self._attach_lock:
            attached = list(self._attached.values())
            self._attached.clear()
        for shm, _mv in attached:
            _close_segment(shm)
        if self._allocator is not None:
            self._allocator.close()
        _close_segment(self._listener_shm, unlink=True)
        self._listener_shm = None

    # -- peer addressing ------------------------------------------------------

    def add_peer(self, site_id: str, address: Union[str, Tuple]) -> None:
        """Teach this transport which listener segment ``site_id`` owns.

        Accepts a bare segment name or a directory-shaped ``(host,
        port)`` pair whose host carries the segment name.
        """
        if isinstance(address, tuple):
            address = address[0]
        self._peers[site_id] = str(address)

    def _resolve(self, dst: str) -> str:
        name = self._peers.get(dst)
        if name is not None:
            return name
        if self._directory_site is not None and dst != self._directory_site:
            from repro.namesvc.directory import (
                decode_lookup_reply,
                encode_lookup,
            )

            payload = self.exchange(
                self._directory_site,
                MessageKind.SITE_LOOKUP,
                encode_lookup(dst),
                MessageKind.DIR_REPLY,
            )
            host, _port, _age = decode_lookup_reply(bytes(payload), dst)
            self._peers[dst] = host
            return host
        raise TransportError(
            f"site {self.site_id!r} has no route to {dst!r}"
        )

    # -- zero-copy send buffers ----------------------------------------------

    def reserve_payload(self, length: int) -> SegmentPayload:
        """A writable view straight into this transport's data segment.

        Fill it and pass the :class:`SegmentPayload` to ``exchange`` /
        ``send`` in place of ``bytes``: the carrier then ships only
        the segment offset — zero per-byte cost end to end.
        """
        if self._allocator is None:
            raise TransportError(
                f"transport for {self.site_id!r} is not started"
            )
        offset, stamp, view = self._allocator.reserve(length)
        return SegmentPayload(offset, stamp, view, length)

    # -- client side ----------------------------------------------------------

    def exchange(
        self,
        dst: str,
        kind: MessageKind,
        payload: Union[bytes, SegmentPayload],
        reply_kind: Optional[MessageKind] = None,
        timeout: Optional[float] = None,
    ) -> bytes:
        """Blocking request/response exchange with at-most-once retries.

        ``timeout`` caps the *whole* exchange — handshakes, ring
        pushes, retransmits and all — failing it with
        :class:`TransportError` once elapsed instead of running the
        full retry schedule.
        """
        if self._poller is None:
            raise TransportError(
                f"transport for {self.site_id!r} is not started"
            )
        if threading.current_thread() is self._poller:
            raise TransportError(
                "exchange() must not be called from the poller thread"
            )
        self._flush_deferred()
        cap = timeout
        deadline = time.monotonic() + cap if cap is not None else None
        name = self._resolve(dst)
        exchange_id = next(self._exchange_ids)
        spill: Optional[SegmentPayload] = None
        settled = False
        try:
            if isinstance(payload, SegmentPayload):
                spill = payload
            elif len(payload) > self.spill_threshold:
                spill = self.reserve_payload(len(payload))
                spill.view[:] = payload
            clock = clock_to_wire(self.endpoint.vclock.tick())
            if spill is not None:
                if not spill.published:
                    self._allocator.publish(spill.offset)
                    spill.published = True
                frame: Frame = SegRequest(
                    exchange_id=exchange_id,
                    src=self.site_id,
                    dst=dst,
                    kind=kind.value,
                    expects_reply=reply_kind is not None,
                    segment=self._allocator.name,
                    offset=spill.offset + _EXTENT_HEADER,
                    length=spill.length,
                    extent=spill.stamp,
                    epoch=self._allocator.epoch,
                    clock=clock,
                )
                logical = spill.view if spill.view is not None else b""
            else:
                frame = Request(
                    exchange_id=exchange_id,
                    src=self.site_id,
                    dst=dst,
                    kind=kind.value,
                    expects_reply=reply_kind is not None,
                    payload=bytes(payload),
                    clock=clock,
                )
                logical = frame.payload
            encoded = encode_frame(frame)
            reply = self._run_attempts(
                dst, name, kind, exchange_id, encoded, logical,
                cap, deadline,
            )
            settled = True  # peer acks (or TTL-reaps) the extent now
            return self._finish(dst, kind, reply_kind, reply)
        finally:
            if not settled and spill is not None and self._allocator:
                self._allocator.release(spill.offset, spill.stamp)

    def _run_attempts(
        self,
        dst: str,
        name: str,
        kind: MessageKind,
        exchange_id: int,
        encoded: bytes,
        logical,
        cap: Optional[float],
        deadline: Optional[float],
    ) -> Frame:
        """The retry loop: transmit, wait, back off — TcpTransport's."""
        attempts = 0
        last_error: Optional[BaseException] = None
        for attempt_timeout in self._retry.timeouts():
            attempts += 1
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TransportError(
                        f"{kind.value} exchange {self.site_id!r}->"
                        f"{dst!r} exceeded its {cap}s cap after "
                        f"{attempts - 1} attempt(s) ({last_error})"
                    )
                attempt_timeout = min(attempt_timeout, remaining)
            try:
                conn = self._acquire(dst, name)
            except HandshakeError:
                raise
            except (ConnectionError, OSError, TimeoutError) as exc:
                last_error = exc
                self.note_timeout(
                    f"connect to {dst!r} failed ({exc}); retrying",
                    site=self.site_id,
                )
                time.sleep(min(attempt_timeout, 0.05))
                continue
            waiter = _Waiter()
            conn.pending[exchange_id] = waiter
            action = (
                self._faults.request_action() if self._faults else None
            )
            try:
                message = Message(
                    src=self.site_id, dst=dst, kind=kind, payload=logical
                )
                if action == FaultInjector.DROP:
                    # Charged as sent, lost in transit — the simulator's
                    # lossy path does exactly this.
                    self.note_message(message, stamp=self._stamp())
                    self.stats.record_event(
                        self.clock.now,
                        "loss",
                        f"injected drop of {kind.value} "
                        f"{self.site_id}->{dst}",
                        data={"site": self.site_id},
                    )
                else:
                    conn.write(encoded, attempt_timeout)
                    self.note_message(message, stamp=self._stamp())
                    if self._faults is not None and (
                        self._faults.crash_after_send(kind)
                    ):
                        # Planned death: the frame is in the ring (the
                        # peer will process it) but this process dies
                        # before its reply can land.
                        os._exit(FaultInjector.CRASH_EXIT_CODE)
                    if action == FaultInjector.DUPLICATE:
                        conn.write(encoded, attempt_timeout)
                        self.note_message(message, stamp=self._stamp())
                reply = waiter.wait(attempt_timeout)
            except (ConnectionError, OSError, TimeoutError) as exc:
                last_error = exc
                self.retransmissions += 1
                self.note_timeout(
                    f"{kind.value} exchange {self.site_id}->{dst} timed "
                    "out; retransmitting",
                    site=self.site_id,
                )
                continue
            finally:
                conn.pending.pop(exchange_id, None)
            return reply
        raise TransportError(
            f"{kind.value} exchange {self.site_id!r}->{dst!r} failed "
            f"after {attempts} attempts ({last_error})"
        )

    def _stamp(self) -> Optional[dict]:
        """The endpoint's causal stamp, or None when tracing is off."""
        return self.endpoint.stamp() if self.stats.tracing else None

    def _finish(
        self,
        dst: str,
        kind: MessageKind,
        reply_kind: Optional[MessageKind],
        reply: Frame,
    ) -> bytes:
        # The reply piggybacks the responder's clock: merging it makes
        # everything the handler did happen-before this site's next
        # traced event.
        self.endpoint.vclock.merge(dict(reply.clock))
        if isinstance(reply, SegReply):
            payload: bytes = self._open_reply(dst, reply)
        else:
            payload = reply.payload
        if reply.status == STATUS_HANDLER_ERROR:
            raise RemoteHandlerError(
                f"{kind.value} handler at {dst!r} failed: "
                f"{bytes(payload).decode('utf-8', 'replace')}"
            )
        if reply.status != STATUS_OK:
            raise TransportError(
                f"bad reply status {reply.status!r} from {dst!r}"
            )
        if reply_kind is None:
            if payload:
                raise TransportError(
                    f"one-way {kind} message to {dst!r} produced a reply"
                )
            return b""
        self.note_message(
            Message(
                src=dst,
                dst=self.site_id,
                kind=reply_kind,
                payload=payload,
            ),
            stamp=self._stamp(),
        )
        return payload

    def _open_reply(self, dst: str, reply: SegReply) -> memoryview:
        """Map a reply extent; the ack is deferred until this thread's
        next exchange so the caller can consume the view first."""
        conn = self._by_peer.get(dst)
        if conn is None or not conn.alive:
            raise TransportError(
                f"reply extent from {dst!r} arrived on a dead connection"
            )
        view, lease = self._map_extent(
            conn, dst, "reply", reply.segment, reply.offset,
            reply.length, reply.extent, reply.epoch,
        )
        self._defer_release(lease)
        return view

    def _defer_release(self, lease: SegmentLease) -> None:
        acks = getattr(self._deferred, "acks", None)
        if acks is None:
            acks = []
            self._deferred.acks = acks
        acks.append(lease)
        with self._deferred_lock:
            self._all_deferred.add(lease)

    def _flush_deferred(self) -> None:
        acks = getattr(self._deferred, "acks", None)
        if not acks:
            return
        pending, self._deferred.acks = list(acks), []
        for lease in pending:
            lease.release()

    def _lease_released(self, lease: SegmentLease) -> None:
        with self._deferred_lock:
            self._all_deferred.discard(lease)

    # -- connection management ------------------------------------------------

    def _acquire(self, dst: str, name: str) -> _Connection:
        conn = self._by_peer.get(dst)
        if conn is not None and conn.alive:
            return conn
        with self._dial_lock:
            conn = self._by_peer.get(dst)
            if conn is not None and conn.alive:
                return conn
            return self._dial(dst, name)

    def _dial(self, dst: str, listener_name: str) -> _Connection:
        try:
            listener = _attach_segment(listener_name)
        except (FileNotFoundError, OSError, ValueError) as exc:
            raise ConnectionRefusedError(
                f"no listener segment {listener_name!r} ({exc})"
            ) from None
        try:
            if bytes(listener.buf[:8]) != _LISTENER_MAGIC:
                raise ConnectionRefusedError(
                    f"segment {listener_name!r} is not a listener"
                )
            if _U32.unpack_from(listener.buf, _L_READY)[0] != 1 or (
                _U32.unpack_from(listener.buf, _L_CLOSED)[0] != 0
            ):
                raise ConnectionRefusedError(
                    f"listener {listener_name!r} is not accepting"
                )
            pid = _U64.unpack_from(listener.buf, _L_PID)[0]
            if not _pid_alive(pid):
                raise ConnectionRefusedError(
                    f"listener {listener_name!r} owner (pid {pid}) is dead"
                )
        finally:
            _close_segment(listener)
        conn_name = f"{listener_name}.c{os.urandom(4).hex()}"
        size = _CONN_HEADER + 2 * _Ring.region_size(
            self._ring_slots, self._slot_bytes
        )
        shm = _create_segment(conn_name, size)
        mv = shm.buf
        # Pid before magic: purge_stale_segments reaps any magicked
        # segment whose owner-pid word reads zero or dead.
        _U32.pack_into(mv, _C_VERSION, self._protocol_version)
        _U64.pack_into(mv, _C_PID_A, os.getpid())
        mv[_C_MAGIC : _C_MAGIC + 8] = _CONN_MAGIC
        ring_a = _CONN_HEADER
        ring_b = ring_a + _Ring.region_size(self._ring_slots,
                                            self._slot_bytes)
        _Ring.format(mv, ring_a, self._ring_slots, self._slot_bytes)
        _Ring.format(mv, ring_b, self._ring_slots, self._slot_bytes)
        _U32.pack_into(mv, _C_READY, 1)
        conn = _Connection(
            conn_name, shm, "a", self._ring_slots, self._slot_bytes,
            owned=True,
        )
        conn.peer = dst
        conn.beat()
        # Handshake runs on this thread; the poller takes over only
        # after the connection is registered (SPSC stays SPSC).
        hello = encode_frame(
            Hello(self._protocol_version, self.site_id)
        )
        conn.write(hello, HANDSHAKE_TIMEOUT)
        deadline = time.monotonic() + HANDSHAKE_TIMEOUT
        backoff = _Backoff()
        frame: Optional[Frame] = None
        while frame is None:
            data = conn.rx.try_pop()
            if data is not None:
                frame = _ring_decode(data)
                break
            if time.monotonic() > deadline:
                conn.release()
                raise ConnectionRefusedError(
                    f"no WELCOME from {dst!r} within {HANDSHAKE_TIMEOUT}s"
                )
            backoff.pause()
        if isinstance(frame, Goodbye):
            conn.release()
            raise HandshakeError(
                f"site {dst!r} refused the connection: {frame.reason}"
            )
        if (
            not isinstance(frame, Welcome)
            or frame.version != self._protocol_version
        ):
            conn.release()
            raise HandshakeError(
                f"bad handshake from {dst!r}: expected WELCOME v"
                f"{self._protocol_version}, got {frame!r}"
            )
        with self._conn_lock:
            self._conns[conn_name] = conn
            self._by_peer[dst] = conn
        self.dials[dst] = self.dials.get(dst, 0) + 1
        return conn

    def _drop_conn(self, conn: _Connection, error: Exception) -> None:
        conn.mark_closed()
        conn.abort(error)
        with self._conn_lock:
            self._conns.pop(conn.name, None)
            if conn.peer and self._by_peer.get(conn.peer) is conn:
                del self._by_peer[conn.peer]
        if conn.peer and self._allocator is not None:
            self._allocator.release_peer(conn.peer)
        conn.release()

    def ping(self, dst: str, timeout: float = 2.0) -> float:
        """Round-trip a transport-level PING; returns the RTT seconds."""
        if self._poller is None:
            raise TransportError(
                f"transport for {self.site_id!r} is not started"
            )
        name = self._resolve(dst)
        try:
            conn = self._acquire(dst, name)
        except (ConnectionError, OSError, TimeoutError) as exc:
            raise TransportError(
                f"no PONG from {dst!r} within {timeout}s ({exc})"
            ) from None
        token = next(self._exchange_ids)
        waiter = _Waiter()
        conn.pings[token] = waiter
        started = time.monotonic()
        try:
            conn.write(encode_frame(Ping(token)), timeout)
            waiter.wait(timeout)
        except (ConnectionError, OSError, TimeoutError) as exc:
            raise TransportError(
                f"no PONG from {dst!r} within {timeout}s ({exc})"
            ) from None
        finally:
            conn.pings.pop(token, None)
        return time.monotonic() - started

    # -- poller ---------------------------------------------------------------

    def _poll_loop(self) -> None:
        backoff = _Backoff()
        last_scan = 0.0
        last_beat = 0.0
        while not self._stop.is_set():
            progressed = False
            now = time.monotonic()
            if self._listen and now - last_scan >= ACCEPT_SCAN_INTERVAL:
                last_scan = now
                try:
                    progressed |= self._scan_for_dialers()
                except Exception:  # pragma: no cover - defensive
                    pass
            progressed |= self._pump_accepting(now)
            with self._conn_lock:
                conns = list(self._conns.values())
            beat = now - last_beat >= HEARTBEAT_INTERVAL
            if beat:
                last_beat = now
            for conn in conns:
                if not conn.alive:
                    continue
                try:
                    progressed |= self._pump(conn)
                except Exception:  # pragma: no cover - defensive
                    self._drop_conn(
                        conn, ConnectionResetError("poll failure")
                    )
                    continue
                if beat:
                    try:
                        conn.beat()
                        gone = conn.peer_closed() or (
                            conn.peer_stalled(self._peer_timeout)
                        )
                    except Exception:  # segment released under us
                        gone = True
                    if gone:
                        self._drop_conn(
                            conn,
                            ConnectionResetError(
                                f"peer {conn.peer!r} is gone"
                            ),
                        )
            if beat and self._allocator is not None:
                self._allocator.expire_pins()
            if progressed:
                backoff.reset()
            else:
                backoff.pause()

    def _scan_for_dialers(self) -> bool:
        """Attach fresh connection segments dialers created for us."""
        prefix = self.name + ".c"
        progressed = False
        try:
            names = os.listdir(SHM_DIR)
        except OSError:  # pragma: no cover - /dev/shm vanished
            return False
        for name in names:
            if not name.startswith(prefix) or name in self._seen_conn_names:
                continue
            self._seen_conn_names.add(name)
            try:
                shm = _attach_segment(name)
            except (FileNotFoundError, OSError, ValueError):
                continue
            if bytes(shm.buf[:8]) != _CONN_MAGIC or (
                _U32.unpack_from(shm.buf, _C_READY)[0] != 1
            ):
                _close_segment(shm)
                self._seen_conn_names.discard(name)
                continue
            conn = _Connection(
                name, shm, "b", self._ring_slots, self._slot_bytes,
                owned=False,
            )
            _U64.pack_into(shm.buf, _C_PID_B, os.getpid())
            conn.beat()
            self._accepting[name] = (
                conn, time.monotonic() + HANDSHAKE_TIMEOUT
            )
            progressed = True
        return progressed

    def _pump_accepting(self, now: float) -> bool:
        """Finish handshakes on connections still awaiting HELLO."""
        progressed = False
        for name, (conn, deadline) in list(self._accepting.items()):
            data = conn.rx.try_pop()
            if data is None:
                if now > deadline:
                    del self._accepting[name]
                    conn.release()
                continue
            progressed = True
            del self._accepting[name]
            try:
                frame = _ring_decode(data)
            except FramingError:
                conn.release()
                continue
            if not isinstance(frame, Hello):
                conn.try_write(encode_frame(
                    Goodbye(self.site_id, "expected HELLO")
                ))
                conn.release()
                continue
            if frame.version not in self._accept_versions:
                supported = ", ".join(
                    str(v) for v in sorted(self._accept_versions)
                )
                conn.try_write(encode_frame(Goodbye(
                    self.site_id,
                    f"unsupported protocol version {frame.version} "
                    f"(supported: {supported})",
                )))
                conn.release()
                continue
            conn.peer = frame.site_id
            conn.try_write(encode_frame(
                Welcome(frame.version, self.site_id)
            ))
            with self._conn_lock:
                self._conns[name] = conn
                self._by_peer.setdefault(frame.site_id, conn)
        return progressed

    def _pump(self, conn: _Connection) -> bool:
        """Drain one connection's receive ring."""
        progressed = False
        while True:
            data = conn.rx.try_pop()
            if data is None:
                return progressed
            progressed = True
            try:
                frame = _ring_decode(data)
            except FramingError:
                self._drop_conn(
                    conn, ConnectionResetError("malformed frame")
                )
                return True
            if isinstance(frame, (Request, SegRequest)):
                self._executor.submit(self._serve_request, conn, frame)
            elif isinstance(frame, (Reply, SegReply)):
                waiter = conn.pending.get(frame.exchange_id)
                # A late reply to an exchange that already timed out
                # and completed via retransmission is simply dropped.
                if waiter is not None:
                    waiter.resolve(frame)
            elif isinstance(frame, Ping):
                conn.try_write(encode_frame(Pong(frame.token)))
            elif isinstance(frame, Pong):
                waiter = conn.pings.pop(frame.token, None)
                if waiter is not None:
                    waiter.resolve(frame)
            elif isinstance(frame, SegAck):
                if self._allocator is not None:
                    self._allocator.release(
                        frame.offset - _EXTENT_HEADER, frame.extent
                    )
            elif isinstance(frame, Goodbye):
                self._drop_conn(
                    conn,
                    ConnectionResetError(
                        f"peer said goodbye: {frame.reason}"
                    ),
                )
                return True

    # -- segment mapping ------------------------------------------------------

    def _data_view(self, segment: str) -> memoryview:
        with self._attach_lock:
            entry = self._attached.get(segment)
            if entry is None:
                try:
                    shm = _attach_segment(segment)
                except (FileNotFoundError, OSError, ValueError) as exc:
                    raise TransportError(
                        f"cannot attach data segment {segment!r} ({exc})"
                    ) from None
                if bytes(shm.buf[:8]) != _DATA_MAGIC:
                    _close_segment(shm)
                    raise TransportError(
                        f"segment {segment!r} is not a data segment"
                    )
                entry = (shm, shm.buf)
                self._attached[segment] = entry
            return entry[1]

    def _validate_extent(
        self, segment: str, offset: int, extent: int, epoch: int
    ) -> memoryview:
        mv = self._data_view(segment)
        seg_epoch = _U64.unpack_from(mv, _D_EPOCH)[0]
        if seg_epoch != epoch:
            raise TransportError(
                f"stale extent reference into {segment!r}: frame epoch "
                f"{epoch} vs segment epoch {seg_epoch} (owner restarted "
                "or shut down)"
            )
        header = offset - _EXTENT_HEADER
        if header < SegmentAllocator.HEADER or offset > len(mv):
            raise TransportError(
                f"extent offset {offset} out of bounds for {segment!r}"
            )
        stamp = _U64.unpack_from(mv, header)[0]
        if stamp != extent:
            raise TransportError(
                f"torn extent at {segment!r}+{offset}: stamp {stamp} "
                f"vs expected {extent} (extent reused or unpublished)"
            )
        return mv

    def _map_extent(
        self,
        conn: _Connection,
        src: str,
        kind: str,
        segment: str,
        offset: int,
        length: int,
        extent: int,
        epoch: int,
    ) -> Tuple[memoryview, SegmentLease]:
        """Validate and map one extent; records the handover event."""
        mv = self._validate_extent(segment, offset, extent, epoch)
        stored = _U32.unpack_from(mv, offset - 8)[0]
        if stored != length:
            raise TransportError(
                f"torn extent at {segment!r}+{offset}: length {stored} "
                f"vs expected {length}"
            )
        view = mv[offset : offset + length]
        lease = SegmentLease(
            self, conn, segment, offset, extent, epoch, view
        )
        self.handovers += 1
        if self.stats.tracing:
            data = {
                "src": src,
                "dst": self.site_id,
                "kind": kind,
                "segment": segment,
                "offset": offset,
                "length": length,
                "extent": extent,
                "epoch": epoch,
                # The live epoch word, re-read at mapping time: rule
                # SRPC330 checks it against the frame's epoch offline.
                "segment_epoch": _U64.unpack_from(mv, _D_EPOCH)[0],
            }
            data.update(self.endpoint.stamp())
            self.stats.record_event(
                self.clock.now,
                "segment-handover",
                f"{src}->{self.site_id} {kind} {length}B in place "
                f"@{segment}+{offset}",
                data=data,
            )
        return view, lease

    # -- server side ----------------------------------------------------------

    def _serve_request(
        self, conn: _Connection, request: Union[Request, SegRequest]
    ) -> None:
        """Run (or replay) one exchange and push its reply frame."""
        key = (request.src, request.exchange_id)
        cache = self.endpoint.reply_cache
        encoded: Optional[bytes] = None
        while True:
            with self._serve_lock:
                encoded = cache.get(key)
                if encoded is not None:
                    break
                gate = self._inflight.get(key)
                if gate is None:
                    self._inflight[key] = threading.Event()
                    break
            # A retransmission arrived while the first transmission's
            # handler is still running: wait for that one result.
            gate.wait(HANDSHAKE_TIMEOUT)
        if encoded is None:
            try:
                encoded = self._execute(conn, request)
                with self._serve_lock:
                    cache.put(key, encoded)
            finally:
                with self._serve_lock:
                    gate = self._inflight.pop(key, None)
                if gate is not None:
                    gate.set()
        if encoded is None:  # pragma: no cover - crash path only
            return
        if self._faults is not None and (
            self._faults.reply_action() == FaultInjector.DROP
        ):
            self.stats.record_event(
                self.clock.now,
                "loss",
                f"injected drop of reply {self.site_id}->{request.src}",
                data={"site": self.site_id},
            )
            return
        # The peer will retransmit and hit the reply cache if this
        # push fails (ring full, connection torn down).
        conn.try_write(encoded, timeout=1.0)

    def _execute(
        self, conn: _Connection, request: Union[Request, SegRequest]
    ) -> bytes:
        """Dispatch one request to its handler on this worker thread."""
        lease: Optional[SegmentLease] = None
        try:
            kind = MessageKind(request.kind)
            if self._faults is not None and (
                self._faults.crash_on_receive(kind)
            ):
                # Planned death: the frame arrived but this process
                # dies before its handler can run.
                os._exit(FaultInjector.CRASH_EXIT_CODE)
            # Observe the sender's piggybacked clock before the handler
            # runs, so every event the handler records happens-after
            # everything the sender did up to this exchange.
            self.endpoint.vclock.merge(dict(request.clock))
            if isinstance(request, SegRequest):
                payload, lease = self._map_extent(
                    conn, request.src, request.kind, request.segment,
                    request.offset, request.length, request.extent,
                    request.epoch,
                )
            else:
                payload = request.payload
            message = Message(
                src=request.src,
                dst=request.dst,
                kind=kind,
                payload=payload,
                carrier_ref=lease,
            )
            body = self.endpoint.handle(message)
            if lease is not None and not lease.retained:
                # The handler is done with the view: re-check for a
                # tear, then hand the extent back to its owner.
                lease.validate()
                lease.release()
            if not request.expects_reply and body:
                raise TransportError(
                    f"one-way {kind} message produced a reply"
                )
            reply = self._build_reply(
                request, STATUS_OK, body, request.src
            )
        except Exception as exc:  # noqa: BLE001 - ship transport errors
            if lease is not None and not lease.retained:
                lease.release()
            reply = encode_frame(Reply(
                request.exchange_id,
                STATUS_HANDLER_ERROR,
                f"{type(exc).__name__}: {exc}".encode("utf-8"),
                clock=clock_to_wire(self.endpoint.vclock.tick()),
            ))
        return reply

    def _build_reply(
        self,
        request: Union[Request, SegRequest],
        status: int,
        body: Union[bytes, SegmentPayload],
        peer: str,
    ) -> bytes:
        """Encode the reply, spilling large bodies to the data segment."""
        clock = clock_to_wire(self.endpoint.vclock.tick())
        spill: Optional[SegmentPayload] = None
        if isinstance(body, SegmentPayload):
            spill = body
        elif len(body) > self.spill_threshold and self._allocator:
            spill = self.reserve_payload(len(body))
            spill.view[:] = body
        if spill is not None and self._allocator is not None:
            if not spill.published:
                self._allocator.publish(spill.offset)
                spill.published = True
            # Re-route the pin to the requester so a dead peer's
            # unacked reply extent is reaped with its connection.
            with self._allocator._lock:
                entry = self._allocator._pins.get(spill.offset)
                if entry is not None:
                    entry[3] = peer
            return encode_frame(SegReply(
                exchange_id=request.exchange_id,
                status=status,
                segment=self._allocator.name,
                offset=spill.offset + _EXTENT_HEADER,
                length=spill.length,
                extent=spill.stamp,
                epoch=self._allocator.epoch,
                clock=clock,
            ))
        return encode_frame(Reply(
            request.exchange_id, status, bytes(body), clock=clock
        ))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShmTransport({self.site_id!r}, address={self.address!r})"
        )
