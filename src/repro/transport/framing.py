"""Length-prefixed binary framing for the real carriers.

Every frame on the wire is a 4-byte big-endian body length followed by
the body; the body is a frame-type word followed by XDR-encoded fields
(the same :mod:`repro.xdr` stream codec the RPC payloads use, so the
whole wire format has one encoding discipline).  The TCP transport
writes frames onto sockets; the shared-memory transport
(:mod:`repro.transport.shm`) writes the *same* frames into its ring
buffers, so both carriers share one codec and one handshake.

Frame vocabulary::

    HELLO        client -> server  protocol version + sender site id
    WELCOME      server -> client  accepted version + server site id
    GOODBYE      either direction  refusal / orderly close, with reason
    REQUEST      client -> server  one exchange: id, src, dst, kind, body
    REPLY        server -> client  exchange id, status, body
    PING         client -> server  liveness probe (token)
    PONG         server -> client  liveness echo (token)
    SEG_REQUEST  client -> server  a REQUEST whose payload lives in a
                                   shared data segment (name, offset,
                                   length, extent stamp, epoch)
    SEG_REPLY    server -> client  a REPLY shipped the same way
    SEG_ACK      either direction  the receiver is done reading one
                                   segment extent; the owner may reuse it

The ``SEG_*`` frames are the shared-memory carrier's zero-copy path:
instead of copying a large payload through the ring they hand over an
*offset* into the sender's data segment (see
:class:`repro.transport.shm.SegmentAllocator`), which the receiver maps
as a ``memoryview`` and decodes in place.  TCP never emits them.

The handshake is versioned: a connection opens with ``HELLO``; the
server answers ``WELCOME`` when it speaks that version and ``GOODBYE``
(then closes) when it does not, so incompatible peers fail loudly at
connect time instead of corrupting exchanges.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Tuple, Union

from repro.transport.base import TransportError
from repro.xdr.errors import XdrError
from repro.xdr.stream import XdrDecoder, XdrEncoder

#: Current wire protocol version, sent in every HELLO/WELCOME.
#: Version 2 added the piggybacked vector clock on REQUEST/REPLY.
PROTOCOL_VERSION = 2

#: Upper bound on one frame body; guards against garbage length words.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Wire size of the length prefix.
LENGTH_PREFIX = struct.Struct("!I")

#: Reply status codes.
STATUS_OK = 0
STATUS_HANDLER_ERROR = 1


class FramingError(TransportError):
    """A frame could not be encoded or decoded."""


class FrameType(enum.IntEnum):
    """The 1-byte discriminator opening every frame body."""

    HELLO = 1
    WELCOME = 2
    GOODBYE = 3
    REQUEST = 4
    REPLY = 5
    PING = 6
    PONG = 7
    SEG_REQUEST = 8
    SEG_REPLY = 9
    SEG_ACK = 10


@dataclass(frozen=True)
class Hello:
    """Connection opener: who is calling and which protocol they speak."""

    version: int
    site_id: str


@dataclass(frozen=True)
class Welcome:
    """Handshake acceptance: the version in force and the server's id."""

    version: int
    site_id: str


@dataclass(frozen=True)
class Goodbye:
    """Refusal or orderly close, with a human-readable reason."""

    site_id: str
    reason: str


@dataclass(frozen=True)
class Request:
    """One exchange request.

    ``exchange_id`` is unique per sending site; the receiver's
    duplicate suppression keys on ``(src, exchange_id)``, so a
    retransmitted request (same id) never re-runs the handler.
    """

    exchange_id: int
    src: str
    dst: str
    kind: str
    expects_reply: bool
    payload: bytes
    #: Sender's vector clock, piggybacked for causal trace stamping:
    #: sorted ``(site id, tick count)`` pairs.
    clock: Tuple[Tuple[str, int], ...] = ()


@dataclass(frozen=True)
class Reply:
    """The response to one exchange, matched by ``exchange_id``."""

    exchange_id: int
    status: int
    payload: bytes
    #: Responder's vector clock at reply time (see :class:`Request`).
    clock: Tuple[Tuple[str, int], ...] = ()


@dataclass(frozen=True)
class Ping:
    """Transport-level liveness probe."""

    token: int


@dataclass(frozen=True)
class Pong:
    """Echo of one :class:`Ping`'s token."""

    token: int


@dataclass(frozen=True)
class SegRequest:
    """A :class:`Request` whose payload is handed over by reference.

    ``segment`` names the sender's shared data segment; the payload is
    the ``length`` bytes at ``offset``.  ``extent`` is the extent's
    publication stamp and ``epoch`` the segment epoch at allocation
    time: the receiver validates both before and after reading, so a
    recycled or invalidated extent is detected instead of silently
    yielding a torn payload.
    """

    exchange_id: int
    src: str
    dst: str
    kind: str
    expects_reply: bool
    segment: str
    offset: int
    length: int
    extent: int
    epoch: int
    clock: Tuple[Tuple[str, int], ...] = ()


@dataclass(frozen=True)
class SegReply:
    """A :class:`Reply` shipped by segment reference (see above)."""

    exchange_id: int
    status: int
    segment: str
    offset: int
    length: int
    extent: int
    epoch: int
    clock: Tuple[Tuple[str, int], ...] = ()


@dataclass(frozen=True)
class SegAck:
    """The receiver finished reading one extent; the owner may reuse it."""

    segment: str
    offset: int
    extent: int


Frame = Union[
    Hello, Welcome, Goodbye, Request, Reply, Ping, Pong,
    SegRequest, SegReply, SegAck,
]


def clock_to_wire(clock) -> Tuple[Tuple[str, int], ...]:
    """Normalize a vector-clock mapping into its wire form."""
    return tuple(sorted((str(k), int(v)) for k, v in dict(clock).items()))


def _encode_clock(
    encoder: XdrEncoder, clock: Tuple[Tuple[str, int], ...]
) -> None:
    encoder.pack_uint32(len(clock))
    for site, count in clock:
        encoder.pack_string(site)
        encoder.pack_uint64(count)


def _decode_clock(decoder: XdrDecoder) -> Tuple[Tuple[str, int], ...]:
    count = decoder.unpack_uint32()
    return tuple(
        (decoder.unpack_string(), decoder.unpack_uint64())
        for _ in range(count)
    )


def encode_frame(frame: Frame) -> bytes:
    """Serialize ``frame`` as length prefix + body."""
    encoder = XdrEncoder.pooled()
    try:
        return bytes(encode_frame_into(frame, encoder))
    finally:
        encoder.release()


def encode_frame_into(frame: Frame, encoder: XdrEncoder) -> memoryview:
    """Serialize ``frame`` into ``encoder``; return the wire image.

    The whole wire image — length prefix and body — is packed into the
    encoder's single buffer, so a ``Request``/``Reply`` payload is
    copied exactly once between the caller and the socket.  The
    returned view aliases the encoder's buffer: write (or copy) it
    before reusing the encoder.
    """
    start = encoder.size
    encoder.pack_uint32(0)  # length prefix, patched below
    if isinstance(frame, Hello):
        encoder.pack_uint32(FrameType.HELLO)
        encoder.pack_uint32(frame.version)
        encoder.pack_string(frame.site_id)
    elif isinstance(frame, Welcome):
        encoder.pack_uint32(FrameType.WELCOME)
        encoder.pack_uint32(frame.version)
        encoder.pack_string(frame.site_id)
    elif isinstance(frame, Goodbye):
        encoder.pack_uint32(FrameType.GOODBYE)
        encoder.pack_string(frame.site_id)
        encoder.pack_string(frame.reason)
    elif isinstance(frame, Request):
        encoder.pack_uint32(FrameType.REQUEST)
        encoder.pack_uint64(frame.exchange_id)
        encoder.pack_string(frame.src)
        encoder.pack_string(frame.dst)
        encoder.pack_string(frame.kind)
        encoder.pack_bool(frame.expects_reply)
        _encode_clock(encoder, frame.clock)
        encoder.pack_opaque(frame.payload)
    elif isinstance(frame, Reply):
        encoder.pack_uint32(FrameType.REPLY)
        encoder.pack_uint64(frame.exchange_id)
        encoder.pack_uint32(frame.status)
        _encode_clock(encoder, frame.clock)
        encoder.pack_opaque(frame.payload)
    elif isinstance(frame, Ping):
        encoder.pack_uint32(FrameType.PING)
        encoder.pack_uint64(frame.token)
    elif isinstance(frame, Pong):
        encoder.pack_uint32(FrameType.PONG)
        encoder.pack_uint64(frame.token)
    elif isinstance(frame, SegRequest):
        encoder.pack_uint32(FrameType.SEG_REQUEST)
        encoder.pack_uint64(frame.exchange_id)
        encoder.pack_string(frame.src)
        encoder.pack_string(frame.dst)
        encoder.pack_string(frame.kind)
        encoder.pack_bool(frame.expects_reply)
        _encode_clock(encoder, frame.clock)
        encoder.pack_string(frame.segment)
        encoder.pack_uint64(frame.offset)
        encoder.pack_uint32(frame.length)
        encoder.pack_uint64(frame.extent)
        encoder.pack_uint64(frame.epoch)
    elif isinstance(frame, SegReply):
        encoder.pack_uint32(FrameType.SEG_REPLY)
        encoder.pack_uint64(frame.exchange_id)
        encoder.pack_uint32(frame.status)
        _encode_clock(encoder, frame.clock)
        encoder.pack_string(frame.segment)
        encoder.pack_uint64(frame.offset)
        encoder.pack_uint32(frame.length)
        encoder.pack_uint64(frame.extent)
        encoder.pack_uint64(frame.epoch)
    elif isinstance(frame, SegAck):
        encoder.pack_uint32(FrameType.SEG_ACK)
        encoder.pack_string(frame.segment)
        encoder.pack_uint64(frame.offset)
        encoder.pack_uint64(frame.extent)
    else:
        raise FramingError(f"cannot encode frame {frame!r}")
    body_length = encoder.size - start - LENGTH_PREFIX.size
    if body_length > MAX_FRAME_BYTES:
        raise FramingError(
            f"frame body of {body_length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    image = encoder.getbuffer()[start:]
    LENGTH_PREFIX.pack_into(image, 0, body_length)
    return image


def decode_frame(body) -> Frame:
    """Parse one frame body (the bytes after the length prefix)."""
    decoder = XdrDecoder(body)
    try:
        raw_type = decoder.unpack_uint32()
        try:
            frame_type = FrameType(raw_type)
        except ValueError:
            raise FramingError(f"unknown frame type {raw_type!r}") from None
        if frame_type is FrameType.HELLO:
            frame: Frame = Hello(
                version=decoder.unpack_uint32(),
                site_id=decoder.unpack_string(),
            )
        elif frame_type is FrameType.WELCOME:
            frame = Welcome(
                version=decoder.unpack_uint32(),
                site_id=decoder.unpack_string(),
            )
        elif frame_type is FrameType.GOODBYE:
            frame = Goodbye(
                site_id=decoder.unpack_string(),
                reason=decoder.unpack_string(),
            )
        elif frame_type is FrameType.REQUEST:
            frame = Request(
                exchange_id=decoder.unpack_uint64(),
                src=decoder.unpack_string(),
                dst=decoder.unpack_string(),
                kind=decoder.unpack_string(),
                expects_reply=decoder.unpack_bool(),
                clock=_decode_clock(decoder),
                payload=decoder.unpack_opaque(),
            )
        elif frame_type is FrameType.REPLY:
            frame = Reply(
                exchange_id=decoder.unpack_uint64(),
                status=decoder.unpack_uint32(),
                clock=_decode_clock(decoder),
                payload=decoder.unpack_opaque(),
            )
        elif frame_type is FrameType.PING:
            frame = Ping(token=decoder.unpack_uint64())
        elif frame_type is FrameType.PONG:
            frame = Pong(token=decoder.unpack_uint64())
        elif frame_type is FrameType.SEG_REQUEST:
            frame = SegRequest(
                exchange_id=decoder.unpack_uint64(),
                src=decoder.unpack_string(),
                dst=decoder.unpack_string(),
                kind=decoder.unpack_string(),
                expects_reply=decoder.unpack_bool(),
                clock=_decode_clock(decoder),
                segment=decoder.unpack_string(),
                offset=decoder.unpack_uint64(),
                length=decoder.unpack_uint32(),
                extent=decoder.unpack_uint64(),
                epoch=decoder.unpack_uint64(),
            )
        elif frame_type is FrameType.SEG_REPLY:
            frame = SegReply(
                exchange_id=decoder.unpack_uint64(),
                status=decoder.unpack_uint32(),
                clock=_decode_clock(decoder),
                segment=decoder.unpack_string(),
                offset=decoder.unpack_uint64(),
                length=decoder.unpack_uint32(),
                extent=decoder.unpack_uint64(),
                epoch=decoder.unpack_uint64(),
            )
        else:
            frame = SegAck(
                segment=decoder.unpack_string(),
                offset=decoder.unpack_uint64(),
                extent=decoder.unpack_uint64(),
            )
        decoder.expect_done()
    except XdrError as exc:
        raise FramingError(f"malformed frame body: {exc}") from None
    return frame


def split_buffer(buffer: bytes) -> Tuple[Union[Frame, None], bytes]:
    """Parse one frame off the front of ``buffer`` if complete.

    Returns ``(frame, rest)``; ``frame`` is ``None`` while the buffer
    holds less than one whole frame.  Used by tests and any sans-I/O
    consumer; the asyncio transport reads frames directly off its
    stream with :func:`frame_length`.
    """
    if len(buffer) < LENGTH_PREFIX.size:
        return None, buffer
    (length,) = LENGTH_PREFIX.unpack_from(buffer)
    if length > MAX_FRAME_BYTES:
        raise FramingError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    end = LENGTH_PREFIX.size + length
    if len(buffer) < end:
        return None, buffer
    body = memoryview(buffer)[LENGTH_PREFIX.size : end]
    return decode_frame(body), buffer[end:]


def frame_length(prefix: bytes) -> int:
    """Decode and bounds-check one 4-byte length prefix."""
    (length,) = LENGTH_PREFIX.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise FramingError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return length
