"""Pluggable transports: how messages actually cross address spaces.

The runtimes in :mod:`repro.rpc` and :mod:`repro.smartrpc` speak to
their peers through a deliberately narrow waist — a
:class:`~repro.transport.base.Transport` owning the shared clock, cost
model and statistics, plus one :class:`~repro.transport.base.Endpoint`
per address space offering ``register_handler`` / ``send``.  Two
implementations exist:

* :class:`repro.simnet.network.Network` — the deterministic in-process
  simulator the paper's figures are reproduced on;
* :class:`repro.transport.tcp.TcpTransport` — a real asyncio TCP
  transport (length-prefixed frames, versioned handshake, connection
  pooling, timeout/backoff retransmission, at-most-once duplicate
  suppression) so the same sessions run across genuine OS processes;
* :class:`repro.transport.shm.ShmTransport` — a zero-copy
  shared-memory carrier: control frames over lock-free SPSC ring
  buffers, bulk payloads handed over as epoch-stamped offsets into a
  shared data segment (no per-byte wire cost at all).

``python -m repro.transport serve`` hosts one address space per OS
process; see :mod:`repro.transport.host`.
"""

from repro.transport.base import (
    Endpoint,
    ReplyCache,
    RetryPolicy,
    Transport,
    TransportError,
)
from repro.transport.framing import PROTOCOL_VERSION
from repro.transport.shm import (
    SegmentAllocator,
    SegmentLease,
    SegmentPayload,
    ShmEndpoint,
    ShmTransport,
    purge_stale_segments,
)
from repro.transport.tcp import (
    FaultInjector,
    HandshakeError,
    RemoteHandlerError,
    TcpEndpoint,
    TcpTransport,
)
from repro.transport.wallclock import WallClock

__all__ = [
    "Endpoint",
    "FaultInjector",
    "HandshakeError",
    "PROTOCOL_VERSION",
    "RemoteHandlerError",
    "ReplyCache",
    "RetryPolicy",
    "SegmentAllocator",
    "SegmentLease",
    "SegmentPayload",
    "ShmEndpoint",
    "ShmTransport",
    "TcpEndpoint",
    "TcpTransport",
    "Transport",
    "TransportError",
    "WallClock",
    "purge_stale_segments",
]
