"""Wall-clock time for real transports.

The simulator's :class:`~repro.simnet.clock.SimClock` advances only
when a runtime charges it.  Under a real transport time passes by
itself, so :class:`WallClock` reads the operating system clock and
turns ``advance`` into pure cost *accounting*: the modelled charges
still accumulate (in :attr:`charged`) for anyone comparing modelled
against measured time, but they no longer move ``now``.

``now`` is epoch-based (``time.time``) rather than per-process
monotonic so that trace events recorded by different OS processes on
the same machine merge into one causally ordered timeline — see
:mod:`repro.transport.tracemerge`.
"""

from __future__ import annotations

import time


class WallClock:
    """Drop-in for :class:`~repro.simnet.clock.SimClock` on real time."""

    def __init__(self) -> None:
        self.charged = 0.0

    @property
    def now(self) -> float:
        """Current wall time in epoch seconds."""
        return time.time()

    def advance(self, seconds: float) -> None:
        """Account a modelled charge; real time advances on its own."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds!r} seconds")
        self.charged += seconds

    def bill(self, seconds: float, count: int) -> None:
        """Account ``count`` equal modelled charges.

        Mirrors :meth:`repro.simnet.clock.SimClock.bill`: the float
        accumulation order matches ``count`` separate :meth:`advance`
        calls so modelled-charge totals stay comparable.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds!r} seconds")
        if count < 0:
            raise ValueError(f"cannot bill {count!r} charges")
        charged = self.charged
        for _ in range(count):
            charged += seconds
        self.charged = charged

    def reset(self) -> None:
        """Zero the accumulated modelled charges."""
        self.charged = 0.0
