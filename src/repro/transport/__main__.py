"""The transport command line.

Run as ``python -m repro.transport``::

    # the shared registry (site directory + type name server)
    python -m repro.transport serve --site NS --serve-registry --port 7000

    # one smart-RPC address space per OS process
    python -m repro.transport serve --site B --registry 127.0.0.1:7000

    # liveness / control
    python -m repro.transport ping --site B --registry 127.0.0.1:7000
    python -m repro.transport status --site B --registry 127.0.0.1:7000
    python -m repro.transport shutdown --site B --registry 127.0.0.1:7000

    # one timeline out of the per-process --trace logs
    python -m repro.transport merge-traces run.jsonl a.jsonl b.jsonl

Every host prints ``READY site=<id> addr=<host>:<port>`` once serving;
scripts spawning hosts should wait for that line before dialling.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.transport.host import (
    METHODS,
    PROPOSED,
    REGISTRY_SITE,
    HEARTBEAT_INTERVAL,
    TRANSPORTS,
    run_ping,
    run_serve,
    run_shutdown,
    run_status,
)
from repro.transport.shm import DEFAULT_RING_SLOTS, DEFAULT_SEGMENT_SIZE
from repro.transport.tracemerge import run_merge


def _add_registry_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--registry",
        metavar="ADDR",
        help="address of the registry host (site directory): HOST:PORT "
        "over tcp, the registry's listener segment name over shm",
    )
    parser.add_argument(
        "--registry-site",
        default=REGISTRY_SITE,
        metavar="ID",
        help=f"site id of the registry host (default {REGISTRY_SITE})",
    )
    parser.add_argument(
        "--transport",
        choices=TRANSPORTS,
        default="tcp",
        help="carrier to serve or dial on: tcp sockets, or shm "
        "(same-machine shared-memory segments; default tcp)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.transport",
        description="Real inter-process smart-RPC transport over TCP "
        "sockets or shared memory (--transport shm).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser(
        "serve", help="host one address space (or the registry)"
    )
    serve.add_argument(
        "--site", required=True, metavar="ID", help="this host's site id"
    )
    serve.add_argument("--host", default="127.0.0.1", metavar="ADDR")
    serve.add_argument(
        "--port", type=int, default=0, metavar="N",
        help="listening port (default 0: ephemeral)",
    )
    _add_registry_options(serve)
    serve.add_argument(
        "--serve-registry",
        action="store_true",
        help="host the site directory and type name server instead of "
        "an address space",
    )
    serve.add_argument(
        "--method",
        choices=METHODS,
        default=PROPOSED,
        help="which runtime this address space runs (default proposed)",
    )
    serve.add_argument(
        "--heartbeat",
        type=float,
        default=HEARTBEAT_INTERVAL,
        metavar="SECONDS",
        help="directory heartbeat interval "
        f"(default {HEARTBEAT_INTERVAL})",
    )
    serve.add_argument(
        "--trace",
        metavar="PATH",
        help="record a JSONL trace and write it here on shutdown",
    )
    serve.add_argument(
        "--expose-tree",
        type=int,
        default=0,
        metavar="NODES",
        help="home a NODES-node tree here and serve its root pointer "
        "(tree_expose interface), so remote grounds can modify it and "
        "exercise session-end write-back into this process",
    )
    serve.add_argument(
        "--fault",
        metavar="SPEC",
        help="inject wire faults: drop-request=N, dup-request=N, "
        "drop-reply=N, loss=RATE, seed=N, crash-send=KIND:N, "
        "crash-recv=KIND:N (comma separated)",
    )
    serve.add_argument(
        "--session-deadline",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="abort sessions still open after this long (0: never)",
    )
    serve.add_argument(
        "--exchange-timeout",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="cap each session exchange's retries at this long, "
        "aborting the session on expiry (0: full retry schedule)",
    )
    serve.add_argument(
        "--orphan-grace",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="reap sessions whose peer's directory heartbeat is older "
        "than this (0: never reap)",
    )
    serve.add_argument(
        "--segment-size",
        type=int,
        default=DEFAULT_SEGMENT_SIZE,
        metavar="BYTES",
        help="shm only: data segment size for bulk payload handover "
        f"(default {DEFAULT_SEGMENT_SIZE})",
    )
    serve.add_argument(
        "--ring-slots",
        type=int,
        default=DEFAULT_RING_SLOTS,
        metavar="N",
        help="shm only: control-ring slots per direction "
        f"(default {DEFAULT_RING_SLOTS})",
    )
    serve.set_defaults(run=run_serve)

    ping = commands.add_parser("ping", help="measure RTT to a host")
    ping.add_argument("--site", required=True, metavar="ID")
    _add_registry_options(ping)
    ping.add_argument(
        "--timeout", type=float, default=2.0, metavar="SECONDS"
    )
    ping.set_defaults(run=run_ping)

    shutdown = commands.add_parser(
        "shutdown", help="ask a host to exit gracefully"
    )
    shutdown.add_argument("--site", required=True, metavar="ID")
    _add_registry_options(shutdown)
    shutdown.set_defaults(run=run_shutdown)

    status = commands.add_parser(
        "status",
        help="block on a host's readiness barrier and print counters",
    )
    status.add_argument("--site", required=True, metavar="ID")
    _add_registry_options(status)
    status.add_argument(
        "--min-heartbeats", type=int, default=0, metavar="N",
        help="wait until the host has heartbeated N times",
    )
    status.add_argument(
        "--min-reaped", type=int, default=0, metavar="N",
        help="wait until the host has reaped N orphaned sessions",
    )
    status.add_argument(
        "--max-wait", type=float, default=5.0, metavar="SECONDS",
        help="give up waiting for the condition after this long",
    )
    status.set_defaults(run=run_status)

    merge = commands.add_parser(
        "merge-traces",
        help="merge per-process trace logs into one timeline",
    )
    merge.add_argument("out", help="merged trace output path")
    merge.add_argument(
        "traces", nargs="+", help="per-process trace logs to merge"
    )
    merge.set_defaults(run=run_merge)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command in ("ping", "shutdown", "status") and (
        args.registry is None
    ):
        parser.error(f"{args.command} requires --registry HOST:PORT")
    return args.run(args)


if __name__ == "__main__":
    sys.exit(main())
