"""Table 1: the data allocation table after swizzling two pointers."""

from conftest import record_sim_result

from repro.bench.experiments import table1_allocation_table


def test_table1_allocation_table(benchmark):
    result = benchmark.pedantic(
        table1_allocation_table, rounds=1, iterations=1
    )
    assert len(result.rows) == 2
    record_sim_result("")
    for line in result.render().splitlines():
        record_sim_result(line)
