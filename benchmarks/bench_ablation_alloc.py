"""Ablation: placeholder-page allocation strategies (paper §6).

The paper calls its single-home grouping a heuristic and leaves "a
general allocation method to find the optimal tradeoff between working
set size and number of communications" to future work.  This bench
measures the implemented points in that tradeoff space.
"""

import pytest
from conftest import record_sim_result

from repro.bench.harness import PROPOSED, make_world, run_tree_call
from repro.smartrpc.cache import ISOLATED, PACKED, SINGLE_HOME

NODES = 32767
RATIO = 0.5


@pytest.mark.parametrize("strategy", [SINGLE_HOME, PACKED, ISOLATED])
def test_ablation_alloc_strategy(benchmark, strategy):
    def run():
        world = make_world(PROPOSED, allocation_strategy=strategy)
        return run_tree_call(world, NODES, "search", ratio=RATIO)

    run_result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["sim_seconds"] = round(run_result.seconds, 4)
    benchmark.extra_info["callbacks"] = run_result.callbacks
    record_sim_result(
        f"ablation-alloc {strategy:>11s}: {run_result.seconds:7.3f} s  "
        f"callbacks={run_result.callbacks:5d}  "
        f"faults={run_result.page_faults}"
    )
