"""Micro-benchmark: zero-copy XDR streams vs the seed implementation.

The seed ``XdrEncoder`` accumulated a ``List[bytes]`` chunk per field
and joined them in ``getvalue``; the seed ``XdrDecoder`` sliced a new
``bytes`` object out of the stream for every field; and ``RawCodec``
encoded arrays one element at a time.  This module keeps a faithful
copy of that implementation (``_Legacy*``) and measures it against the
current growable-buffer/``memoryview``/bulk-copy path on a page-sized
payload (one 4096-byte cache page of uint32s), asserting the rework is
at least 2x faster on both encode and decode.

``--transport shm`` additionally runs the carrier page-fill benchmark:
the marginal per-byte cost of a bulk reply over the shared-memory
carrier (one production copy into the segment, a mapped view on the
far side) against the same exchange over localhost TCP, asserting the
shm carrier's per-byte overhead above a plain ``memcpy`` is at most
10% of TCP's.

Run with ``pytest benchmarks/bench_xdr.py`` — the reproduced
throughput ratios are printed in the terminal summary.
"""

from __future__ import annotations

import struct
import time
from typing import List

import pytest

from conftest import record_sim_result

from repro.bench.carrier import carrier_per_byte, memcpy_per_byte
from repro.bench.harness import SHM, SIMNET, TCP
from repro.memory.address_space import AddressSpace
from repro.xdr.arch import SPARC32
from repro.xdr.raw import RawCodec, _pack_scalar, _unpack_scalar
from repro.xdr.stream import XdrDecoder, XdrEncoder
from repro.xdr.types import ArrayType, ScalarType, uint32

PAGE_BYTES = 4096
PAGE_SPEC = ArrayType(uint32, PAGE_BYTES // 4)

#: Wall-time floor per measurement; keeps the ratio stable without
#: making the suite slow.
MIN_SECONDS = 0.05


class _LegacyEncoder:
    """The seed's chunk-list encoder, kept verbatim for comparison."""

    def __init__(self) -> None:
        self._chunks: List[bytes] = []
        self._size = 0

    def pack_uint32(self, value: int) -> None:
        self._append(struct.pack(">I", value))

    def pack_int32(self, value: int) -> None:
        self._append(struct.pack(">i", value))

    def pack_uint64(self, value: int) -> None:
        self._append(struct.pack(">Q", value))

    def pack_int64(self, value: int) -> None:
        self._append(struct.pack(">q", value))

    def pack_float(self, value: float) -> None:
        self._append(struct.pack(">f", value))

    def pack_double(self, value: float) -> None:
        self._append(struct.pack(">d", value))

    def pack_fixed_opaque(self, data: bytes) -> None:
        self._append(data)
        remainder = self._size % 4
        if remainder:
            self._append(b"\x00" * (4 - remainder))

    def pack_opaque(self, data: bytes) -> None:
        self.pack_uint32(len(data))
        self.pack_fixed_opaque(data)

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)

    def _append(self, data: bytes) -> None:
        self._chunks.append(data)
        self._size += len(data)


class _LegacyDecoder:
    """The seed's slice-per-field decoder, kept verbatim."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._cursor = 0

    def unpack_uint32(self) -> int:
        return struct.unpack(">I", self._take(4))[0]

    def unpack_int32(self) -> int:
        return struct.unpack(">i", self._take(4))[0]

    def unpack_uint64(self) -> int:
        return struct.unpack(">Q", self._take(8))[0]

    def unpack_int64(self) -> int:
        return struct.unpack(">q", self._take(8))[0]

    def unpack_float(self) -> float:
        return struct.unpack(">f", self._take(4))[0]

    def unpack_double(self) -> float:
        return struct.unpack(">d", self._take(8))[0]

    def unpack_fixed_opaque(self, length: int) -> bytes:
        data = self._take(length)
        remainder = length % 4
        if remainder:
            self._take(4 - remainder)
        return data

    def _take(self, size: int) -> bytes:
        data = self._data[self._cursor : self._cursor + size]
        self._cursor += size
        return data


def _page_world():
    """An address space holding one page-sized uint32 array."""
    space = AddressSpace("bench", page_size=PAGE_BYTES)
    base = space.map_region(2)  # payload page + decode scratch page
    payload = struct.pack(">1024I", *range(PAGE_SPEC.count))
    space.write_raw(base, payload)
    return space, base, payload


def _legacy_encode_page(codec: RawCodec, address: int) -> bytes:
    """The seed's per-element array encode loop."""
    encoder = _LegacyEncoder()
    element = PAGE_SPEC.element
    stride = PAGE_SPEC.stride(codec.arch)
    assert isinstance(element, ScalarType)
    for index in range(PAGE_SPEC.count):
        raw = codec.space.read_raw(address + index * stride, 4)
        _pack_scalar(encoder, element.kind, element.unpack_raw(raw, codec.arch))
    return encoder.getvalue()


def _legacy_decode_page(codec: RawCodec, payload: bytes, address: int) -> None:
    """The seed's per-element array decode loop."""
    decoder = _LegacyDecoder(payload)
    element = PAGE_SPEC.element
    stride = PAGE_SPEC.stride(codec.arch)
    for index in range(PAGE_SPEC.count):
        value = _unpack_scalar(decoder, element.kind)
        codec.space.write_raw(
            address + index * stride, element.pack_raw(value, codec.arch)
        )


def _current_encode_page(codec: RawCodec, address: int) -> bytes:
    encoder = XdrEncoder.pooled()
    try:
        codec.encode(address, PAGE_SPEC, encoder, None)
        return encoder.getvalue()
    finally:
        encoder.release()


def _current_decode_page(codec: RawCodec, payload: bytes, address: int) -> None:
    codec.decode(XdrDecoder(payload), address, PAGE_SPEC, None)


def _throughput(fn) -> float:
    """Page payloads per second, timed over at least MIN_SECONDS."""
    fn()  # warm up (page creation, pools)
    loops = 1
    while True:
        start = time.perf_counter()
        for _ in range(loops):
            fn()
        elapsed = time.perf_counter() - start
        if elapsed >= MIN_SECONDS:
            return loops / elapsed
        loops *= 2


def test_xdr_encode_page_throughput(benchmark):
    space, base, _ = _page_world()
    codec = RawCodec(space, SPARC32)
    expected = _legacy_encode_page(codec, base)
    assert _current_encode_page(codec, base) == expected

    legacy = _throughput(lambda: _legacy_encode_page(codec, base))
    current = _throughput(lambda: _current_encode_page(codec, base))
    benchmark.pedantic(
        lambda: _current_encode_page(codec, base), rounds=20, iterations=5
    )
    ratio = current / legacy
    benchmark.extra_info["legacy_pages_per_s"] = round(legacy, 1)
    benchmark.extra_info["current_pages_per_s"] = round(current, 1)
    benchmark.extra_info["speedup"] = round(ratio, 1)
    record_sim_result(
        f"xdr encode page ({PAGE_BYTES}B): {current:10.0f} pages/s "
        f"vs seed {legacy:8.0f} pages/s  ({ratio:.1f}x)"
    )
    assert ratio >= 2.0, (
        f"page encode only {ratio:.2f}x over the seed codec"
    )


def test_xdr_decode_page_throughput(benchmark):
    space, base, _ = _page_world()
    codec = RawCodec(space, SPARC32)
    payload = _current_encode_page(codec, base)
    scratch = base + PAGE_BYTES

    _legacy_decode_page(codec, payload, scratch)
    assert space.read_raw(scratch, PAGE_BYTES) == space.read_raw(
        base, PAGE_BYTES
    )
    _current_decode_page(codec, payload, scratch)
    assert space.read_raw(scratch, PAGE_BYTES) == space.read_raw(
        base, PAGE_BYTES
    )

    legacy = _throughput(lambda: _legacy_decode_page(codec, payload, scratch))
    current = _throughput(
        lambda: _current_decode_page(codec, payload, scratch)
    )
    benchmark.pedantic(
        lambda: _current_decode_page(codec, payload, scratch),
        rounds=20,
        iterations=5,
    )
    ratio = current / legacy
    benchmark.extra_info["legacy_pages_per_s"] = round(legacy, 1)
    benchmark.extra_info["current_pages_per_s"] = round(current, 1)
    benchmark.extra_info["speedup"] = round(ratio, 1)
    record_sim_result(
        f"xdr decode page ({PAGE_BYTES}B): {current:10.0f} pages/s "
        f"vs seed {legacy:8.0f} pages/s  ({ratio:.1f}x)"
    )
    assert ratio >= 2.0, (
        f"page decode only {ratio:.2f}x over the seed codec"
    )


def test_xdr_scalar_stream_throughput(benchmark):
    """Field-at-a-time streams (headers): report, no hard floor."""

    def legacy():
        encoder = _LegacyEncoder()
        for value in range(256):
            encoder.pack_uint32(value)
            encoder.pack_uint64(value)
        decoder = _LegacyDecoder(encoder.getvalue())
        for _ in range(256):
            decoder.unpack_uint32()
            decoder.unpack_uint64()

    def current():
        encoder = XdrEncoder.pooled()
        try:
            for value in range(256):
                encoder.pack_uint32(value)
                encoder.pack_uint64(value)
            decoder = XdrDecoder(encoder.getbuffer())
            for _ in range(256):
                decoder.unpack_uint32()
                decoder.unpack_uint64()
            decoder.expect_done()
        finally:
            encoder.release()

    legacy_rate = _throughput(legacy)
    current_rate = _throughput(current)
    benchmark.pedantic(current, rounds=20, iterations=5)
    ratio = current_rate / legacy_rate
    benchmark.extra_info["speedup"] = round(ratio, 2)
    record_sim_result(
        f"xdr scalar stream (512 fields): {ratio:.2f}x over seed codec"
    )


# -- carrier page fill: per-byte cost of a bulk reply -------------------------
#
# ``repro.bench.carrier`` measures the marginal per-byte cost of a
# bulk reply as the timing slope between a small and a large fetch:
# over shm the server pays one production copy into its data segment
# and the client maps the extent in place, where TCP re-copies the
# body through framing, two socket buffers and a reassembled
# ``bytes``.  This test asserts the collapse; ``baseline.py`` records
# the same slopes into ``BENCH_shm.json``.


def test_carrier_page_fill_per_byte(benchmark, transport_mode):
    """Over shm, filling a page costs one memcpy; the per-byte carrier
    overhead above that floor must be <= 10% of TCP's (the acceptance
    bar for the segment-offset handover path)."""
    if transport_mode == SIMNET:
        pytest.skip("per-byte carrier cost needs a real carrier")
    memcpy = memcpy_per_byte()
    carriers = (TCP, SHM) if transport_mode == SHM else (transport_mode,)
    slopes = {
        carrier: carrier_per_byte(
            carrier,
            measured_hook=(
                (lambda fn: benchmark.pedantic(fn, rounds=10, iterations=1))
                if carrier == transport_mode
                else None
            ),
        )
        for carrier in carriers
    }
    overheads = {
        carrier: max(slope - memcpy, 0.0)
        for carrier, slope in slopes.items()
    }
    for carrier, slope in slopes.items():
        benchmark.extra_info[f"{carrier}_ns_per_byte"] = round(
            slope * 1e9, 4
        )
    benchmark.extra_info["memcpy_ns_per_byte"] = round(memcpy * 1e9, 4)
    line = ", ".join(
        f"{carrier} {slope * 1e9:.3f} ns/B"
        for carrier, slope in slopes.items()
    )
    record_sim_result(
        f"carrier page fill slope: {line}, memcpy floor "
        f"{memcpy * 1e9:.3f} ns/B"
    )
    if transport_mode == SHM:
        ratio = overheads[SHM] / overheads[TCP]
        record_sim_result(
            f"carrier overhead above memcpy: shm is {ratio:.1%} of tcp"
        )
        assert overheads[SHM] <= 0.10 * overheads[TCP], (
            f"shm per-byte overhead {overheads[SHM] * 1e9:.3f} ns/B is "
            f"{ratio:.0%} of tcp's {overheads[TCP] * 1e9:.3f} ns/B "
            f"(needs <= 10%)"
        )
