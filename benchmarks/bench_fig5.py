"""Figure 5: callbacks vs access ratio, fully lazy vs proposed.

Expected shape: the lazy method performs one callback per visited node
(32,767 at ratio 1.0); the proposed method needs orders of magnitude
fewer because a fault fetches a whole page group plus its closure.
"""

import pytest
from conftest import record_sim_result

from repro.bench.calibration import FIG4_CLOSURE, FIG4_NODES
from repro.bench.harness import (
    FULLY_LAZY,
    PROPOSED,
    make_world,
    run_tree_call,
)

RATIOS = [0.2, 0.6, 1.0]


@pytest.mark.parametrize("ratio", RATIOS)
@pytest.mark.parametrize("method", [FULLY_LAZY, PROPOSED])
def test_fig5_callbacks(
    benchmark, method, ratio, transport_mode, policy_mode, closure_order_mode
):
    if method == PROPOSED and policy_mode is not None:
        method = policy_mode

    def run():
        with make_world(
            method,
            closure_size=FIG4_CLOSURE,
            closure_order=closure_order_mode,
            transport=transport_mode,
        ) as world:
            return run_tree_call(world, FIG4_NODES, "search", ratio=ratio)

    run_result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["policy"] = method
    benchmark.extra_info["callbacks"] = run_result.callbacks
    if method == FULLY_LAZY:
        assert run_result.callbacks == int(round(ratio * FIG4_NODES))
    record_sim_result(
        f"fig5 {method:>8s} ratio={ratio:.1f}: "
        f"callbacks={run_result.callbacks}"
    )
