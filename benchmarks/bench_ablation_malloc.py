"""Ablation: batched vs immediate remote memory operations (paper §3.5).

The paper argues that issuing each ``extended_malloc`` as its own
remote message "would degrade the runtime performance terribly" and
batches them until thread activity moves.  This bench measures both.
"""

import pytest
from conftest import record_sim_result

from repro.bench.harness import CALLEE, PROPOSED, make_world
from repro.workloads.linked_list import build_list, list_client

ALLOCATIONS = 500


@pytest.mark.parametrize("batched", [True, False],
                         ids=["batched", "immediate"])
def test_ablation_remote_malloc(benchmark, batched):
    def run():
        world = make_world(PROPOSED, batch_memory_ops=batched)
        head = build_list(world.caller, [0])
        client = list_client(world.caller, CALLEE)
        world.stats.reset()
        clock = world.network.clock
        start = clock.now
        with world.caller.session() as session:
            client.append_range(session, head, 0, ALLOCATIONS)
        return clock.now - start, world.stats.total_messages

    seconds, messages = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["sim_seconds"] = round(seconds, 4)
    benchmark.extra_info["messages"] = messages
    mode = "batched" if batched else "immediate"
    record_sim_result(
        f"ablation-malloc {mode:>9s}: {seconds:7.4f} s  "
        f"messages={messages} for {ALLOCATIONS} remote allocations"
    )
