"""Figure 7: update performance vs update ratio.

Paper setup: the Figure 4 subject, closure 8,192 bytes; the solid line
updates every visited node, the dotted line only visits.  Expected
shape: the updated curve scales with the ratio and sits at about twice
the not-updated one (read page-in plus write-back of the dirty page).
"""

import pytest
from conftest import record_sim_result

from repro.bench.calibration import FIG4_CLOSURE, FIG4_NODES
from repro.bench.harness import PROPOSED, make_world, run_tree_call

RATIOS = [0.2, 0.4, 0.6, 0.8, 1.0]


@pytest.mark.parametrize("ratio", RATIOS)
@pytest.mark.parametrize("procedure", ["search", "search_update"])
def test_fig7_update(
    benchmark, procedure, ratio, transport_mode, policy_mode, closure_order_mode
):
    method = PROPOSED if policy_mode is None else policy_mode

    def run():
        with make_world(
            method,
            closure_size=FIG4_CLOSURE,
            closure_order=closure_order_mode,
            transport=transport_mode,
        ) as world:
            return run_tree_call(world, FIG4_NODES, procedure, ratio=ratio)

    run_result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["policy"] = method
    benchmark.extra_info["sim_seconds"] = round(run_result.seconds, 4)
    benchmark.extra_info["write_faults"] = run_result.write_faults
    label = "updated" if procedure == "search_update" else "visited"
    record_sim_result(
        f"fig7 {label:>7s} ratio={ratio:.1f}: "
        f"{run_result.seconds:7.3f} s  "
        f"write-faults={run_result.write_faults}"
    )
