"""Figure 6: processing time vs closure size, three tree sizes.

Paper setup: the tree is depth-first searched from the root to the
leaves ten times in one RPC (upper levels are reused from the cache
after the first pass); the closure size sweeps 0-50 KB.  Expected
shape: expensive at closure 0 (lazy-like), a small optimum that grows
with the tree (paper: 4/8/16 KB), rising again past it.
"""

import pytest
from conftest import record_sim_result

from repro.bench.calibration import FIG6_REPEATS
from repro.bench.harness import PROPOSED, make_world, run_tree_call

NODE_COUNTS = [16383, 32767, 65535]
CLOSURE_SIZES = [0, 2048, 4096, 8192, 16384, 32768, 49152]


@pytest.mark.parametrize("closure_size", CLOSURE_SIZES)
@pytest.mark.parametrize("num_nodes", NODE_COUNTS)
def test_fig6_closure_sweep(
    benchmark,
    num_nodes,
    closure_size,
    transport_mode,
    policy_mode,
    closure_order_mode,
):
    method = PROPOSED if policy_mode is None else policy_mode

    def run():
        with make_world(
            method,
            closure_size=closure_size,
            closure_order=closure_order_mode,
            transport=transport_mode,
        ) as world:
            return run_tree_call(
                world, num_nodes, "search_repeat", repeats=FIG6_REPEATS
            )

    run_result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["policy"] = method
    benchmark.extra_info["sim_seconds"] = round(run_result.seconds, 4)
    benchmark.extra_info["callbacks"] = run_result.callbacks
    record_sim_result(
        f"fig6 nodes={num_nodes:5d} closure={closure_size:6d}B: "
        f"{run_result.seconds:7.3f} s  "
        f"callbacks={run_result.callbacks}"
    )
