#!/usr/bin/env python
"""Record or check the committed benchmark baseline.

The baseline pins the deterministic simnet metrics — round trips
(``DATA_REQUEST`` exchanges, the paper's Figure 5 "callbacks"), bytes
shipped, and simulated seconds — for the standard workloads under each
transfer policy, plus real wall time for reference.  Two files are
written next to this script:

* ``BENCH_fig4.json`` — the Figure 4/5 workloads (linked list, hash
  table, search tree) under the ``paper``, ``lazy``, ``adaptive`` and
  ``pipelined`` presets, with the pipeline's round-trip reduction
  versus ``paper`` precomputed per workload;
* ``BENCH_ablation.json`` — the fetch-pipeline knob ablation
  (coalescing only, prefetch only, both) on the same workloads.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/baseline.py            # re-record
    PYTHONPATH=src python benchmarks/baseline.py --compare  # CI gate

``--compare`` re-runs the experiments and fails (exit 1) when any
policy regresses more than 10% on round trips, bytes shipped, or
simulated seconds against the committed baseline, or when any result
value differs at all.  ``--policies`` restricts the comparison (the CI
gate checks ``adaptive`` and ``pipelined``); wall time is recorded but
never compared — it measures the host, not the code under test.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Tuple

from repro.bench.harness import (
    World,
    make_world,
    run_hash_call,
    run_list_call,
    run_tree_call,
)
from repro.smartrpc.policy import PipelinedPolicy

HERE = Path(__file__).resolve().parent
FIG4_BASELINE = HERE / "BENCH_fig4.json"
ABLATION_BASELINE = HERE / "BENCH_ablation.json"

#: Relative regression allowed before --compare fails.
TOLERANCE = 0.10

WORKLOADS: List[Tuple[str, Callable[[World], object]]] = [
    ("linked_list_4096_total", lambda w: run_list_call(w, 4096)),
    ("hashtable_2000x40_lookup", lambda w: run_hash_call(w, 2000, 40)),
    ("tree_8191_search_0.5", lambda w: run_tree_call(
        w, 8191, "search", ratio=0.5
    )),
]

FIG4_POLICIES = ("paper", "lazy", "adaptive", "pipelined")

#: The knob ablation: each variant enables one pipeline mechanism.
ABLATION_VARIANTS: Dict[str, Callable[[], PipelinedPolicy]] = {
    "coalesce_only": lambda: PipelinedPolicy(
        name="coalesce_only", batch_window=32,
        max_inflight=0, prefetch_depth=0,
    ),
    "prefetch_only": lambda: PipelinedPolicy(
        name="prefetch_only", batch_window=0,
        max_inflight=1, prefetch_depth=4,
    ),
    "full_pipeline": lambda: PipelinedPolicy(name="full_pipeline"),
}

#: Metrics gated by --compare (higher is worse for all three).
COMPARED = ("round_trips", "bytes_shipped", "sim_seconds")


def measure(method, workload: Callable[[World], object]) -> Dict:
    """One fresh world, one measured call, one metrics record."""
    world = make_world(method)
    started = time.perf_counter()
    run = workload(world)
    wall = time.perf_counter() - started
    return {
        "result": run.result,
        "round_trips": run.callbacks,
        "messages": run.messages,
        "bytes_shipped": run.bytes_moved,
        "sim_seconds": round(run.seconds, 9),
        "wall_seconds": round(wall, 4),
        "round_trips_saved": run.round_trips_saved,
        "piggyback_hits": run.piggyback_hits,
    }


def record_fig4() -> Dict:
    runs: Dict[str, Dict[str, Dict]] = {}
    for name, workload in WORKLOADS:
        runs[name] = {
            policy: measure(policy, workload)
            for policy in FIG4_POLICIES
        }
    reductions = {}
    for name, by_policy in runs.items():
        paper = by_policy["paper"]["round_trips"]
        reductions[name] = {
            policy: round(
                1.0 - by_policy[policy]["round_trips"] / paper, 4
            )
            for policy in FIG4_POLICIES
            if policy != "paper" and paper
        }
    return {
        "meta": {"transport": "simnet", "tolerance": TOLERANCE},
        "runs": runs,
        "round_trip_reduction_vs_paper": reductions,
    }


def record_ablation() -> Dict:
    runs: Dict[str, Dict[str, Dict]] = {}
    for name, workload in WORKLOADS:
        runs[name] = {
            variant: measure(factory(), workload)
            for variant, factory in ABLATION_VARIANTS.items()
        }
    return {
        "meta": {"transport": "simnet", "tolerance": TOLERANCE},
        "runs": runs,
    }


def compare(
    baseline: Dict, current: Dict, label: str, policies=None
) -> List[str]:
    """Regressions of ``current`` against ``baseline`` (empty = pass)."""
    problems = []
    for workload, by_policy in baseline["runs"].items():
        for policy, expected in by_policy.items():
            if policies and policy not in policies:
                continue
            actual = (
                current["runs"].get(workload, {}).get(policy)
            )
            if actual is None:
                problems.append(
                    f"{label}: {workload}/{policy} missing from rerun"
                )
                continue
            if actual["result"] != expected["result"]:
                problems.append(
                    f"{label}: {workload}/{policy} result changed "
                    f"{expected['result']} -> {actual['result']}"
                )
            for metric in COMPARED:
                before, after = expected[metric], actual[metric]
                if after > before * (1.0 + TOLERANCE):
                    problems.append(
                        f"{label}: {workload}/{policy} {metric} "
                        f"regressed {before} -> {after} "
                        f"(>{TOLERANCE:.0%} tolerance)"
                    )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--compare",
        action="store_true",
        help="check against the committed baseline instead of rewriting",
    )
    parser.add_argument(
        "--policies",
        default=None,
        help="comma-separated policy/variant subset to compare "
        "(default: everything in the baseline)",
    )
    args = parser.parse_args(argv)
    policies = (
        {name.strip() for name in args.policies.split(",")}
        if args.policies
        else None
    )
    fig4 = record_fig4()
    ablation = record_ablation()
    if not args.compare:
        FIG4_BASELINE.write_text(json.dumps(fig4, indent=2) + "\n")
        ABLATION_BASELINE.write_text(
            json.dumps(ablation, indent=2) + "\n"
        )
        print(f"wrote {FIG4_BASELINE.name} and {ABLATION_BASELINE.name}")
        for workload, cuts in fig4["round_trip_reduction_vs_paper"].items():
            print(f"  {workload}: round-trip cut vs paper {cuts}")
        return 0
    problems = []
    for path, current in (
        (FIG4_BASELINE, fig4),
        (ABLATION_BASELINE, ablation),
    ):
        if not path.exists():
            problems.append(f"{path.name}: no committed baseline")
            continue
        baseline = json.loads(path.read_text())
        problems.extend(
            compare(baseline, current, path.name, policies=policies)
        )
    if problems:
        print("baseline comparison FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    scope = ", ".join(sorted(policies)) if policies else "all policies"
    print(f"baseline comparison passed ({scope})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
