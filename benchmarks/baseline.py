#!/usr/bin/env python
"""Record or check the committed benchmark baseline.

The baseline pins the deterministic simnet metrics — round trips
(``DATA_REQUEST`` exchanges, the paper's Figure 5 "callbacks"), bytes
shipped, and simulated seconds — for the standard workloads under each
transfer policy, plus real wall time for reference.  Two files are
written next to this script:

* ``BENCH_fig4.json`` — the Figure 4/5 workloads (linked list, hash
  table, search tree) under the ``paper``, ``lazy``, ``adaptive`` and
  ``pipelined`` presets, with the pipeline's round-trip reduction
  versus ``paper`` precomputed per workload;
* ``BENCH_ablation.json`` — the fetch-pipeline knob ablation
  (coalescing only, prefetch only, both) on the same workloads.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/baseline.py            # re-record
    PYTHONPATH=src python benchmarks/baseline.py --compare  # CI gate

``--compare`` re-runs the experiments and fails (exit 1) when any
policy regresses more than 10% on round trips, bytes shipped, or
simulated seconds against the committed baseline, or when any result
value differs at all.  ``--policies`` restricts the comparison (the CI
gate checks ``adaptive`` and ``pipelined``); wall time is recorded but
never compared — it measures the host, not the code under test.

``--transport tcp`` / ``--transport shm`` runs the same workloads over
a real carrier instead and records ``BENCH_tcp.json`` /
``BENCH_shm.json``.  A carrier baseline gates only the deterministic
metrics (results, round trips, bytes shipped — identical to simnet by
the transport-equivalence property); seconds over a real carrier are
wall time and are recorded for reference only.  The shm file also
records the raw carrier page-fill slopes (shared memory collapses the
per-byte cost of bulk shipping to the plain-memcpy floor; see
``repro.bench.carrier``) and the Figure 4 eager/lazy crossover sweep
over both real carriers — cheap bulk bytes are the force pushing the
crossover toward eager, and the shm crossover is never later than
tcp's.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Tuple

from repro.bench.harness import (
    FULLY_EAGER,
    FULLY_LAZY,
    SHM,
    SIMNET,
    TCP,
    TRANSPORTS,
    World,
    make_world,
    run_hash_call,
    run_list_call,
    run_tree_call,
)
from repro.smartrpc.policy import PipelinedPolicy

import bench_hotpath

HERE = Path(__file__).resolve().parent
FIG4_BASELINE = HERE / "BENCH_fig4.json"
ABLATION_BASELINE = HERE / "BENCH_ablation.json"
HOTPATH_BASELINE = bench_hotpath.HOTPATH_BASELINE

#: Relative regression allowed before --compare fails.
TOLERANCE = 0.10

#: The Figure 4 crossover sweep recorded into the shm baseline: small
#: enough that a fully-lazy ratio-1.0 walk stays fast over a real
#: carrier, large enough that the eager closure is genuinely bulk.
CROSSOVER_NODES = 2047
CROSSOVER_CLOSURE = 8192
CROSSOVER_RATIOS = (0.0, 0.05, 0.1, 0.2, 0.5, 1.0)

WORKLOADS: List[Tuple[str, Callable[[World], object]]] = [
    ("linked_list_4096_total", lambda w: run_list_call(w, 4096)),
    ("hashtable_2000x40_lookup", lambda w: run_hash_call(w, 2000, 40)),
    ("tree_8191_search_0.5", lambda w: run_tree_call(
        w, 8191, "search", ratio=0.5
    )),
]

FIG4_POLICIES = ("paper", "lazy", "adaptive", "pipelined")

#: The knob ablation: each variant enables one pipeline mechanism.
ABLATION_VARIANTS: Dict[str, Callable[[], PipelinedPolicy]] = {
    "coalesce_only": lambda: PipelinedPolicy(
        name="coalesce_only", batch_window=32,
        max_inflight=0, prefetch_depth=0,
    ),
    "prefetch_only": lambda: PipelinedPolicy(
        name="prefetch_only", batch_window=0,
        max_inflight=1, prefetch_depth=4,
    ),
    "full_pipeline": lambda: PipelinedPolicy(name="full_pipeline"),
}

#: Metrics gated by --compare (higher is worse for all three).
COMPARED = ("round_trips", "bytes_shipped", "sim_seconds")

#: What a real-carrier baseline gates: only the metrics the
#: transport-equivalence property makes deterministic.  Seconds over a
#: real carrier measure the host and are recorded, never compared.
CARRIER_COMPARED = ("round_trips", "bytes_shipped")


def measure(
    method, workload: Callable[[World], object], transport: str = SIMNET
) -> Dict:
    """One fresh world, one measured call, one metrics record."""
    with make_world(method, transport=transport) as world:
        started = time.perf_counter()
        run = workload(world)
        wall = time.perf_counter() - started
    record = {
        "result": run.result,
        "round_trips": run.callbacks,
        "messages": run.messages,
        "bytes_shipped": run.bytes_moved,
        "wall_seconds": round(wall, 4),
        "round_trips_saved": run.round_trips_saved,
        "piggyback_hits": run.piggyback_hits,
    }
    if transport == SIMNET:
        record["sim_seconds"] = round(run.seconds, 9)
    else:
        # The stopwatch reads wall time on a real carrier.
        record["call_seconds"] = round(run.seconds, 4)
    return record


def _record_runs(transport: str) -> Dict[str, Dict[str, Dict]]:
    return {
        name: {
            policy: measure(policy, workload, transport)
            for policy in FIG4_POLICIES
        }
        for name, workload in WORKLOADS
    }


def _round_trip_reductions(runs: Dict) -> Dict:
    reductions = {}
    for name, by_policy in runs.items():
        paper = by_policy["paper"]["round_trips"]
        reductions[name] = {
            policy: round(
                1.0 - by_policy[policy]["round_trips"] / paper, 4
            )
            for policy in FIG4_POLICIES
            if policy != "paper" and paper
        }
    return reductions


def record_fig4() -> Dict:
    runs = _record_runs(SIMNET)
    return {
        "meta": {
            "transport": "simnet",
            "tolerance": TOLERANCE,
            **bench_hotpath.host_meta(),
        },
        "runs": runs,
        "round_trip_reduction_vs_paper": _round_trip_reductions(runs),
    }


def _crossover_sweep(transport: str) -> Dict:
    """Fig4's eager/lazy duel at each access ratio over one carrier.

    Returns per-ratio wall seconds for the fully-eager (graphcopy) and
    fully-lazy methods plus the crossover: the smallest ratio from
    which eager stays ahead.  Cheap bulk bytes move it left.  Each
    cell is the best of three fresh worlds — wall time on a shared
    host has fat tails (scheduler, collector), and a single stalled
    run would move the recorded crossover.
    """
    walls: Dict[str, List[float]] = {FULLY_EAGER: [], FULLY_LAZY: []}
    for ratio in CROSSOVER_RATIOS:
        for method in (FULLY_EAGER, FULLY_LAZY):
            best = None
            for _ in range(3):
                # Start each run collected: a gen-2 pass landing
                # inside a polling handoff would be charged to the
                # carrier.
                gc.collect()
                with make_world(
                    method,
                    closure_size=CROSSOVER_CLOSURE,
                    transport=transport,
                ) as world:
                    run = run_tree_call(
                        world, CROSSOVER_NODES, "search", ratio=ratio
                    )
                if best is None or run.seconds < best:
                    best = run.seconds
            walls[method].append(round(best, 4))
    crossover = next(
        (
            ratio
            for i, ratio in enumerate(CROSSOVER_RATIOS)
            if all(
                walls[FULLY_EAGER][j] <= walls[FULLY_LAZY][j]
                for j in range(i, len(CROSSOVER_RATIOS))
            )
        ),
        None,
    )
    return {
        "nodes": CROSSOVER_NODES,
        "closure_bytes": CROSSOVER_CLOSURE,
        "ratios": list(CROSSOVER_RATIOS),
        "wall_seconds": walls,
        "crossover_ratio": crossover,
    }


def record_carrier(transport: str) -> Dict:
    """The committed baseline for one real carrier (tcp or shm)."""
    runs = _record_runs(transport)
    record = {
        "meta": {
            "transport": transport,
            "tolerance": TOLERANCE,
            "compared": list(CARRIER_COMPARED),
            **bench_hotpath.host_meta(),
        },
        "runs": runs,
        "round_trip_reduction_vs_paper": _round_trip_reductions(runs),
    }
    if transport == SHM:
        # The headline claim: the shm carrier collapses the per-byte
        # cost of bulk shipping to the shared memcpy floor, the force
        # that pushes the Figure 4 crossover toward eager.  Both the
        # raw slopes and both carriers' crossover sweeps land in the
        # file so the effect is visible in one place.  (At the paper's
        # 16-byte tree nodes the sweep itself is marshalling-bound, so
        # the recorded invariant is that the shm crossover is never
        # later than tcp's; the collapse shows in the slopes.)
        from repro.bench.carrier import carrier_per_byte, memcpy_per_byte

        record["carrier_page_fill_ns_per_byte"] = {
            "memcpy": round(memcpy_per_byte() * 1e9, 4),
            TCP: round(carrier_per_byte(TCP) * 1e9, 4),
            SHM: round(carrier_per_byte(SHM) * 1e9, 4),
        }
        record["fig4_crossover"] = {
            SHM: _crossover_sweep(SHM),
            TCP: _crossover_sweep(TCP),
        }
    return record


def record_ablation() -> Dict:
    runs: Dict[str, Dict[str, Dict]] = {}
    for name, workload in WORKLOADS:
        runs[name] = {
            variant: measure(factory(), workload)
            for variant, factory in ABLATION_VARIANTS.items()
        }
    return {
        "meta": {
            "transport": "simnet",
            "tolerance": TOLERANCE,
            **bench_hotpath.host_meta(),
        },
        "runs": runs,
    }


def compare(
    baseline: Dict, current: Dict, label: str, policies=None
) -> List[str]:
    """Regressions of ``current`` against ``baseline`` (empty = pass)."""
    problems = []
    compared = tuple(
        baseline.get("meta", {}).get("compared", COMPARED)
    )
    for workload, by_policy in baseline["runs"].items():
        for policy, expected in by_policy.items():
            if policies and policy not in policies:
                continue
            actual = (
                current["runs"].get(workload, {}).get(policy)
            )
            if actual is None:
                problems.append(
                    f"{label}: {workload}/{policy} missing from rerun"
                )
                continue
            if actual["result"] != expected["result"]:
                problems.append(
                    f"{label}: {workload}/{policy} result changed "
                    f"{expected['result']} -> {actual['result']}"
                )
            for metric in compared:
                before, after = expected[metric], actual[metric]
                if after > before * (1.0 + TOLERANCE):
                    problems.append(
                        f"{label}: {workload}/{policy} {metric} "
                        f"regressed {before} -> {after} "
                        f"(>{TOLERANCE:.0%} tolerance)"
                    )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--compare",
        action="store_true",
        help="check against the committed baseline instead of rewriting",
    )
    parser.add_argument(
        "--policies",
        default=None,
        help="comma-separated policy/variant subset to compare "
        "(default: everything in the baseline)",
    )
    parser.add_argument(
        "--transport",
        choices=TRANSPORTS,
        default=SIMNET,
        help="carrier to record/compare: simnet writes BENCH_fig4 + "
        "BENCH_ablation, tcp/shm write BENCH_<transport>.json gating "
        "only the deterministic counters",
    )
    args = parser.parse_args(argv)
    policies = (
        {name.strip() for name in args.policies.split(",")}
        if args.policies
        else None
    )
    if args.transport == SIMNET:
        recorded = [
            (FIG4_BASELINE, record_fig4()),
            (ABLATION_BASELINE, record_ablation()),
        ]
    else:
        recorded = [
            (
                HERE / f"BENCH_{args.transport}.json",
                record_carrier(args.transport),
            )
        ]
    if not args.compare:
        for path, current in recorded:
            path.write_text(json.dumps(current, indent=2) + "\n")
        print(
            "wrote " + " and ".join(path.name for path, _ in recorded)
        )
        for _, current in recorded:
            cuts_by_workload = current.get(
                "round_trip_reduction_vs_paper", {}
            )
            for workload, cuts in cuts_by_workload.items():
                print(f"  {workload}: round-trip cut vs paper {cuts}")
            slopes = current.get("carrier_page_fill_ns_per_byte")
            if slopes:
                print(
                    "  carrier page fill ns/B: "
                    + ", ".join(
                        f"{name} {value}"
                        for name, value in slopes.items()
                    )
                )
            crossover = current.get("fig4_crossover")
            if crossover:
                for carrier, sweep in crossover.items():
                    print(
                        f"  fig4 crossover over {carrier}: "
                        f"ratio {sweep['crossover_ratio']}"
                    )
        return 0
    problems = []
    for path, current in recorded:
        if not path.exists():
            problems.append(f"{path.name}: no committed baseline")
            continue
        baseline = json.loads(path.read_text())
        problems.extend(
            compare(baseline, current, path.name, policies=policies)
        )
    if args.transport == SIMNET:
        # The memory hot-path gate rides along with the simnet compare:
        # re-measure and check the host-independent shape (tokens never
        # slower than the checked path, bulk under half of it, resident
        # walk over the speedup floor).
        if not HOTPATH_BASELINE.exists():
            problems.append(
                f"{HOTPATH_BASELINE.name}: no committed baseline"
            )
        else:
            problems.extend(
                bench_hotpath.compare(
                    json.loads(HOTPATH_BASELINE.read_text()),
                    bench_hotpath.record_hotpath(),
                    HOTPATH_BASELINE.name,
                )
            )
    if problems:
        print("baseline comparison FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    scope = ", ".join(sorted(policies)) if policies else "all policies"
    print(f"baseline comparison passed ({scope})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
