"""Benchmark-suite plumbing.

pytest-benchmark measures the *wall time of the simulation harness*;
the numbers the paper reports are the *simulated* seconds and message
counts, which each benchmark records here.  A terminal-summary hook
prints the reproduced series after the benchmark table, so a plain
``pytest benchmarks/ --benchmark-only`` leaves the reproduction visible
in its output.

``--transport`` selects what the worlds run over: ``simnet`` (default,
deterministic modeled seconds), ``tcp`` (real localhost sockets, wall
seconds), ``shm`` (same-machine shared-memory segments, wall seconds),
or ``all`` — which parametrizes every benchmark over every carrier so
their rows land side by side in the pytest-benchmark JSON (``both`` is
the accepted legacy spelling from the two-carrier days).

``--policy`` substitutes any transfer policy for the proposed-method
rows (the baseline rows keep their fixed policies), and
``--closure-order`` forces the closure traversal order, so e.g. the CI
smoke run exercises the adaptive policy end to end.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.bench.harness import POLICIES, SIMNET, TRANSPORTS
from repro.smartrpc.closure import BREADTH_FIRST, DEPTH_FIRST

_SIM_RESULTS: List[str] = []


def pytest_addoption(parser):
    parser.addoption(
        "--transport",
        choices=(*TRANSPORTS, "all", "both"),
        default=SIMNET,
        help="run benchmark worlds over simnet, tcp, shm, or all "
        "of them (both is a legacy alias for all)",
    )
    parser.addoption(
        "--policy",
        choices=POLICIES,
        default=None,
        help="transfer policy for the proposed-method rows",
    )
    parser.addoption(
        "--closure-order",
        choices=(BREADTH_FIRST, DEPTH_FIRST),
        default=None,
        help="closure traversal order (bfs is the paper's)",
    )


@pytest.fixture
def policy_mode(request):
    """The ``--policy`` override, or None for each figure's default."""
    return request.config.getoption("--policy")


@pytest.fixture
def closure_order_mode(request):
    """The ``--closure-order`` override, or None for the policy's."""
    return request.config.getoption("--closure-order")


def pytest_generate_tests(metafunc):
    if "transport_mode" in metafunc.fixturenames:
        choice = metafunc.config.getoption("--transport")
        if choice in ("all", "both"):
            modes = list(TRANSPORTS)
        else:
            modes = [choice]
        metafunc.parametrize("transport_mode", modes)


def record_sim_result(line: str) -> None:
    """Queue one reproduced-measurement line for the summary."""
    _SIM_RESULTS.append(line)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _SIM_RESULTS:
        return
    terminalreporter.section("reproduced paper measurements (simulated)")
    for line in _SIM_RESULTS:
        terminalreporter.write_line(line)
