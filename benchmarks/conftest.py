"""Benchmark-suite plumbing.

pytest-benchmark measures the *wall time of the simulation harness*;
the numbers the paper reports are the *simulated* seconds and message
counts, which each benchmark records here.  A terminal-summary hook
prints the reproduced series after the benchmark table, so a plain
``pytest benchmarks/ --benchmark-only`` leaves the reproduction visible
in its output.
"""

from __future__ import annotations

from typing import List

_SIM_RESULTS: List[str] = []


def record_sim_result(line: str) -> None:
    """Queue one reproduced-measurement line for the summary."""
    _SIM_RESULTS.append(line)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _SIM_RESULTS:
        return
    terminalreporter.section("reproduced paper measurements (simulated)")
    for line in _SIM_RESULTS:
        terminalreporter.write_line(line)
