"""Ablation: closure traversal order (paper §6 "shape" discussion).

The paper uses breadth-first traversal and notes that optimising the
closure's shape to the remote access pattern is open.  A depth-first
closure matches a depth-first consumer better at partial ratios.
"""

import pytest
from conftest import record_sim_result

from repro.bench.harness import PROPOSED, make_world, run_tree_call
from repro.smartrpc.closure import BREADTH_FIRST, DEPTH_FIRST

NODES = 32767


@pytest.mark.parametrize("ratio", [0.25, 0.5, 1.0])
@pytest.mark.parametrize("order", [BREADTH_FIRST, DEPTH_FIRST])
def test_ablation_closure_order(benchmark, order, ratio, policy_mode):
    method = PROPOSED if policy_mode is None else policy_mode

    def run():
        world = make_world(method, closure_order=order)
        return run_tree_call(world, NODES, "search", ratio=ratio)

    run_result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["policy"] = method
    benchmark.extra_info["sim_seconds"] = round(run_result.seconds, 4)
    benchmark.extra_info["bytes"] = run_result.bytes_moved
    benchmark.extra_info.update(run_result.ledger())
    record_sim_result(
        f"ablation-closure {method} {order} ratio={ratio:.2f}: "
        f"{run_result.seconds:7.3f} s  "
        f"callbacks={run_result.callbacks}  "
        f"bytes={run_result.bytes_moved}  "
        f"prefetch={run_result.prefetch_shipped}B/"
        f"{run_result.prefetch_touched}B touched"
    )
