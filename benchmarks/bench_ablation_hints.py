"""Ablation: programmer closure hints (paper §6 "shape" suggestions).

Sparse hash retrieval with and without a hint that the access pattern
follows only the bucket chain.
"""

from conftest import record_sim_result

from repro.bench.experiments import ablation_closure_hints


def test_ablation_closure_hints(benchmark):
    result = benchmark.pedantic(
        ablation_closure_hints, rounds=1, iterations=1
    )
    by_label = {row[0]: row for row in result.rows}
    assert by_label["hinted"][2] < by_label["unhinted"][2]
    for label, seconds, total_bytes, entries in result.rows:
        record_sim_result(
            f"ablation-hints {label:>9s}: {seconds:7.4f} s  "
            f"bytes={total_bytes}  entries={entries}"
        )
