"""Figure 4: processing time vs access ratio, three methods.

Paper setup: a 32,767-node complete binary tree of 16-byte nodes on
the caller; the callee searches depth-first until the access ratio is
reached; closure size 8,192 bytes.  Expected shape: fully eager flat
(~2 s), fully lazy linear and worst (~12 s at ratio 1.0), the proposed
method best below a crossover near ratio 0.6.

With ``--transport both`` every (method, ratio) point runs over the
simulator and over real localhost TCP; both rows carry a
``transport`` tag in ``extra_info`` so the JSON output holds the two
modes side by side (modeled seconds vs wall seconds, same counters).
"""

import pytest
from conftest import record_sim_result

from repro.bench.calibration import FIG4_CLOSURE, FIG4_NODES
from repro.bench.harness import (
    METHODS,
    PROPOSED,
    SIMNET,
    make_world,
    run_tree_call,
)

RATIOS = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]


@pytest.mark.parametrize("ratio", RATIOS)
@pytest.mark.parametrize("method", METHODS)
def test_fig4_search(
    benchmark, method, ratio, transport_mode, policy_mode, closure_order_mode
):
    if method == PROPOSED and policy_mode is not None:
        method = policy_mode

    def run():
        with make_world(
            method,
            closure_size=FIG4_CLOSURE,
            closure_order=closure_order_mode,
            transport=transport_mode,
        ) as world:
            return run_tree_call(world, FIG4_NODES, "search", ratio=ratio)

    run_result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["transport"] = transport_mode
    benchmark.extra_info["policy"] = method
    benchmark.extra_info.update(run_result.ledger())
    benchmark.extra_info["sim_seconds"] = round(run_result.seconds, 4)
    benchmark.extra_info["callbacks"] = run_result.callbacks
    benchmark.extra_info["bytes"] = run_result.bytes_moved
    unit = "sim s" if transport_mode == SIMNET else "wall s"
    record_sim_result(
        f"fig4 {method:>8s} ratio={ratio:.1f} [{transport_mode}]: "
        f"{run_result.seconds:7.3f} {unit}  "
        f"callbacks={run_result.callbacks:6d}  "
        f"bytes={run_result.bytes_moved}"
    )
