#!/usr/bin/env python
"""Record the memory hot-path baseline (``BENCH_hotpath.json``).

What the page-access-token + bulk-run work actually bought, measured
on the host and pinned so CI notices if it erodes:

* ``per_access_ns`` — nanoseconds per resident 4-byte program-plane
  access on each path: ``checked`` (``use_tokens=False``, the legacy
  ``AddressSpace.read`` plane every access), ``tokenized`` (the page
  token fast path), and ``bulk_amortized`` (one ``load_array`` run
  divided by its modelled access count).
* ``linked_list_4096_total`` — the acceptance workload: wall
  milliseconds of one ``total`` call over the 4096-node list on a
  warm session (every page resident, the paper's steady state), on
  the shipped hot path and with tokens disabled, plus the first call
  (fill included) for reference.

Wall numbers measure the host, so the regression gate
(``baseline.py --compare``, via :func:`compare`) checks only the
host-independent *shape*: tokens never slower than the checked path,
bulk clearly cheaper than per-access, and the resident walk at least
``WALK_FLOOR`` times faster with the hot path on.

Timing uses the ``repro.bench.carrier`` discipline: collector off,
best-of-three batches over a wall-time floor.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py            # re-record
    PYTHONPATH=src python benchmarks/bench_hotpath.py --out X.json
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Dict, List

from repro.bench.carrier import seconds_per_call
from repro.bench.harness import CALLEE, make_world
from repro.memory.accessor import Mem
from repro.memory.address_space import AddressSpace
from repro.simnet.clock import SimClock
from repro.workloads.linked_list import build_list, list_client
from repro.xdr.arch import SPARC32
from repro.xdr.types import int32

HERE = Path(__file__).resolve().parent
HOTPATH_BASELINE = HERE / "BENCH_hotpath.json"

LIST_NODES = 4096

#: Accesses per timed batch in the per-access microbenchmark: one
#: page's worth of consecutive 4-byte slots.
MICRO_ACCESSES = 256

#: Host-independent gate floors (see :func:`compare`).
BULK_VS_CHECKED = 0.5
WALK_FLOOR = 1.5

#: The pre-change reference: the same resident walk, same timing
#: discipline, at the commit before the token/bulk work, on the host
#: in the committed meta block.  The in-tree ``use_tokens`` knob
#: cannot reproduce this number — even with tokens off, the ported
#: workloads keep their coalesced access runs — so the full
#: before/after ratio is recorded here rather than re-measured.
PRE_CHANGE_REFERENCE = {
    "commit": "475497f",
    "resident_walk_ms": 21.866,
    "first_call_ms": 138.0,
}


def cpu_model() -> str:
    """The host CPU model string (best effort, never raises)."""
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def host_meta() -> Dict[str, str]:
    """Interpreter + CPU identification for a BENCH meta block."""
    return {
        "interpreter": "%s %s" % (
            platform.python_implementation(), platform.python_version()
        ),
        "cpu": cpu_model(),
    }


def per_access_ns() -> Dict[str, float]:
    """Nanoseconds per resident access on each access plane."""
    offsets = range(0, MICRO_ACCESSES * 4, 4)
    results: Dict[str, float] = {}
    for label, use_tokens in (("checked", False), ("tokenized", True)):
        space = AddressSpace("H")
        mem = Mem(space, clock=SimClock(), use_tokens=use_tokens)
        base = space.map_region(1)
        load = mem.load

        def batch() -> None:
            for offset in offsets:
                load(base + offset, 4)

        results[label] = seconds_per_call(batch) * 1e9 / MICRO_ACCESSES
    space = AddressSpace("H")
    mem = Mem(space, clock=SimClock())
    base = space.map_region(1)

    def bulk_batch() -> None:
        mem.load_array(base, int32, MICRO_ACCESSES, SPARC32)

    results["bulk_amortized"] = (
        seconds_per_call(bulk_batch) * 1e9 / MICRO_ACCESSES
    )
    return {label: round(value, 2) for label, value in results.items()}


def _one_walk_world():
    """(first call s, hot walk s, checked walk s) from one world."""
    with make_world("paper", transport="simnet") as world:
        head = build_list(world.caller, list(range(LIST_NODES)))
        stub = list_client(world.caller, CALLEE)
        with world.caller.session() as session:
            started = time.perf_counter()
            result = stub.total(session, head)
            first = time.perf_counter() - started
            assert result == sum(range(LIST_NODES))
            hot = seconds_per_call(lambda: stub.total(session, head))
            for runtime in (world.caller, world.callee):
                runtime.mem.use_tokens = False
            checked = seconds_per_call(lambda: stub.total(session, head))
    return first, hot, checked


def resident_walk_ms() -> Dict[str, float]:
    """Wall ms of ``total`` over the 4096-node list, warm session.

    Best of three fresh worlds per figure: host noise (scheduler,
    collector, neighbours) spans whole batches, so the minimum is the
    least-contaminated estimate of each path's cost.
    """
    rounds = [_one_walk_world() for _ in range(3)]
    first = min(r[0] for r in rounds)
    hot = min(r[1] for r in rounds)
    checked = min(r[2] for r in rounds)
    return {
        "first_call_ms": round(first * 1e3, 3),
        "hotpath_ms": round(hot * 1e3, 3),
        "checked_ms": round(checked * 1e3, 3),
        "speedup_checked_over_hotpath": round(checked / hot, 2),
        "pre_change_reference": dict(PRE_CHANGE_REFERENCE),
        "speedup_vs_pre_change": round(
            PRE_CHANGE_REFERENCE["resident_walk_ms"] / (hot * 1e3), 2
        ),
    }


def record_hotpath() -> Dict:
    """One full measurement pass: the BENCH_hotpath.json payload."""
    meta = {"transport": "simnet", **host_meta()}
    return {
        "meta": meta,
        "per_access_ns": per_access_ns(),
        "linked_list_4096_total": resident_walk_ms(),
    }


def compare(baseline: Dict, current: Dict, label: str) -> List[str]:
    """Host-independent regressions of ``current`` (empty = pass).

    Absolute nanoseconds differ across hosts; what must hold anywhere
    is the ordering the optimisation exists to produce.
    """
    problems = []
    access = current.get("per_access_ns", {})
    walk = current.get("linked_list_4096_total", {})
    for field, record in (("per_access_ns", access),
                          ("linked_list_4096_total", walk)):
        missing = set(baseline.get(field, {})) - set(record)
        if missing:
            problems.append(
                f"{label}: {field} lost fields {sorted(missing)}"
            )
    if not problems:
        if access["tokenized"] > access["checked"]:
            problems.append(
                f"{label}: tokenized access "
                f"({access['tokenized']} ns) slower than checked "
                f"({access['checked']} ns)"
            )
        if access["bulk_amortized"] > access["checked"] * BULK_VS_CHECKED:
            problems.append(
                f"{label}: bulk access ({access['bulk_amortized']} ns) "
                f"not under {BULK_VS_CHECKED:.0%} of checked "
                f"({access['checked']} ns)"
            )
        if walk["speedup_checked_over_hotpath"] < WALK_FLOOR:
            problems.append(
                f"{label}: resident walk speedup "
                f"{walk['speedup_checked_over_hotpath']}x under the "
                f"{WALK_FLOOR}x floor"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=HOTPATH_BASELINE,
        help="where to write the JSON record "
        "(default: the committed baseline)",
    )
    args = parser.parse_args(argv)
    current = record_hotpath()
    args.out.write_text(json.dumps(current, indent=2) + "\n")
    access = current["per_access_ns"]
    walk = current["linked_list_4096_total"]
    print(f"wrote {args.out.name}")
    print(
        "  per-access ns: checked %.1f, tokenized %.1f, "
        "bulk %.1f" % (
            access["checked"], access["tokenized"],
            access["bulk_amortized"],
        )
    )
    print(
        "  linked_list_4096_total resident walk: hotpath %.2f ms, "
        "checked %.2f ms (%.2fx), first call %.1f ms" % (
            walk["hotpath_ms"], walk["checked_ms"],
            walk["speedup_checked_over_hotpath"], walk["first_call_ms"],
        )
    )
    print(
        "  vs pre-change commit %s: %.2fx" % (
            walk["pre_change_reference"]["commit"],
            walk["speedup_vs_pre_change"],
        )
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
