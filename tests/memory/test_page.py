"""Tests for pages and protection values."""

from repro.memory.page import PAGE_SIZE_DEFAULT, Page, Protection


class TestPage:
    def test_default_size_matches_sunos_sparc(self):
        assert PAGE_SIZE_DEFAULT == 4096  # the paper's testbed

    def test_base_address(self):
        page = Page(5)
        assert page.base_address == 5 * 4096

    def test_contains(self):
        page = Page(2)
        assert page.contains(2 * 4096)
        assert page.contains(3 * 4096 - 1)
        assert not page.contains(3 * 4096)
        assert not page.contains(2 * 4096 - 1)

    def test_data_zeroed_on_creation(self):
        page = Page(0, size=64)
        assert bytes(page.data) == b"\x00" * 64

    def test_default_protection_read_write(self):
        assert Page(0).protection is Protection.READ_WRITE

    def test_custom_size(self):
        page = Page(1, size=8192)
        assert page.size == 8192
        assert page.base_address == 8192
