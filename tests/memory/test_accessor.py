"""Tests for the fault-transparent memory accessor."""

import pytest

from repro.memory.accessor import Mem
from repro.memory.address_space import AddressSpace
from repro.memory.faults import (
    AccessViolation,
    FaultKind,
    FaultLoopError,
)
from repro.memory.page import Protection
from repro.simnet.clock import CostModel, SimClock
from repro.simnet.stats import StatsCollector


@pytest.fixture
def space():
    return AddressSpace("T")


@pytest.fixture
def mem(space):
    return Mem(space, clock=SimClock(), stats=StatsCollector())


class TestPlainAccess:
    def test_load_store_round_trip(self, space, mem):
        base = space.map_region(1)
        mem.store(base, b"data!")
        assert mem.load(base, 5) == b"data!"

    def test_uint_helpers(self, space, mem):
        base = space.map_region(1)
        mem.store_uint(base, 0xDEADBEEF, 4, "big")
        assert mem.load_uint(base, 4, "big") == 0xDEADBEEF
        assert mem.load_uint(base, 4, "little") == 0xEFBEADDE

    def test_int_helpers_signed(self, space, mem):
        base = space.map_region(1)
        mem.store_int(base, -1234, 4, "little")
        assert mem.load_int(base, 4, "little") == -1234

    def test_clock_charged_per_access(self, space):
        clock = SimClock()
        mem = Mem(space, clock=clock,
                  cost_model=CostModel(local_access=1e-6))
        base = space.map_region(1)
        mem.store(base, b"ab")
        mem.load(base, 2)
        assert clock.now == pytest.approx(2e-6)

    def test_no_clock_is_fine(self, space):
        mem = Mem(space)
        base = space.map_region(1)
        mem.store(base, b"x")
        assert mem.load(base, 1) == b"x"


class TestFaultDelivery:
    def test_handler_invoked_and_access_retried(self, space, mem):
        base = space.map_region(1, Protection.NONE)
        seen = []

        def handler(fault):
            seen.append((fault.kind, fault.page_number))
            space.write_raw(base, b"fill")
            space.protect(fault.page_number, Protection.READ_WRITE)

        space.set_fault_handler(handler)
        assert mem.load(base, 4) == b"fill"
        assert seen == [(FaultKind.READ, space.page_number(base))]

    def test_write_fault_reports_write_kind(self, space, mem):
        base = space.map_region(1, Protection.READ)
        kinds = []

        def handler(fault):
            kinds.append(fault.kind)
            space.protect(fault.page_number, Protection.READ_WRITE)

        space.set_fault_handler(handler)
        mem.store(base, b"w")
        assert kinds == [FaultKind.WRITE]

    def test_no_handler_propagates_violation(self, space, mem):
        base = space.map_region(1, Protection.NONE)
        with pytest.raises(AccessViolation):
            mem.load(base, 1)

    def test_unproductive_handler_raises_fault_loop(self, space, mem):
        base = space.map_region(1, Protection.NONE)
        space.set_fault_handler(lambda fault: None)
        with pytest.raises(FaultLoopError):
            mem.load(base, 1)

    def test_faults_counted_in_stats(self, space):
        stats = StatsCollector()
        mem = Mem(space, clock=SimClock(), stats=stats)
        base = space.map_region(1, Protection.NONE)

        def handler(fault):
            space.protect(fault.page_number, Protection.READ_WRITE)

        space.set_fault_handler(handler)
        mem.load(base, 1)
        assert stats.page_faults == 1

    def test_resident_access_does_not_fault_again(self, space, mem):
        """The paper's claim: after caching, access cost is local."""
        base = space.map_region(1, Protection.NONE)
        calls = []

        def handler(fault):
            calls.append(fault.address)
            space.protect(fault.page_number, Protection.READ_WRITE)

        space.set_fault_handler(handler)
        mem.load(base, 4)
        mem.load(base, 4)
        mem.load(base + 100, 4)
        assert len(calls) == 1

    def test_multi_page_access_faults_each_protected_page(self, space, mem):
        base = space.map_region(2, Protection.NONE)
        filled = []

        def handler(fault):
            filled.append(fault.page_number)
            space.protect(fault.page_number, Protection.READ_WRITE)

        space.set_fault_handler(handler)
        mem.load(base + space.page_size - 4, 8)
        assert len(filled) == 2
