"""Page access tokens, bulk access runs, and typed bulk transfers.

The token fast path must be invisible: every behaviour here (fault
delivery, protection enforcement, charge accounting, observer
callbacks) is specified by the checked path, and the token path must
reproduce it exactly — only cheaper.
"""

import pytest

from repro.memory.accessor import Mem
from repro.memory.address_space import AddressSpace
from repro.memory.faults import (
    AccessViolation,
    FaultKind,
    SegmentationError,
)
from repro.memory.page import Protection
from repro.simnet.clock import CostModel, SimClock
from repro.simnet.stats import StatsCollector
from repro.xdr.arch import SPARC32, X86_64
from repro.xdr.types import (
    ArrayType,
    Field,
    OpaqueType,
    PointerType,
    StructType,
    int32,
    int64,
)


@pytest.fixture
def space():
    return AddressSpace("T")


@pytest.fixture
def mem(space):
    return Mem(space, clock=SimClock(), stats=StatsCollector())


class TestTokenFastPath:
    def test_resident_access_skips_checked_path(self, space, mem):
        base = space.map_region(1)
        mem.store(base, b"data")

        def boom(address, size):
            raise AssertionError("checked path used on resident page")

        space.read = boom  # type: ignore[method-assign]
        assert mem.load(base, 4) == b"data"
        assert mem.load(base + 8, 2) == b"\x00\x00"

    def test_use_tokens_false_takes_checked_path(self, space):
        mem = Mem(space, use_tokens=False)
        base = space.map_region(1)
        reads = []
        original = space.read

        def counting(address, size):
            reads.append(address)
            return original(address, size)

        space.read = counting  # type: ignore[method-assign]
        mem.store(base, b"x")
        mem.load(base, 1)
        mem.load(base, 1)
        assert len(reads) == 2

    def test_token_sees_raw_plane_writes(self, space, mem):
        base = space.map_region(1)
        assert mem.load(base, 4) == b"\x00\x00\x00\x00"
        space.write_raw(base, b"wxyz")
        assert mem.load(base, 4) == b"wxyz"

    def test_token_store_visible_to_raw_plane(self, space, mem):
        base = space.map_region(1)
        mem.load(base, 1)  # acquire the token first
        mem.store(base + 4, b"pq")
        assert space.read_raw(base + 4, 2) == b"pq"

    def test_protect_invalidates_tokens(self, space, mem):
        base = space.map_region(1)
        mem.store(base, b"a")  # writable token now cached
        space.protect(space.page_number(base), Protection.READ)
        faults = []

        def handler(fault):
            faults.append(fault.kind)
            space.protect(fault.page_number, Protection.READ_WRITE)

        space.set_fault_handler(handler)
        mem.store(base, b"b")
        assert faults == [FaultKind.WRITE]
        assert mem.load(base, 1) == b"b"

    def test_unmap_invalidates_tokens(self, space, mem):
        base = space.map_region(1)
        mem.load(base, 1)
        space.unmap_page(space.page_number(base))
        with pytest.raises(SegmentationError):
            mem.load(base, 1)

    def test_map_region_invalidates_and_new_pages_work(self, space, mem):
        first = space.map_region(1)
        mem.load(first, 1)
        second = space.map_region(1)
        mem.store(second, b"ok")
        assert mem.load(second, 2) == b"ok"

    def test_read_only_page_denies_token_store(self, space, mem):
        base = space.map_region(1, Protection.READ)
        mem.load(base, 1)  # read token is fine
        with pytest.raises(AccessViolation):
            mem.store(base, b"x")

    def test_cross_page_access_falls_back_correctly(self, space, mem):
        base = space.map_region(2)
        boundary = base + space.page_size - 2
        mem.store(boundary, b"abcd")
        assert mem.load(boundary, 4) == b"abcd"

    def test_tokens_shared_nothing_between_accessors(self, space):
        checked = Mem(space, use_tokens=False)
        fast = Mem(space)
        base = space.map_region(1)
        fast.store(base, b"t")
        assert checked.load(base, 1) == b"t"


class TestFaultCounting:
    def test_raising_handler_scores_no_fault(self, space):
        stats = StatsCollector()
        mem = Mem(space, stats=stats)
        base = space.map_region(1, Protection.NONE)

        def broken(fault):
            raise RuntimeError("handler died before resolving")

        space.set_fault_handler(broken)
        with pytest.raises(RuntimeError):
            mem.load(base, 1)
        assert stats.page_faults == 0

    def test_resolving_handler_scores_one_fault(self, space):
        stats = StatsCollector()
        mem = Mem(space, stats=stats)
        base = space.map_region(1, Protection.NONE)

        def handler(fault):
            space.protect(fault.page_number, Protection.READ_WRITE)

        space.set_fault_handler(handler)
        mem.load(base, 1)
        assert stats.page_faults == 1


class TestAccessRuns:
    def test_load_run_single_coalesced_observer(self, space, mem):
        base = space.map_region(1)
        mem.store(base, b"abcdefgh")
        seen = []
        mem.observer = lambda a, s, w: seen.append((a, s, w))
        assert mem.load_run(base, 8, accesses=2) == b"abcdefgh"
        assert seen == [(base, 8, False)]

    def test_store_run_single_coalesced_observer(self, space, mem):
        base = space.map_region(1)
        seen = []
        mem.observer = lambda a, s, w: seen.append((a, s, w))
        mem.store_run(base, b"zyxw", accesses=4)
        assert seen == [(base, 4, True)]
        assert space.read_raw(base, 4) == b"zyxw"

    def test_run_charges_identical_to_access_loop(self, space):
        model = CostModel(local_access=0.3e-6)
        bulk_clock, loop_clock = SimClock(), SimClock()
        mem = Mem(space, clock=bulk_clock, cost_model=model)
        base = space.map_region(1)
        mem.load_run(base, 16, accesses=7)
        for _ in range(7):
            loop_clock.advance(model.local_access)
        # Exact equality, not approx: a run must accumulate float time
        # in the same order as the per-access loop it replaces.
        assert bulk_clock.now == loop_clock.now

    def test_run_charges_on_checked_path_too(self, space):
        model = CostModel(local_access=0.3e-6)
        clock = SimClock()
        mem = Mem(space, clock=clock, cost_model=model, use_tokens=False)
        base = space.map_region(1)
        mem.load_run(base, 16, accesses=7)
        loop = SimClock()
        for _ in range(7):
            loop.advance(model.local_access)
        assert clock.now == loop.now

    def test_multi_page_run_faults_each_page(self, space, mem):
        base = space.map_region(2, Protection.NONE)
        filled = []

        def handler(fault):
            filled.append(fault.page_number)
            space.protect(fault.page_number, Protection.READ_WRITE)

        space.set_fault_handler(handler)
        boundary = base + space.page_size - 4
        assert mem.load_run(boundary, 8, accesses=2) == b"\x00" * 8
        assert filled == [space.page_number(base),
                          space.page_number(base) + 1]

    def test_run_resolves_fault_then_uses_token(self, space, mem):
        base = space.map_region(1, Protection.NONE)

        def handler(fault):
            space.write_raw(base, b"ready!")
            space.protect(fault.page_number, Protection.READ_WRITE)

        space.set_fault_handler(handler)
        assert mem.load_run(base, 6, accesses=3) == b"ready!"
        space.read = None  # type: ignore[assignment]  # must not be used
        assert mem.load_run(base, 6, accesses=3) == b"ready!"


class TestTypedBulk:
    def test_load_array_int32_round_trip(self, space, mem):
        base = space.map_region(1)
        values = [3, -1, 70000, 0]
        mem.store_array(base, int32, values, SPARC32)
        assert mem.load_array(base, int32, 4, SPARC32) == values

    def test_load_array_int64_round_trip(self, space, mem):
        base = space.map_region(1)
        values = [1 << 40, -5]
        mem.store_array(base, int64, values, SPARC32)
        assert mem.load_array(base, int64, 2, SPARC32) == values

    def test_opaque_array_round_trip(self, space, mem):
        base = space.map_region(1)
        values = [b"aaaabbbb", b"ccccdddd"]
        mem.store_array(base, OpaqueType(8), values, SPARC32)
        assert mem.load_array(base, OpaqueType(8), 2, SPARC32) == values

    def test_non_identity_layout_rejected(self, space, mem):
        base = space.map_region(1)
        # int32 on a little-endian machine is not wire-identical.
        with pytest.raises(ValueError):
            mem.load_array(base, int32, 1, X86_64)
        with pytest.raises(ValueError):
            mem.store_array(base, int32, [1], X86_64)

    def test_negative_count_rejected(self, space, mem):
        base = space.map_region(1)
        with pytest.raises(ValueError):
            mem.load_array(base, int32, -1, SPARC32)

    def test_bad_opaque_element_rejected(self, space, mem):
        base = space.map_region(1)
        with pytest.raises(ValueError):
            mem.store_array(base, OpaqueType(8), [b"short"], SPARC32)

    def test_array_run_charges_once_per_element(self, space):
        model = CostModel(local_access=1e-6)
        clock = SimClock()
        mem = Mem(space, clock=clock, cost_model=model)
        base = space.map_region(1)
        mem.load_array(base, int32, 5, SPARC32)
        loop = SimClock()
        for _ in range(5):
            loop.advance(model.local_access)
        assert clock.now == loop.now

    def test_load_struct_run_orders_and_flattens(self, space, mem):
        spec = StructType("node", [
            Field("edges", ArrayType(PointerType("node"), 3)),
            Field("weight", int64),
        ])
        base = space.map_region(1)
        layout = spec.layout(SPARC32)
        for slot, target in enumerate((0x10, 0x20, 0x30)):
            space.write_raw(
                layout.offsets["edges"] + base + slot * 4,
                target.to_bytes(4, "big"),
            )
        space.write_raw(
            base + layout.offsets["weight"],
            (99).to_bytes(8, "big", signed=True),
        )
        run = mem.load_struct_run(base, spec, ("weight", "edges"), SPARC32)
        assert run == (99, 0x10, 0x20, 0x30)
