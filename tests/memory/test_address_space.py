"""Tests for paged address spaces and protection."""

import pytest

from repro.memory.address_space import REGION_BASE, AddressSpace
from repro.memory.faults import AccessViolation, FaultKind, SegmentationError
from repro.memory.page import Protection


@pytest.fixture
def space():
    return AddressSpace("T")


class TestMapping:
    def test_map_region_returns_base(self, space):
        base = space.map_region(2)
        assert base >= REGION_BASE
        assert base % space.page_size == 0
        assert space.is_mapped(base)
        assert space.is_mapped(base + 2 * space.page_size - 1)

    def test_regions_do_not_overlap(self, space):
        first = space.map_region(1)
        second = space.map_region(1)
        assert second >= first + space.page_size

    def test_page_zero_never_mapped(self, space):
        space.map_region(4)
        assert not space.is_mapped(0)  # NULL stays invalid

    def test_bad_region_size_rejected(self, space):
        with pytest.raises(ValueError):
            space.map_region(0)

    def test_unmap_page(self, space):
        base = space.map_region(1)
        number = space.page_number(base)
        space.unmap_page(number)
        assert not space.is_mapped(base)

    def test_unmap_unmapped_page_raises(self, space):
        with pytest.raises(SegmentationError):
            space.unmap_page(999)

    def test_bad_page_size_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace("x", page_size=100)  # not a multiple of 8
        with pytest.raises(ValueError):
            AddressSpace("x", page_size=0)


class TestCheckedAccess:
    def test_read_write_round_trip(self, space):
        base = space.map_region(1)
        space.write(base + 8, b"hello")
        assert space.read(base + 8, 5) == b"hello"

    def test_fresh_pages_are_zeroed(self, space):
        base = space.map_region(1)
        assert space.read(base, 16) == b"\x00" * 16

    def test_unmapped_read_is_segfault(self, space):
        with pytest.raises(SegmentationError):
            space.read(REGION_BASE, 4)

    def test_protected_read_raises_access_violation(self, space):
        base = space.map_region(1, Protection.NONE)
        with pytest.raises(AccessViolation) as info:
            space.read(base + 4, 4)
        assert info.value.kind is FaultKind.READ
        assert info.value.page_number == space.page_number(base)

    def test_read_only_page_allows_read_blocks_write(self, space):
        base = space.map_region(1, Protection.READ)
        space.read(base, 4)
        with pytest.raises(AccessViolation) as info:
            space.write(base, b"1234")
        assert info.value.kind is FaultKind.WRITE

    def test_cross_page_access_checks_both_pages(self, space):
        base = space.map_region(2)
        boundary = base + space.page_size - 2
        space.write(boundary, b"abcd")
        assert space.read(boundary, 4) == b"abcd"
        space.protect(space.page_number(base) + 1, Protection.NONE)
        with pytest.raises(AccessViolation):
            space.read(boundary, 4)

    def test_fault_address_points_into_protected_page(self, space):
        base = space.map_region(2)
        second = space.page_number(base) + 1
        space.protect(second, Protection.NONE)
        boundary = base + space.page_size - 2
        with pytest.raises(AccessViolation) as info:
            space.read(boundary, 4)
        assert info.value.address == second * space.page_size

    def test_negative_size_rejected(self, space):
        base = space.map_region(1)
        with pytest.raises(ValueError):
            space.read(base, -1)


class TestRawAccess:
    def test_raw_ignores_protection(self, space):
        base = space.map_region(1, Protection.NONE)
        space.write_raw(base, b"secret")
        assert space.read_raw(base, 6) == b"secret"

    def test_raw_cross_page(self, space):
        base = space.map_region(2, Protection.NONE)
        data = bytes(range(100))
        space.write_raw(base + space.page_size - 50, data)
        assert space.read_raw(base + space.page_size - 50, 100) == data

    def test_raw_unmapped_still_segfaults(self, space):
        with pytest.raises(SegmentationError):
            space.read_raw(REGION_BASE, 1)


class TestProtection:
    def test_protect_changes_protection(self, space):
        base = space.map_region(1)
        number = space.page_number(base)
        assert space.protection_of(number) is Protection.READ_WRITE
        space.protect(number, Protection.NONE)
        assert space.protection_of(number) is Protection.NONE

    def test_protection_enum_semantics(self):
        assert not Protection.NONE.allows_read()
        assert not Protection.NONE.allows_write()
        assert Protection.READ.allows_read()
        assert not Protection.READ.allows_write()
        assert Protection.READ_WRITE.allows_read()
        assert Protection.READ_WRITE.allows_write()

    def test_mapped_pages_sorted(self, space):
        space.map_region(3)
        pages = space.mapped_pages
        assert pages == sorted(pages)
        assert len(pages) == 3


class TestGenerationAndPageCache:
    """The invalidation contract the accessor's tokens rely on."""

    def test_map_bumps_generation(self, space):
        before = space.generation
        space.map_region(1)
        assert space.generation > before

    def test_protect_bumps_generation(self, space):
        base = space.map_region(1)
        before = space.generation
        space.protect(space.page_number(base), Protection.READ)
        assert space.generation > before

    def test_unmap_bumps_generation(self, space):
        base = space.map_region(1)
        before = space.generation
        space.unmap_page(space.page_number(base))
        assert space.generation > before

    def test_reads_do_not_bump_generation(self, space):
        base = space.map_region(1)
        before = space.generation
        space.read(base, 4)
        space.write(base, b"x")
        space.read_raw(base, 4)
        assert space.generation == before

    def test_mapped_pages_cache_tracks_map_and_unmap(self, space):
        base = space.map_region(2)
        first = space.page_number(base)
        assert space.mapped_pages == [first, first + 1]
        assert space.mapped_pages == [first, first + 1]  # cached hit
        space.unmap_page(first)
        assert space.mapped_pages == [first + 1]
        space.map_region(1)
        assert len(space.mapped_pages) == 2

    def test_mapped_pages_returns_fresh_list(self, space):
        space.map_region(1)
        pages = space.mapped_pages
        pages.append(-1)  # caller mutation must not poison the cache
        assert -1 not in space.mapped_pages

    def test_page_if_mapped(self, space):
        base = space.map_region(1)
        number = space.page_number(base)
        assert space.page_if_mapped(number) is not None
        assert space.page_if_mapped(number + 7) is None
