"""Tests for the typed heap."""

import pytest

from repro.memory.address_space import AddressSpace
from repro.memory.heap import Heap, HeapError


@pytest.fixture
def heap():
    return Heap(AddressSpace("T"))


class TestMalloc:
    def test_returns_distinct_aligned_addresses(self, heap):
        a = heap.malloc(16, "t")
        b = heap.malloc(16, "t")
        assert a != b
        assert a % 8 == 0 and b % 8 == 0

    def test_size_rounds_up_to_alignment(self, heap):
        a = heap.malloc(5, "t")
        allocation = heap.allocation_at(a)
        assert allocation.size == 8

    def test_type_recorded(self, heap):
        a = heap.malloc(16, "tree_node")
        assert heap.allocation_at(a).type_id == "tree_node"

    def test_bad_size_rejected(self, heap):
        with pytest.raises(HeapError):
            heap.malloc(0, "t")
        with pytest.raises(HeapError):
            heap.malloc(-4, "t")

    def test_large_allocation_spans_pages(self, heap):
        size = heap.space.page_size * 3 + 100
        a = heap.malloc(size, "big")
        assert heap.allocation_at(a + size - 1) is not None

    def test_memory_is_usable(self, heap):
        a = heap.malloc(32, "t")
        heap.space.write(a, b"z" * 32)
        assert heap.space.read(a, 32) == b"z" * 32


class TestFree:
    def test_free_removes_allocation(self, heap):
        a = heap.malloc(16, "t")
        heap.free(a)
        assert heap.allocation_at(a) is None

    def test_double_free_rejected(self, heap):
        a = heap.malloc(16, "t")
        heap.free(a)
        with pytest.raises(HeapError):
            heap.free(a)

    def test_free_foreign_address_rejected(self, heap):
        with pytest.raises(HeapError):
            heap.free(12345)

    def test_free_interior_pointer_rejected(self, heap):
        a = heap.malloc(16, "t")
        with pytest.raises(HeapError):
            heap.free(a + 4)

    def test_freed_space_reused_for_same_size(self, heap):
        a = heap.malloc(24, "t")
        heap.free(a)
        b = heap.malloc(24, "t")
        assert b == a

    def test_freed_space_not_reused_for_other_size(self, heap):
        a = heap.malloc(24, "t")
        heap.free(a)
        b = heap.malloc(48, "t")
        assert b != a


class TestLookup:
    def test_interior_lookup_finds_containing_allocation(self, heap):
        a = heap.malloc(64, "t")
        allocation = heap.allocation_at(a + 63)
        assert allocation is not None and allocation.address == a

    def test_lookup_past_end_misses(self, heap):
        a = heap.malloc(16, "t")
        b = heap.malloc(16, "t")
        # address between a's end and b's start (if any) or inside b
        hit = heap.allocation_at(a + 16)
        assert hit is None or hit.address == b

    def test_owns(self, heap):
        a = heap.malloc(16, "t")
        assert heap.owns(a)
        assert heap.owns(a + 15)
        assert not heap.owns(0)

    def test_live_allocations_sorted_by_address(self, heap):
        addresses = [heap.malloc(16, "t") for _ in range(10)]
        live = heap.live_allocations
        assert [a.address for a in live] == sorted(addresses)

    def test_live_bytes(self, heap):
        heap.malloc(16, "t")
        heap.malloc(32, "t")
        assert heap.live_bytes == 48


class TestGrowth:
    def test_many_allocations_grow_heap(self, heap):
        addresses = [heap.malloc(1000, "t") for _ in range(200)]
        assert len(set(addresses)) == 200
        for address in addresses:
            assert heap.owns(address)

    def test_allocations_never_overlap(self, heap):
        import random
        rng = random.Random(7)
        live = {}
        for _ in range(500):
            if live and rng.random() < 0.4:
                address = rng.choice(list(live))
                heap.free(address)
                del live[address]
            else:
                size = rng.randint(1, 300)
                address = heap.malloc(size, "t")
                live[address] = heap.allocation_at(address).size
        spans = sorted((a, a + s) for a, s in live.items())
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2
