"""Smart RPC sessions over shared memory, in-process.

The same suite shape as ``test_tcp_smartrpc.py``: three transport
stacks (name server, caller, callee) while the smart runtime above
them swizzles long pointers, pulls faulted pages, piggybacks modified
data, writes back and invalidates at session end.  What shm adds is
checked on top: bulk transfers arrive as ``segment-handover`` events
(pages mapped in place, not streamed), and a write-back big enough to
spill stays pinned in the ground's segment until the commit applies it
straight out of shared memory.
"""

import pytest

from repro.analysis import trace_rules
from repro.analysis.diagnostics import DiagnosticCollector
from repro.bench.harness import CALLEE, PROPOSED, make_world, run_tree_call
from repro.simnet.tracefmt import save_trace
from repro.workloads.traversal import (
    bind_tree_expose,
    expected_search_checksum,
    tree_client,
    tree_expose_client,
)
from repro.workloads.trees import (
    TREE_NODE_TYPE_ID,
    build_complete_tree,
    local_tree_checksum,
)
from repro.xdr.view import StructView

NODES = 63
EXPOSED_NODES = 7
BULK_NODES = 255  # write-back batch well past the ring spill threshold


def _modify_remote_root(world, session, stub):
    """Fetch the callee-homed root pointer and dirty it on the ground."""
    pointer = stub.tree_root(session)
    spec = world.caller.resolver.resolve(TREE_NODE_TYPE_ID)
    view = StructView(world.caller.mem, pointer, spec, world.caller.arch)
    view.set("data", (555).to_bytes(8, "big"))


def _modify_whole_remote_tree(world, session, stub, delta=1000):
    """Walk the exposed tree on the ground, adding ``delta`` per node."""
    spec = world.caller.resolver.resolve(TREE_NODE_TYPE_ID)
    stack = [stub.tree_root(session)]
    touched = 0
    while stack:
        address = stack.pop()
        if address == 0:
            continue
        view = StructView(world.caller.mem, address, spec, world.caller.arch)
        value = int.from_bytes(view.get("data"), "big") + delta
        view.set("data", value.to_bytes(8, "big"))
        touched += 1
        stack.append(view.get("right"))
        stack.append(view.get("left"))
    return touched


@pytest.fixture
def shm_world():
    with make_world(PROPOSED, transport="shm", trace=True) as world:
        yield world


def test_session_results_match_simnet_semantics(shm_world):
    run = run_tree_call(shm_world, NODES, "search", ratio=1.0)
    assert run.result == expected_search_checksum(NODES, NODES)
    assert run.page_faults > 0  # data moved by fault-driven pull


def test_update_session_piggybacks_modifications_over_shm(shm_world):
    root = build_complete_tree(shm_world.caller, NODES)
    stub = tree_client(shm_world.caller, CALLEE)
    with shm_world.caller.session() as session:
        result = stub.search_update(session, root, NODES)
    assert result == expected_search_checksum(NODES, NODES)
    expected = expected_search_checksum(NODES, NODES) + NODES
    assert local_tree_checksum(shm_world.caller, root) == expected
    assert shm_world.stats.invalidations > 0


def test_ground_modification_written_back_over_shm(shm_world):
    remote_root = build_complete_tree(shm_world.callee, EXPOSED_NODES)
    bind_tree_expose(shm_world.callee, remote_root)
    stub = tree_expose_client(shm_world.caller, CALLEE)
    with shm_world.caller.session() as session:
        _modify_remote_root(shm_world, session, stub)
    assert shm_world.stats.write_backs > 0
    with shm_world.caller.session() as session:
        checksum = stub.tree_checksum(session)
    assert checksum == sum(range(EXPOSED_NODES)) + 555


def test_bulk_writeback_commits_out_of_shared_segment(shm_world):
    """A write-back batch past the spill threshold ships as a segment
    extent: prepare retains the carrier lease, commit applies straight
    out of the ground's data segment — the batch bytes cross exactly
    once, as a handover, never as a stream."""
    remote_root = build_complete_tree(shm_world.callee, BULK_NODES)
    bind_tree_expose(shm_world.callee, remote_root)
    stub = tree_expose_client(shm_world.caller, CALLEE)
    with shm_world.caller.session() as session:
        touched = _modify_whole_remote_tree(shm_world, session, stub)
    assert touched == BULK_NODES
    assert shm_world.stats.write_backs > 0
    handovers = list(shm_world.stats.events_in("segment-handover"))
    assert any(
        event.data["kind"] == "writeback_prepare" for event in handovers
    )
    # The staged batch landed exactly once.
    with shm_world.caller.session() as session:
        checksum = stub.tree_checksum(session)
    assert checksum == sum(range(BULK_NODES)) + 1000 * BULK_NODES


def test_shm_trace_passes_conformance_rules(shm_world, tmp_path):
    root = build_complete_tree(shm_world.caller, NODES)
    remote_root = build_complete_tree(shm_world.callee, EXPOSED_NODES)
    bind_tree_expose(shm_world.callee, remote_root)
    stub = tree_client(shm_world.caller, CALLEE)
    expose = tree_expose_client(shm_world.caller, CALLEE)
    with shm_world.caller.session() as session:
        stub.search_update(session, root, NODES)
        _modify_remote_root(shm_world, session, expose)
    categories = {event.category for event in shm_world.stats.events}
    assert {
        "message",
        "transfer",
        "fault",
        "session-end",
        "write-back",
        "invalidate",
    } <= categories
    trace_path = tmp_path / "shm-session.jsonl"
    save_trace(shm_world.stats, trace_path)
    collector = DiagnosticCollector()
    trace_rules.analyze_trace_file(trace_path, collector)
    assert list(collector) == []
