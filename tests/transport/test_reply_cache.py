"""Reply-cache duplicate suppression: LRU on access, not insertion.

The regression here is the satellite fix: an exchange id that keeps
being retransmitted (hot) must not be evicted before ids that were
merely inserted earlier but never touched again (cold).  Under
insertion-order eviction a long-running retransmitting exchange lost
its cached reply — and with it the at-most-once guarantee.
"""

from repro.simnet.message import Message, MessageKind
from repro.simnet.network import Network
from repro.transport.base import ReplyCache


def test_hit_refreshes_recency_hot_entry_survives():
    cache = ReplyCache(limit=3)
    cache.put("hot", b"hot-reply")
    cache.put("cold-1", b"c1")
    cache.put("cold-2", b"c2")
    # The hot exchange retransmits: a hit must refresh its recency.
    assert cache.get("hot") == b"hot-reply"
    # Two more exchanges overflow the cache.  Insertion-order eviction
    # would now drop "hot" (the oldest insert); LRU must drop the
    # cold entries instead.
    cache.put("cold-3", b"c3")
    cache.put("cold-4", b"c4")
    assert cache.get("hot") == b"hot-reply"
    assert "cold-1" not in cache
    assert "cold-2" not in cache


def test_misses_do_not_count_as_hits():
    cache = ReplyCache(limit=2)
    assert cache.get("absent") is None
    cache.put("k", b"v")
    assert cache.get("k") == b"v"
    assert cache.hits == 1


def test_put_evicts_least_recently_used_only():
    cache = ReplyCache(limit=2)
    cache.put("a", b"1")
    cache.put("b", b"2")
    cache.get("a")
    cache.put("c", b"3")
    assert "a" in cache and "c" in cache and "b" not in cache
    assert len(cache) == 2


def test_site_duplicate_suppression_is_lru(monkeypatch):
    """The simnet Site inherits the LRU cache: a hot retransmitted
    exchange keeps returning its cached reply (handler runs once) even
    after enough cold exchanges to overflow the cache."""
    network = Network(reply_cache_limit=4)
    site = network.add_site("B")
    calls = []
    site.register_handler(
        MessageKind.CALL, lambda m: calls.append(m.payload) or b"r"
    )

    def deliver(exchange_id, payload=b"p"):
        message = Message(
            src="A", dst="B", kind=MessageKind.CALL, payload=payload
        )
        return site.handle_at_most_once(exchange_id, message)

    assert deliver("hot") == b"r"
    assert len(calls) == 1
    for index in range(8):  # cold traffic far beyond the limit...
        deliver(f"cold-{index}")
        assert deliver("hot") == b"r"  # ...with hot retransmissions
    assert len(calls) == 1 + 8  # hot executed once, colds once each
