"""Wire format: length-prefixed XDR frames round-trip exactly."""

import pytest

from repro.transport.framing import (
    LENGTH_PREFIX,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    STATUS_HANDLER_ERROR,
    STATUS_OK,
    FramingError,
    Goodbye,
    Hello,
    Ping,
    Pong,
    Reply,
    Request,
    Welcome,
    decode_frame,
    encode_frame,
    frame_length,
    split_buffer,
)

FRAMES = [
    Hello(version=PROTOCOL_VERSION, site_id="A"),
    Welcome(version=PROTOCOL_VERSION, site_id="B"),
    Goodbye(site_id="B", reason="unsupported protocol version"),
    Request(
        exchange_id=(7 << 32) | 1,
        src="A",
        dst="B",
        kind="call",
        expects_reply=True,
        payload=b"\x00\x01payload",
    ),
    Request(
        exchange_id=2,
        src="A",
        dst="B",
        kind="invalidate",
        expects_reply=False,
        payload=b"",
    ),
    Reply(exchange_id=(7 << 32) | 1, status=STATUS_OK, payload=b"ok"),
    Reply(exchange_id=3, status=STATUS_HANDLER_ERROR, payload=b"boom"),
    Ping(token=41),
    Pong(token=41),
]


@pytest.mark.parametrize("frame", FRAMES, ids=lambda f: type(f).__name__)
def test_round_trip(frame):
    encoded = encode_frame(frame)
    body_len = frame_length(encoded[: LENGTH_PREFIX.size])
    assert len(encoded) == LENGTH_PREFIX.size + body_len
    assert decode_frame(encoded[LENGTH_PREFIX.size :]) == frame


def test_split_buffer_reassembles_partial_frames():
    stream = b"".join(encode_frame(frame) for frame in FRAMES)
    decoded = []
    buffer = b""
    # Feed the byte stream one octet at a time: framing must never
    # yield a frame early and never lose bytes across the boundaries.
    for offset in range(len(stream)):
        buffer += stream[offset : offset + 1]
        frame, buffer = split_buffer(buffer)
        if frame is not None:
            decoded.append(frame)
    assert decoded == FRAMES
    assert buffer == b""


def test_oversized_length_prefix_rejected():
    prefix = LENGTH_PREFIX.pack(MAX_FRAME_BYTES + 1)
    with pytest.raises(FramingError):
        frame_length(prefix)


def test_truncated_body_rejected():
    encoded = encode_frame(Ping(token=9))
    with pytest.raises(FramingError):
        decode_frame(encoded[LENGTH_PREFIX.size : -2])


def test_trailing_garbage_rejected():
    body = encode_frame(Ping(token=9))[LENGTH_PREFIX.size :]
    with pytest.raises(FramingError):
        decode_frame(body + b"\x00\x00\x00\x00")


def test_unknown_frame_type_rejected():
    with pytest.raises(FramingError):
        decode_frame(b"\x00\x00\x00\x63")
