"""ShmTransport behaviour: rings, segment extents, leases, reliability.

The exchange-level tests mirror ``test_tcp.py`` one for one — the shm
carrier implements the same contract — and then add what is unique to
shared memory: extent handovers for bulk payloads, the stamp/epoch
validation protocol, zero-copy send buffers, deferred reply acks and
stale-segment reaping.

All tests run several transports inside one interpreter; the rings are
genuinely shared memory, so the cross-process protocol is exercised in
full (separate-process coverage lives in ``test_cross_process.py`` and
the crash matrix).
"""

import os
import struct
import time

import pytest

from repro.simnet.message import MessageKind
from repro.simnet.stats import StatsCollector
from repro.transport.base import RetryPolicy, TransportError
from repro.transport.framing import FramingError
from repro.transport.shm import (
    SHM_DIR,
    SegmentAllocator,
    ShmTransport,
    _EXTENT_HEADER,
    _Ring,
    _SLOT_HEADER,
    purge_stale_segments,
)
from repro.transport.tcp import (
    FaultInjector,
    HandshakeError,
    RemoteHandlerError,
)

FAST_RETRY = RetryPolicy(
    timeout=0.2, backoff=2.0, max_timeout=1.0, max_attempts=4
)

_U64 = struct.Struct("<Q")


# -- ring unit tests ----------------------------------------------------------


def _make_ring(slots=4, slot_bytes=64):
    region = bytearray(_Ring.region_size(slots, slot_bytes))
    mv = memoryview(region)
    _Ring.format(mv, 0, slots, slot_bytes)
    producer = _Ring(mv, 0, slots, slot_bytes)
    consumer = _Ring(mv, 0, slots, slot_bytes)
    return producer, consumer


def test_ring_round_trip():
    producer, consumer = _make_ring()
    assert consumer.try_pop() is None
    assert producer.try_push(b"hello")
    assert consumer.try_pop() == b"hello"
    assert consumer.try_pop() is None


def test_ring_full_refuses_then_recovers():
    producer, consumer = _make_ring(slots=2)
    assert producer.try_push(b"a")
    assert producer.try_push(b"b")
    # Both slots hold unconsumed frames: the producer must not overwrite.
    assert not producer.try_push(b"c")
    assert consumer.try_pop() == b"a"
    assert producer.try_push(b"c")
    assert consumer.try_pop() == b"b"
    assert consumer.try_pop() == b"c"


def test_ring_wraps_many_laps():
    producer, consumer = _make_ring(slots=3)
    for lap in range(50):
        body = str(lap).encode()
        assert producer.try_push(body)
        assert consumer.try_pop() == body


def test_ring_oversize_frame_raises():
    producer, _consumer = _make_ring(slot_bytes=32)
    with pytest.raises(FramingError):
        producer.try_push(b"x" * 33)


# -- allocator unit tests -----------------------------------------------------


@pytest.fixture
def allocator():
    alloc = SegmentAllocator(
        "srpc-test-" + os.urandom(4).hex(), 64 * 1024
    )
    yield alloc
    alloc.close()


def test_allocator_reserve_publish_release(allocator):
    offset, stamp, view = allocator.reserve(100)
    view[:3] = b"abc"
    allocator.publish(offset)
    # The stamp lands in the extent header, after the payload write.
    assert _U64.unpack_from(allocator.shm.buf, offset)[0] == stamp
    assert allocator.release(offset, stamp)
    assert allocator.pinned_bytes() == 0


def test_allocator_release_is_stamp_guarded(allocator):
    offset, stamp, _view = allocator.reserve(100)
    # A stale ack (wrong stamp) must not free a live extent.
    assert not allocator.release(offset, stamp + 1)
    assert allocator.pinned_bytes() > 0
    assert allocator.release(offset, stamp)


def test_allocator_skips_pinned_extents(allocator):
    offset_a, stamp_a, _ = allocator.reserve(100)
    offset_b, stamp_b, _ = allocator.reserve(100)
    assert offset_a != offset_b
    allocator.release(offset_a, stamp_a)
    offset_c, _stamp_c, _ = allocator.reserve(40 * 1024)
    # The big extent must not overlap the still-pinned b.
    start_c, end_c = offset_c, offset_c + _EXTENT_HEADER + 40 * 1024
    start_b, end_b = offset_b, offset_b + _EXTENT_HEADER + 100
    assert end_c <= start_b or start_c >= end_b
    allocator.release(offset_b, stamp_b)


def test_allocator_exhaustion_raises(allocator):
    pins = [allocator.reserve(8 * 1024) for _ in range(7)]
    with pytest.raises(TransportError) as excinfo:
        allocator.reserve(32 * 1024, timeout=0.2)
    assert "segment-size" in str(excinfo.value)
    for offset, stamp, _ in pins:
        allocator.release(offset, stamp)


def test_allocator_oversize_payload_raises(allocator):
    with pytest.raises(TransportError):
        allocator.reserve(65 * 1024)


def test_allocator_release_peer(allocator):
    allocator.reserve(64, peer="B")
    allocator.reserve(64, peer="B")
    allocator.reserve(64, peer="C")
    assert allocator.release_peer("B") == 2
    assert allocator.release_peer("B") == 0
    assert allocator.release_peer("C") == 1


def test_allocator_epoch_bump(allocator):
    before = allocator.epoch
    allocator.bump_epoch()
    assert allocator.epoch == before + 1
    header_epoch = _U64.unpack_from(allocator.shm.buf, 16)[0]
    assert header_epoch == allocator.epoch


# -- transport fixture --------------------------------------------------------


@pytest.fixture
def stacks():
    """Factory for started transports, all closed at teardown."""
    opened = []

    def make(site_id, **kwargs):
        kwargs.setdefault("retry", FAST_RETRY)
        transport = ShmTransport(site_id, **kwargs)
        transport.start()
        opened.append(transport)
        for other in opened:
            if other is not transport:
                if transport.address is not None:
                    other.add_peer(site_id, transport.address)
                if other.address is not None:
                    transport.add_peer(other.site_id, other.address)
        return transport

    yield make
    names = [t.name for t in opened]
    for transport in opened:
        transport.close()
    # Every segment this test created must be gone from /dev/shm.
    leftovers = [
        entry
        for entry in os.listdir(SHM_DIR)
        if any(entry.startswith(name) for name in names)
    ]
    assert leftovers == []


def _echo_server(stacks, site_id="B", **kwargs):
    server = stacks(site_id, **kwargs)
    server.endpoint.register_handler(
        MessageKind.CALL, lambda m: b"echo:" + m.payload
    )
    return server


# -- exchange contract (mirrors test_tcp.py) ----------------------------------


def test_basic_exchange(stacks):
    _echo_server(stacks)
    client = stacks("A")
    reply = client.endpoint.send(
        "B", MessageKind.CALL, b"hi", reply_kind=MessageKind.REPLY
    )
    assert reply == b"echo:hi"


def test_one_way_message(stacks):
    server = stacks("B")
    seen = []
    server.endpoint.register_handler(
        MessageKind.INVALIDATE, lambda m: seen.append(m.payload) or b""
    )
    client = stacks("A")
    assert client.endpoint.send("B", MessageKind.INVALIDATE, b"x") == b""
    assert seen == [b"x"]


def test_connection_pool_reuses_one_dial(stacks):
    _echo_server(stacks)
    client = stacks("A")
    for index in range(10):
        client.endpoint.send(
            "B",
            MessageKind.CALL,
            str(index).encode(),
            reply_kind=MessageKind.REPLY,
        )
    assert client.dials["B"] == 1


def test_handshake_version_mismatch_refused(stacks):
    _echo_server(stacks)
    rogue = stacks("R", protocol_version=99)
    with pytest.raises(HandshakeError) as excinfo:
        rogue.endpoint.send(
            "B", MessageKind.CALL, b"hi", reply_kind=MessageKind.REPLY
        )
    assert "version" in str(excinfo.value)


def test_dropped_request_is_retransmitted(stacks):
    _echo_server(stacks)
    client = stacks("A", faults=FaultInjector(drop_requests={1}))
    reply = client.endpoint.send(
        "B", MessageKind.CALL, b"hi", reply_kind=MessageKind.REPLY
    )
    assert reply == b"echo:hi"
    assert client.retransmissions == 1


def test_duplicated_request_executes_once(stacks):
    server = stacks("B")
    calls = []
    server.endpoint.register_handler(
        MessageKind.CALL,
        lambda m: calls.append(m.payload) or str(len(calls)).encode(),
    )
    client = stacks("A", faults=FaultInjector(duplicate_requests={1}))
    reply = client.endpoint.send(
        "B", MessageKind.CALL, b"hi", reply_kind=MessageKind.REPLY
    )
    assert reply == b"1"
    assert calls == [b"hi"]


def test_dropped_reply_served_from_cache(stacks):
    server = stacks("B", faults=FaultInjector(drop_replies={1}))
    calls = []
    server.endpoint.register_handler(
        MessageKind.CALL,
        lambda m: calls.append(m.payload) or str(len(calls)).encode(),
    )
    client = stacks("A")
    reply = client.endpoint.send(
        "B", MessageKind.CALL, b"hi", reply_kind=MessageKind.REPLY
    )
    assert reply == b"1"
    assert calls == [b"hi"]
    assert client.retransmissions >= 1
    assert server.endpoint.reply_cache.hits >= 1


def test_retry_exhaustion_raises(stacks):
    _echo_server(stacks)
    client = stacks(
        "A",
        faults=FaultInjector(drop_requests={1, 2}),
        retry=RetryPolicy(timeout=0.1, max_attempts=2),
    )
    with pytest.raises(TransportError):
        client.endpoint.send(
            "B", MessageKind.CALL, b"hi", reply_kind=MessageKind.REPLY
        )


def test_unknown_destination_raises(stacks):
    client = stacks("A")
    with pytest.raises(TransportError):
        client.endpoint.send(
            "nowhere", MessageKind.CALL, b"", reply_kind=MessageKind.REPLY
        )


def test_remote_handler_exception_propagates(stacks):
    server = stacks("B")

    def explode(message):
        raise RuntimeError("kaboom")

    server.endpoint.register_handler(MessageKind.CALL, explode)
    client = stacks("A")
    with pytest.raises(RemoteHandlerError) as excinfo:
        client.endpoint.send(
            "B", MessageKind.CALL, b"", reply_kind=MessageKind.REPLY
        )
    assert "kaboom" in str(excinfo.value)


def test_nested_exchange_back_to_blocked_caller(stacks):
    """B's handler calls back into A while A is blocked on B — the
    shape of every fault-driven data request."""
    a = stacks("A")
    b = stacks("B")
    a.endpoint.register_handler(
        MessageKind.DATA_REQUEST, lambda m: b"data:" + m.payload
    )

    def relay(message):
        inner = b.endpoint.send(
            "A",
            MessageKind.DATA_REQUEST,
            message.payload,
            reply_kind=MessageKind.DATA_REPLY,
        )
        return b"relay:" + inner

    b.endpoint.register_handler(MessageKind.CALL, relay)
    reply = a.endpoint.send(
        "B", MessageKind.CALL, b"x", reply_kind=MessageKind.REPLY
    )
    assert reply == b"relay:data:x"


def test_ping_measures_round_trip(stacks):
    _echo_server(stacks)
    client = stacks("A")
    assert client.ping("B") > 0.0


def test_send_before_start_raises():
    transport = ShmTransport("A")
    try:
        with pytest.raises(TransportError):
            transport.exchange("B", MessageKind.CALL, b"", None)
    finally:
        transport.close()


# -- segment handover (what shm adds) -----------------------------------------


def test_bulk_payload_ships_as_extent(stacks):
    """Payloads above the spill threshold travel as segment offsets:
    the ring carries a fixed-size descriptor, the bytes never move."""
    _echo_server(stacks)
    client = stacks("A")
    body = bytes(range(256)) * 4096  # 1 MiB, way past any slot
    reply = client.endpoint.send(
        "B", MessageKind.CALL, body, reply_kind=MessageKind.REPLY
    )
    assert reply == b"echo:" + body
    # The reply came back as an extent too: the client mapped it in
    # place instead of copying a stream.
    assert client.handovers == 1


def test_bulk_reply_handover_counted_on_server(stacks):
    server = _echo_server(stacks)
    client = stacks("A")
    body = b"z" * (client.spill_threshold + 1)
    reply = client.endpoint.send(
        "B", MessageKind.CALL, body, reply_kind=MessageKind.REPLY
    )
    assert reply == b"echo:" + body
    assert server.handovers == 1  # the request extent, mapped by B
    assert client.handovers == 1  # the reply extent, mapped by A


def test_small_payload_stays_inline(stacks):
    server = _echo_server(stacks)
    client = stacks("A")
    client.endpoint.send(
        "B", MessageKind.CALL, b"tiny", reply_kind=MessageKind.REPLY
    )
    assert client.handovers == 0
    assert server.handovers == 0


def test_bulk_counters_charge_logical_bytes(stacks):
    """Stats must count the payload the runtime sent, not the 60-byte
    descriptor the ring carried — counter parity with tcp/simnet."""
    stats = StatsCollector()
    _echo_server(stacks, stats=stats)
    client = stacks("A", stats=stats)
    body = b"q" * 100_000
    client.endpoint.send(
        "B", MessageKind.CALL, body, reply_kind=MessageKind.REPLY
    )
    assert stats.bytes_by_kind[MessageKind.CALL] == len(body)
    assert stats.bytes_by_kind[MessageKind.REPLY] == len(body) + len(b"echo:")


def test_reserve_payload_zero_copy_send(stacks):
    """A caller can write straight into the data segment and ship the
    extent without the transport ever copying the body."""
    server = stacks("B")
    server.endpoint.register_handler(
        MessageKind.CALL, lambda m: str(len(m.payload)).encode()
    )
    client = stacks("A")
    payload = client.reserve_payload(50_000)
    payload.view[:] = b"w" * 50_000
    reply = client.exchange(
        "B", MessageKind.CALL, payload, MessageKind.REPLY
    )
    assert reply == b"50000"
    assert server.handovers == 1


def test_extent_pins_drain_after_ack(stacks):
    """The server's SEG_ACK (sent once its handler returns) unpins the
    request extent, so repeated bulk sends do not exhaust the segment."""
    _echo_server(stacks)
    client = stacks("A", segment_size=1 << 20)
    body = b"r" * 200_000  # five in flight would overflow 1 MiB
    for _ in range(20):
        client.endpoint.send(
            "B", MessageKind.CALL, body, reply_kind=MessageKind.REPLY
        )
    deadline = time.monotonic() + 2.0
    while client._allocator.pinned_bytes() and time.monotonic() < deadline:
        time.sleep(0.01)
    assert client._allocator.pinned_bytes() == 0


def test_handover_trace_event(stacks):
    """Tracing records a ``segment-handover`` event per mapped extent,
    carrying the extent identity and the mapper's causal stamp."""
    stats = StatsCollector(trace=True)
    server = _echo_server(stacks, stats=stats)
    client = stacks("A", stats=stats)
    body = b"t" * 100_000
    client.endpoint.send(
        "B", MessageKind.CALL, body, reply_kind=MessageKind.REPLY
    )
    events = list(stats.events_in("segment-handover"))
    assert len(events) == 2  # request mapped at B, reply mapped at A
    request_event = next(e for e in events if e.data["kind"] == "call")
    assert request_event.data["src"] == "A"
    assert request_event.data["dst"] == "B"
    assert request_event.data["length"] == len(body)
    assert request_event.data["segment"] == client._allocator.name
    assert request_event.data["epoch"] == request_event.data["segment_epoch"]
    assert request_event.data["extent"] > 0
    for key in ("site", "seq", "vc"):
        assert key in request_event.data


def test_stale_epoch_reference_rejected(stacks):
    """Bumping the segment epoch invalidates every outstanding
    reference: a mapped-too-late extent fails loudly, never reads
    half-written bytes."""
    server = stacks("B")
    seen = []
    server.endpoint.register_handler(
        MessageKind.CALL, lambda m: seen.append(bytes(m.payload)) or b"ok"
    )
    client = stacks("A")
    body = b"s" * 100_000
    client.endpoint.send(
        "B", MessageKind.CALL, body, reply_kind=MessageKind.REPLY
    )
    client._allocator.bump_epoch()
    with pytest.raises(TransportError):
        server._validate_extent(
            client._allocator.name,
            SegmentAllocator.HEADER + _EXTENT_HEADER,
            1,
            client._allocator.epoch - 1,
        )


def test_torn_extent_stamp_rejected(stacks):
    server = stacks("B")
    client = stacks("A")
    offset, stamp, view = client._allocator.reserve(64)
    view[:2] = b"ok"
    client._allocator.publish(offset)
    # Open the segment at B, then claim a different stamp: torn.
    with pytest.raises(TransportError) as excinfo:
        server._validate_extent(
            client._allocator.name,
            offset + _EXTENT_HEADER,
            stamp + 7,
            client._allocator.epoch,
        )
    assert "torn" in str(excinfo.value)
    client._allocator.release(offset, stamp)


def test_handler_retains_lease_past_return(stacks):
    """A handler that must keep a zero-copy payload alive calls
    ``carrier_ref.retain()``; the view stays valid until it releases."""
    server = stacks("B")
    held = {}

    def keep(message):
        if message.carrier_ref is not None:
            message.carrier_ref.retain()
            held["lease"] = message.carrier_ref
            held["view"] = message.payload
        return b"kept"

    server.endpoint.register_handler(MessageKind.CALL, keep)
    client = stacks("A")
    body = b"k" * 100_000
    client.endpoint.send(
        "B", MessageKind.CALL, body, reply_kind=MessageKind.REPLY
    )
    assert bytes(held["view"]) == body
    held["lease"].validate()  # still current: epoch and stamp intact
    held["lease"].release()


# -- stale segment reaping ----------------------------------------------------


def test_purge_reaps_dead_owner_segments():
    """Segments whose recorded owner pid is dead get unlinked; live
    owners' segments are left alone."""
    prefix = "srpc-purge-" + os.urandom(3).hex()
    dead = SegmentAllocator(prefix + "-dead", 64 * 1024)
    live = SegmentAllocator(prefix + "-live", 64 * 1024)
    try:
        # Forge a dead owner: pid 1 is init (alive), so use an absurd
        # pid that cannot exist on this host.
        _U64.pack_into(dead.shm.buf, 24, 2**22 + 12345)
        reaped = purge_stale_segments(prefix)
        assert prefix + "-dead" in reaped
        assert prefix + "-live" not in reaped
        assert not os.path.exists(os.path.join(SHM_DIR, prefix + "-dead"))
        assert os.path.exists(os.path.join(SHM_DIR, prefix + "-live"))
    finally:
        dead._mv = memoryview(b"")
        dead.shm.close()
        live.close()


def test_close_unlinks_every_segment():
    transport = ShmTransport("solo")
    transport.start()
    name = transport.name
    assert os.path.exists(os.path.join(SHM_DIR, name))
    assert os.path.exists(os.path.join(SHM_DIR, name + ".d"))
    transport.close()
    leftovers = [
        entry for entry in os.listdir(SHM_DIR) if entry.startswith(name)
    ]
    assert leftovers == []
