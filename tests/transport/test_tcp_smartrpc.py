"""Smart RPC sessions over real TCP, in-process.

Three transport stacks (name server, caller, callee) exchange framed
messages over localhost sockets while the smart runtime above them
does everything it does over the simulator: swizzles long pointers,
pulls faulted pages, piggybacks modified data, writes back and
invalidates at session end.  The recorded trace must satisfy the same
conformance rules (SRPC100–105) as a simulated run.
"""

import pytest

from repro.analysis import trace_rules
from repro.analysis.diagnostics import DiagnosticCollector
from repro.bench.harness import CALLEE, PROPOSED, make_world, run_tree_call
from repro.simnet.tracefmt import save_trace
from repro.workloads.traversal import (
    bind_tree_expose,
    expected_search_checksum,
    tree_client,
    tree_expose_client,
)
from repro.workloads.trees import (
    TREE_NODE_TYPE_ID,
    build_complete_tree,
    local_tree_checksum,
)
from repro.xdr.view import StructView

NODES = 63
EXPOSED_NODES = 7


def _modify_remote_root(world, session, stub):
    """Fetch the callee-homed root pointer and dirty it on the ground."""
    pointer = stub.tree_root(session)
    spec = world.caller.resolver.resolve(TREE_NODE_TYPE_ID)
    view = StructView(world.caller.mem, pointer, spec, world.caller.arch)
    view.set("data", (555).to_bytes(8, "big"))


@pytest.fixture
def tcp_world():
    with make_world(PROPOSED, transport="tcp", trace=True) as world:
        yield world


def test_session_results_match_simnet_semantics(tcp_world):
    run = run_tree_call(tcp_world, NODES, "search", ratio=1.0)
    assert run.result == expected_search_checksum(NODES, NODES)
    assert run.page_faults > 0  # data moved by fault-driven pull


def test_update_session_piggybacks_modifications_over_tcp(tcp_world):
    root = build_complete_tree(tcp_world.caller, NODES)
    stub = tree_client(tcp_world.caller, CALLEE)
    with tcp_world.caller.session() as session:
        result = stub.search_update(session, root, NODES)
    assert result == expected_search_checksum(NODES, NODES)
    # The callee's updates to caller-homed data ride home piggybacked
    # on the reply (no WRITE_BACK needed: the ground IS the home).
    expected = expected_search_checksum(NODES, NODES) + NODES
    assert local_tree_checksum(tcp_world.caller, root) == expected
    assert tcp_world.stats.invalidations > 0


def test_ground_modification_written_back_over_tcp(tcp_world):
    """The WRITE_BACK path over real sockets: the callee homes a tree,
    the ground dereferences its root pointer and modifies it, and
    session end pushes the dirty data back into the callee's heap."""
    remote_root = build_complete_tree(tcp_world.callee, EXPOSED_NODES)
    bind_tree_expose(tcp_world.callee, remote_root)
    stub = tree_expose_client(tcp_world.caller, CALLEE)
    with tcp_world.caller.session() as session:
        _modify_remote_root(tcp_world, session, stub)
    assert tcp_world.stats.write_backs > 0
    # The callee reads its own heap: the write-back landed, exactly
    # once (any re-execution would have observed 555, not added to it).
    with tcp_world.caller.session() as session:
        checksum = stub.tree_checksum(session)
    assert checksum == sum(range(EXPOSED_NODES)) + 555


def test_tcp_trace_passes_conformance_rules(tcp_world, tmp_path):
    root = build_complete_tree(tcp_world.caller, NODES)
    remote_root = build_complete_tree(tcp_world.callee, EXPOSED_NODES)
    bind_tree_expose(tcp_world.callee, remote_root)
    stub = tree_client(tcp_world.caller, CALLEE)
    expose = tree_expose_client(tcp_world.caller, CALLEE)
    with tcp_world.caller.session() as session:
        stub.search_update(session, root, NODES)
        _modify_remote_root(tcp_world, session, expose)
    categories = {event.category for event in tcp_world.stats.events}
    # The structured event vocabulary matches the simulator's, so the
    # offline rules read a real run exactly like a simulated one.
    assert {
        "message",
        "transfer",
        "fault",
        "session-end",
        "write-back",
        "invalidate",
    } <= categories
    trace_path = tmp_path / "tcp-session.jsonl"
    save_trace(tcp_world.stats, trace_path)
    collector = DiagnosticCollector()
    trace_rules.analyze_trace_file(trace_path, collector)
    assert list(collector) == []
