"""Tests for vector clocks (the causal-stamp layer)."""

from repro.transport.vclock import (
    VectorClock,
    concurrent,
    dominates,
    happens_before,
)


class TestVectorClock:
    def test_tick_increments_own_component(self):
        clock = VectorClock("A")
        assert clock.tick() == {"A": 1}
        assert clock.tick() == {"A": 2}

    def test_tick_returns_snapshot_not_alias(self):
        clock = VectorClock("A")
        first = clock.tick()
        clock.tick()
        assert first == {"A": 1}

    def test_merge_takes_pointwise_max(self):
        clock = VectorClock("A")
        clock.tick()
        clock.merge({"B": 5, "A": 0})
        assert clock.snapshot() == {"A": 1, "B": 5}
        clock.merge({"B": 3, "C": 1})
        assert clock.snapshot() == {"A": 1, "B": 5, "C": 1}

    def test_merged_history_travels_through_ticks(self):
        clock = VectorClock("A")
        clock.merge({"B": 2})
        assert clock.tick() == {"A": 1, "B": 2}

    def test_next_seq_is_monotonic_per_session(self):
        clock = VectorClock("A")
        assert [clock.next_seq("s1") for _ in range(3)] == [0, 1, 2]
        assert clock.next_seq("s2") == 0
        assert clock.next_seq(None) == 0
        assert clock.next_seq("s1") == 3


class TestCausalOrder:
    def test_dominates(self):
        assert dominates({"A": 2, "B": 1}, {"A": 1})
        assert not dominates({"A": 1}, {"A": 2})
        assert dominates({"A": 1}, {"A": 1})

    def test_happens_before_requires_strict_order(self):
        a = {"A": 1}
        b = {"A": 2, "B": 1}
        assert happens_before(a, b)
        assert not happens_before(b, a)
        assert not happens_before(a, dict(a))

    def test_concurrent_is_symmetric_and_irreflexive(self):
        a = {"A": 2}
        b = {"B": 3}
        assert concurrent(a, b)
        assert concurrent(b, a)
        assert not concurrent(a, dict(a))

    def test_ordered_clocks_are_not_concurrent(self):
        a = {"A": 1, "B": 1}
        b = {"A": 2, "B": 1}
        assert not concurrent(a, b)
        assert happens_before(a, b)


class TestEndToEndStamping:
    """The carriers piggyback clocks so causality crosses sites."""

    def test_simnet_exchange_merges_clocks(self):
        from repro.simnet.message import MessageKind
        from repro.simnet.network import Network

        network = Network()
        a = network.add_site("A")
        b = network.add_site("B")
        b.register_handler(MessageKind.CALL, lambda m: b"")
        a.vclock.tick()
        network.send("A", "B", MessageKind.CALL, b"x", MessageKind.REPLY)
        # The callee observed the caller's clock, and the reply
        # carried the callee's history back.
        assert b.vclock.snapshot().get("A", 0) >= 1
        assert a.vclock.snapshot().get("B", 0) >= 0

    def test_stamp_carries_site_seq_and_clock(self):
        from repro.simnet.network import Network

        network = Network()
        a = network.add_site("A")
        stamp = a.stamp("session-1")
        assert stamp["site"] == "A"
        assert stamp["seq"] == 0
        assert stamp["vc"]["A"] >= 1
        assert a.stamp("session-1")["seq"] == 1
