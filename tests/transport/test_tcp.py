"""TcpTransport behaviour: handshake, pooling, retries, at-most-once.

All tests run several transports inside one interpreter over real
localhost sockets — each transport still has its own event loop,
executor and listener, exactly as separate processes would.
"""

import pytest

from repro.simnet.message import MessageKind
from repro.transport.base import RetryPolicy, TransportError
from repro.transport.tcp import (
    FaultInjector,
    HandshakeError,
    RemoteHandlerError,
    TcpTransport,
)

FAST_RETRY = RetryPolicy(
    timeout=0.2, backoff=2.0, max_timeout=1.0, max_attempts=4
)


@pytest.fixture
def stacks():
    """Factory for started transports, all closed at teardown."""
    opened = []

    def make(site_id, **kwargs):
        kwargs.setdefault("retry", FAST_RETRY)
        transport = TcpTransport(site_id, **kwargs)
        transport.start()
        opened.append(transport)
        for other in opened:
            if other is not transport:
                if transport.address is not None:
                    other.add_peer(site_id, transport.address)
                if other.address is not None:
                    transport.add_peer(other.site_id, other.address)
        return transport

    yield make
    for transport in opened:
        transport.close()


def _echo_server(stacks, site_id="B", **kwargs):
    server = stacks(site_id, **kwargs)
    server.endpoint.register_handler(
        MessageKind.CALL, lambda m: b"echo:" + m.payload
    )
    return server


def test_basic_exchange(stacks):
    _echo_server(stacks)
    client = stacks("A")
    reply = client.endpoint.send(
        "B", MessageKind.CALL, b"hi", reply_kind=MessageKind.REPLY
    )
    assert reply == b"echo:hi"


def test_one_way_message(stacks):
    server = stacks("B")
    seen = []
    server.endpoint.register_handler(
        MessageKind.INVALIDATE, lambda m: seen.append(m.payload) or b""
    )
    client = stacks("A")
    assert client.endpoint.send("B", MessageKind.INVALIDATE, b"x") == b""
    assert seen == [b"x"]


def test_connection_pool_reuses_one_dial(stacks):
    _echo_server(stacks)
    client = stacks("A")
    for index in range(10):
        client.endpoint.send(
            "B",
            MessageKind.CALL,
            str(index).encode(),
            reply_kind=MessageKind.REPLY,
        )
    assert client.dials["B"] == 1


def test_handshake_version_mismatch_refused(stacks):
    _echo_server(stacks)
    rogue = stacks("R", protocol_version=99)
    with pytest.raises(HandshakeError) as excinfo:
        rogue.endpoint.send(
            "B", MessageKind.CALL, b"hi", reply_kind=MessageKind.REPLY
        )
    assert "version" in str(excinfo.value)


def test_dropped_request_is_retransmitted(stacks):
    _echo_server(stacks)
    client = stacks("A", faults=FaultInjector(drop_requests={1}))
    reply = client.endpoint.send(
        "B", MessageKind.CALL, b"hi", reply_kind=MessageKind.REPLY
    )
    assert reply == b"echo:hi"
    assert client.retransmissions == 1


def test_duplicated_request_executes_once(stacks):
    server = stacks("B")
    calls = []
    server.endpoint.register_handler(
        MessageKind.CALL,
        lambda m: calls.append(m.payload) or str(len(calls)).encode(),
    )
    client = stacks("A", faults=FaultInjector(duplicate_requests={1}))
    reply = client.endpoint.send(
        "B", MessageKind.CALL, b"hi", reply_kind=MessageKind.REPLY
    )
    assert reply == b"1"
    # Both copies of the frame reached the server; the handler (which
    # is deliberately not idempotent) must still have run exactly once.
    assert calls == [b"hi"]


def test_dropped_reply_served_from_cache(stacks):
    server = stacks("B", faults=FaultInjector(drop_replies={1}))
    calls = []
    server.endpoint.register_handler(
        MessageKind.CALL,
        lambda m: calls.append(m.payload) or str(len(calls)).encode(),
    )
    client = stacks("A")
    reply = client.endpoint.send(
        "B", MessageKind.CALL, b"hi", reply_kind=MessageKind.REPLY
    )
    # The first reply was dropped on the wire; the retransmission must
    # be answered from the server's reply cache, not by re-execution.
    assert reply == b"1"
    assert calls == [b"hi"]
    assert client.retransmissions >= 1
    assert server.endpoint.reply_cache.hits >= 1


def test_retry_exhaustion_raises(stacks):
    _echo_server(stacks)
    client = stacks(
        "A",
        faults=FaultInjector(drop_requests={1, 2}),
        retry=RetryPolicy(timeout=0.1, max_attempts=2),
    )
    with pytest.raises(TransportError):
        client.endpoint.send(
            "B", MessageKind.CALL, b"hi", reply_kind=MessageKind.REPLY
        )


def test_unknown_destination_raises(stacks):
    client = stacks("A")
    with pytest.raises(TransportError):
        client.endpoint.send(
            "nowhere", MessageKind.CALL, b"", reply_kind=MessageKind.REPLY
        )


def test_remote_handler_exception_propagates(stacks):
    server = stacks("B")

    def explode(message):
        raise RuntimeError("kaboom")

    server.endpoint.register_handler(MessageKind.CALL, explode)
    client = stacks("A")
    with pytest.raises(RemoteHandlerError) as excinfo:
        client.endpoint.send(
            "B", MessageKind.CALL, b"", reply_kind=MessageKind.REPLY
        )
    assert "kaboom" in str(excinfo.value)


def test_nested_exchange_back_to_blocked_caller(stacks):
    """B's handler calls back into A while A is blocked on B — the
    shape of every fault-driven data request.  Needs the event loop
    free while handlers run; a deadlock here fails by timeout."""
    a = stacks("A")
    b = stacks("B")
    a.endpoint.register_handler(
        MessageKind.DATA_REQUEST, lambda m: b"data:" + m.payload
    )

    def relay(message):
        inner = b.endpoint.send(
            "A",
            MessageKind.DATA_REQUEST,
            message.payload,
            reply_kind=MessageKind.DATA_REPLY,
        )
        return b"relay:" + inner

    b.endpoint.register_handler(MessageKind.CALL, relay)
    reply = a.endpoint.send(
        "B", MessageKind.CALL, b"x", reply_kind=MessageKind.REPLY
    )
    assert reply == b"relay:data:x"


def test_ping_measures_round_trip(stacks):
    _echo_server(stacks)
    client = stacks("A")
    assert client.ping("B") > 0.0


def test_send_before_start_raises():
    transport = TcpTransport("A")
    try:
        with pytest.raises(TransportError):
            transport.exchange("B", MessageKind.CALL, b"", None)
    finally:
        transport.close()
