"""The acceptance scenario: smart RPC across separate OS processes.

Four genuine processes take part:

1. this test process — the ground/caller address space "A";
2. a spawned registry host — site directory + type name server;
3. a spawned space host "B" — runs the remote procedures;
4. a spawned space host "C" — a second callee in the same session.

The session exercises the full smart-RPC machinery over localhost TCP
— pointer swizzling, fault-driven pulls, modified-data piggybacking,
session-end write-back and invalidation of *both* callees — while
injected wire faults (a dropped request, a duplicated request, a
dropped reply) force the Birrell-Nelson retry path.  The updates land
exactly once, and the merged four-process trace passes every
conformance rule.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.analysis import sanitizer, trace_rules
from repro.analysis.diagnostics import DiagnosticCollector
from repro.namesvc.directory import DirectoryClient, DirectoryError
from repro.simnet.stats import StatsCollector
from repro.simnet.tracefmt import load_trace, save_trace
from repro.transport.host import make_space, query_status
from repro.transport.tcp import FaultInjector
from repro.transport.tracemerge import export_trace, merge_trace_files
from repro.workloads.traversal import (
    expected_search_checksum,
    tree_client,
    tree_expose_client,
)
from repro.workloads.trees import (
    TREE_NODE_TYPE_ID,
    build_complete_tree,
    local_tree_checksum,
)
from repro.xdr.view import StructView

NODES = 63
EXPOSED_NODES = 7
SPAWN_TIMEOUT = 30


def _env():
    src = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [src, env.get("PYTHONPATH")])
    )
    return env


class HostProcess:
    """One spawned ``python -m repro.transport serve`` process."""

    def __init__(self, *args, transport="tcp"):
        self.transport = transport
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.transport", "serve",
                "--transport", transport, *args,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=_env(),
        )
        line = self.proc.stdout.readline().strip()
        assert line.startswith("READY "), f"bad READY line: {line!r}"
        self.addr = line.split("addr=")[1]

    def shutdown(self, registry_addr):
        subprocess.run(
            [
                sys.executable, "-m", "repro.transport", "shutdown",
                "--site", self.site_id, "--registry", registry_addr,
                "--transport", self.transport,
            ],
            env=_env(),
            capture_output=True,
            timeout=SPAWN_TIMEOUT,
            check=True,
        )

    def wait(self):
        stdout, stderr = self.proc.communicate(timeout=SPAWN_TIMEOUT)
        assert self.proc.returncode == 0, stderr[-2000:]

    def kill(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()


@pytest.fixture(params=["tcp", "shm"])
def deployment(request, tmp_path):
    """Registry + two space hosts, each writing a trace log.

    Runs once per carrier: the same four-process scenario must hold
    over localhost sockets and over shared-memory segments.
    """
    transport = request.param
    hosts = []
    try:
        registry = HostProcess(
            "--site", "NS", "--serve-registry",
            "--trace", str(tmp_path / "ns.jsonl"),
            transport=transport,
        )
        registry.site_id = "NS"
        hosts.append(registry)
        # B also homes a small tree of its own (tree_expose): the
        # ground will modify it and write it back at session end.
        b = HostProcess(
            "--site", "B", "--registry", registry.addr,
            "--trace", str(tmp_path / "b.jsonl"),
            "--heartbeat", "0.5",
            "--expose-tree", str(EXPOSED_NODES),
            transport=transport,
        )
        b.site_id = "B"
        hosts.append(b)
        # C drops its second outgoing reply: one of the session's
        # exchanges with C must survive via retransmission + cache.
        c = HostProcess(
            "--site", "C", "--registry", registry.addr,
            "--trace", str(tmp_path / "c.jsonl"),
            "--fault", "drop-reply=2",
            transport=transport,
        )
        c.site_id = "C"
        hosts.append(c)
        yield transport, registry, b, c
    finally:
        for host in hosts:
            host.kill()


def test_session_across_processes_with_faults(deployment, tmp_path):
    carrier, registry, b, c = deployment
    host, port = registry.addr.rsplit(":", 1)
    stats = StatsCollector(trace=True)
    # The caller drops its 2nd request transmission and duplicates its
    # 5th — mid-session faults on the caller side of the exchanges.
    transport, runtime = make_space(
        "A",
        registry=(host, int(port)),
        stats=stats,
        faults=FaultInjector(drop_requests={2}, duplicate_requests={5}),
        transport=carrier,
    )
    try:
        directory = DirectoryClient(transport.endpoint, "NS")
        address = transport.address
        if isinstance(address, tuple):  # shm publishes (segment, 0)
            directory.register(*address)
        else:
            directory.register(address, 0)
        assert set(directory.list()) == {"A", "B", "C"}

        root = build_complete_tree(runtime, NODES)
        with runtime.session() as session:
            updated = tree_client(runtime, "B").search_update(
                session, root, NODES
            )
            searched = tree_client(runtime, "C").search(
                session, root, NODES
            )
        expected = expected_search_checksum(NODES, NODES)
        assert updated == expected
        # C sees B's +1 updates piggybacked through the caller's heap.
        assert searched == expected + NODES
        # The piggybacked updates landed exactly once: a re-executed
        # (duplicated) search_update would have added NODES again.
        assert local_tree_checksum(runtime, root) == expected + NODES

        # Second session: the ground dereferences a pointer into B's
        # OWN heap, modifies it, and session end must WRITE_BACK the
        # dirty data across the process boundary.
        expose = tree_expose_client(runtime, "B")
        spec = runtime.resolver.resolve(TREE_NODE_TYPE_ID)
        with runtime.session() as session:
            pointer = expose.tree_root(session)
            view = StructView(runtime.mem, pointer, spec, runtime.arch)
            view.set("data", (555).to_bytes(8, "big"))
        assert stats.write_backs > 0
        # B reads its own heap: the write-back landed, exactly once.
        with runtime.session() as session:
            remote_sum = expose.tree_checksum(session)
        assert remote_sum == sum(range(EXPOSED_NODES)) + 555

        # The injected faults actually bit and were survived.
        assert transport.retransmissions >= 2
        save_trace(stats, tmp_path / "a.jsonl")
        directory.deregister()
    finally:
        transport.close()

    for site_host in (b, c, registry):
        site_host.shutdown(registry.addr)
        site_host.wait()

    # The ground recorded session-end invalidation of both callees
    # (coherency events are ground-side; participants log messages).
    ground_events = load_trace(tmp_path / "a.jsonl")
    invalidated = {
        e.data.get("dst")
        for e in ground_events
        if e.category == "invalidate"
    }
    assert {"B", "C"} <= invalidated
    assert any(e.category == "write-back" for e in ground_events)
    # C's dropped reply shows up as a loss event in its own trace.
    assert any(
        e.category == "loss" for e in load_trace(tmp_path / "c.jsonl")
    )

    merged = tmp_path / "merged.jsonl"
    count = merge_trace_files(
        [tmp_path / name for name in
         ("a.jsonl", "b.jsonl", "c.jsonl", "ns.jsonl")],
        merged,
    )
    assert count > 0
    collector = DiagnosticCollector()
    trace_rules.analyze_trace_file(merged, collector)
    assert list(collector) == []

    # The coherency sanitizer replays the same merged timeline: the
    # four processes' piggybacked vector clocks must order every fault,
    # write and invalidation — any SRPC4xx finding is a real race.
    races = DiagnosticCollector()
    sanitizer.analyze_trace_file(merged, races)
    assert list(races) == [], [d.render() for d in races]
    export_trace(merged, "cross_process")


def test_heartbeat_keeps_liveness_fresh(deployment):
    carrier, registry, b, c = deployment
    host, port = registry.addr.rsplit(":", 1)
    transport, _ = make_space(
        "probe", method="eager", registry=(host, int(port)),
        transport=carrier,
    )
    try:
        directory = DirectoryClient(transport.endpoint, "NS")
        # Readiness barrier instead of a wall-clock sleep: B's host
        # blocks this exchange until it has heartbeated twice, so the
        # lookup below observes a provably fresh liveness age.
        status = query_status(
            transport.endpoint, "B", min_heartbeats=2, max_wait=10.0
        )
        assert status["heartbeats"] >= 2
        _, _, age = directory.lookup("B")
        assert age < 1.5
    finally:
        transport.close()


def test_deregistered_site_is_forgotten(deployment):
    carrier, registry, b, c = deployment
    host, port = registry.addr.rsplit(":", 1)
    transport, _ = make_space(
        "probe", method="eager", registry=(host, int(port)),
        transport=carrier,
    )
    try:
        directory = DirectoryClient(transport.endpoint, "NS")
        b.shutdown(registry.addr)
        b.wait()
        with pytest.raises(DirectoryError):
            directory.lookup("B")
    finally:
        transport.close()
