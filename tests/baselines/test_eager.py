"""Tests for the fully eager baseline (deep-copy marshalling)."""

import pytest

from repro.baselines.eager import FullyEagerRpc
from repro.namesvc.client import TypeResolver
from repro.namesvc.server import TypeNameServer
from repro.rpc.errors import MarshalError, RpcRemoteError
from repro.rpc.interface import InterfaceDef, Param, ProcedureDef
from repro.rpc.stubgen import ClientStub, bind_server
from repro.workloads.traversal import (
    bind_tree_server,
    expected_search_checksum,
    tree_client,
)
from repro.workloads.trees import (
    TREE_NODE_TYPE_ID,
    build_complete_tree,
    register_tree_types,
)
from repro.workloads.linked_list import (
    LIST_NODE_TYPE_ID,
    build_list,
    register_list_types,
)
from repro.xdr.arch import SPARC32, X86_64
from repro.xdr.registry import TypeRegistry
from repro.xdr.types import PointerType, int32, int64


@pytest.fixture
def pair(network):
    TypeNameServer(network.add_site("NS"), TypeRegistry())
    runtimes = []
    for site_id, arch in (("A", SPARC32), ("B", X86_64)):
        site = network.add_site(site_id)
        runtime = FullyEagerRpc(
            network, site, arch, resolver=TypeResolver(site, "NS")
        )
        register_tree_types(runtime)
        register_list_types(runtime)
        runtimes.append(runtime)
    return network, runtimes[0], runtimes[1]


class TestDeepCopy:
    def test_whole_tree_copied_and_searched(self, pair):
        network, a, b = pair
        root = build_complete_tree(a, 15)
        bind_tree_server(b)
        stub = tree_client(a, "B")
        with a.session() as session:
            assert stub.search(session, root, 15) == (
                expected_search_checksum(15, 15)
            )

    def test_whole_tree_ships_regardless_of_ratio(self, pair):
        network, a, b = pair
        root = build_complete_tree(a, 15)
        bind_tree_server(b)
        stub = tree_client(a, "B")
        with a.session() as session:
            stub.search(session, root, 1)
        # 15 nodes materialised on the callee despite visiting 1.
        assert network.stats.entries_transferred == 15
        assert network.stats.callbacks == 0

    def test_callee_gets_private_copy(self, pair):
        """Eager semantics: callee modifications do NOT reach home."""
        network, a, b = pair
        root = build_complete_tree(a, 3)
        bind_tree_server(b)
        stub = tree_client(a, "B")
        with a.session() as session:
            stub.search_update(session, root, 3)
        spec = a.resolver.resolve(TREE_NODE_TYPE_ID)
        layout = spec.layout(a.arch)
        data = a.space.read_raw(root + layout.offsets["data"], 8)
        assert int.from_bytes(data, "big") == 0  # original untouched

    def test_null_pointer(self, pair):
        network, a, b = pair
        bind_tree_server(b)
        stub = tree_client(a, "B")
        with a.session() as session:
            assert stub.search(session, 0, 5) == 0

    def test_shared_structure_preserved(self, pair):
        """A DAG is copied with sharing intact, not duplicated."""
        network, a, b = pair
        spec = a.resolver.resolve(TREE_NODE_TYPE_ID)
        size = spec.sizeof(a.arch)
        parent = a.heap.malloc(size, TREE_NODE_TYPE_ID)
        shared = a.heap.malloc(size, TREE_NODE_TYPE_ID)
        a.codec.write_pointer(parent, shared)
        a.codec.write_pointer(parent + 4, shared)
        a.codec.write_pointer(shared, 0)
        a.codec.write_pointer(shared + 4, 0)
        a.space.write_raw(shared + 8, (5).to_bytes(8, "big"))

        probe = InterfaceDef("probe", [
            ProcedureDef(
                "children_identical",
                [Param("root", PointerType(TREE_NODE_TYPE_ID))],
                returns=int32,
            ),
        ])

        def children_identical(ctx, root):
            view = ctx.struct_view(
                root, ctx.runtime.resolver.resolve(TREE_NODE_TYPE_ID)
            )
            return 1 if view.get("left") == view.get("right") else 0

        bind_server(b, probe, {"children_identical": children_identical})
        stub = ClientStub(a, probe, "B")
        with a.session() as session:
            assert stub.children_identical(session, parent) == 1

    def test_cyclic_structure_copied(self, pair):
        network, a, b = pair
        spec = a.resolver.resolve(LIST_NODE_TYPE_ID)
        size = spec.sizeof(a.arch)
        first = a.heap.malloc(size, LIST_NODE_TYPE_ID)
        second = a.heap.malloc(size, LIST_NODE_TYPE_ID)
        a.codec.write_pointer(first, second)
        a.codec.write_pointer(second, first)  # a 2-cycle

        ring = InterfaceDef("ring", [
            ProcedureDef(
                "loop_length",
                [Param("head", PointerType(LIST_NODE_TYPE_ID))],
                returns=int32,
            ),
        ])

        def loop_length(ctx, head):
            spec_b = ctx.runtime.resolver.resolve(LIST_NODE_TYPE_ID)
            seen = set()
            address = head
            while address not in seen and address != 0:
                seen.add(address)
                address = ctx.struct_view(address, spec_b).get("next")
            return len(seen)

        bind_server(b, ring, {"loop_length": loop_length})
        stub = ClientStub(a, ring, "B")
        with a.session() as session:
            assert stub.loop_length(session, first) == 2

    def test_pointer_result_copies_back(self, pair):
        network, a, b = pair
        give = InterfaceDef("give", [
            ProcedureDef(
                "fresh_list", [], returns=PointerType(LIST_NODE_TYPE_ID)
            ),
        ])

        def fresh_list(ctx):
            from repro.workloads.linked_list import build_list as bl

            return bl(ctx.runtime, [7, 8, 9])

        bind_server(b, give, {"fresh_list": fresh_list})
        stub = ClientStub(a, give, "B")
        with a.session() as session:
            head = stub.fresh_list(session)
        from repro.workloads.linked_list import read_list

        assert read_list(a, head) == [7, 8, 9]

    def test_wild_pointer_argument_rejected(self, pair):
        network, a, b = pair
        bind_tree_server(b)
        stub = tree_client(a, "B")
        with a.session() as session:
            with pytest.raises(MarshalError):
                stub.search(session, 0xABCDEF, 1)
