"""Tests for the fully lazy baseline (callback per dereference).

The lazy method is no longer a class of its own: it is the smart
runtime under the ``lazy`` transfer policy (closure budget 0, isolated
placeholder pages), so these tests pin down that the degenerate policy
point still behaves like the paper's §2 lazy system.
"""

import pytest

from repro.namesvc.client import TypeResolver
from repro.namesvc.server import TypeNameServer
from repro.smartrpc.runtime import SmartRpcRuntime
from repro.workloads.traversal import (
    bind_tree_server,
    expected_search_checksum,
    tree_client,
)
from repro.workloads.trees import (
    build_complete_tree,
    register_tree_types,
)
from repro.xdr.arch import SPARC32
from repro.xdr.registry import TypeRegistry


@pytest.fixture
def pair(network):
    TypeNameServer(network.add_site("NS"), TypeRegistry())
    runtimes = []
    for site_id in ("A", "B"):
        site = network.add_site(site_id)
        runtime = SmartRpcRuntime(
            network,
            site,
            SPARC32,
            resolver=TypeResolver(site, "NS"),
            policy="lazy",
        )
        register_tree_types(runtime)
        runtimes.append(runtime)
    return network, runtimes[0], runtimes[1]


class TestCallbackPerDereference:
    def test_search_is_correct(self, pair):
        network, a, b = pair
        root = build_complete_tree(a, 15)
        bind_tree_server(b)
        stub = tree_client(a, "B")
        with a.session() as session:
            assert stub.search(session, root, 15) == (
                expected_search_checksum(15, 15)
            )

    def test_one_callback_per_visited_node(self, pair):
        """Figure 5's lazy line: callbacks == visited nodes."""
        network, a, b = pair
        root = build_complete_tree(a, 31)
        bind_tree_server(b)
        stub = tree_client(a, "B")
        with a.session() as session:
            stub.search(session, root, 20)
        assert network.stats.callbacks == 20

    def test_no_eager_prefetch(self, pair):
        network, a, b = pair
        root = build_complete_tree(a, 31)
        bind_tree_server(b)
        stub = tree_client(a, "B")
        with a.session() as session:
            stub.search(session, root, 1)
        assert network.stats.entries_transferred == 1

    def test_zero_prefetched_closure_bytes(self, pair):
        """The SRPC301 obligation: a lazy run ships no closure bytes
        beyond the demanded data."""
        network, a, b = pair
        root = build_complete_tree(a, 31)
        bind_tree_server(b)
        stub = tree_client(a, "B")
        with a.session() as session:
            stub.search(session, root, 20)
        ledger = network.stats.transfer_ledger
        assert ledger.prefetch_bytes_shipped == 0
        assert ledger.closure_bytes_shipped > 0

    def test_cached_after_first_dereference(self, pair):
        network, a, b = pair
        root = build_complete_tree(a, 15)
        bind_tree_server(b)
        stub = tree_client(a, "B")
        with a.session() as session:
            stub.search(session, root, 15)
            callbacks = network.stats.callbacks
            stub.search(session, root, 15)
            assert network.stats.callbacks == callbacks

    def test_configuration_is_lazy_extreme(self, pair):
        network, a, b = pair
        assert b.closure_size == 0
        assert b.allocation_strategy == "isolated"
        assert b.policy.name == "lazy"

    def test_lazy_budget_cannot_be_overridden(self, pair):
        network, a, b = pair
        from repro.smartrpc.errors import SmartRpcError

        with pytest.raises(SmartRpcError):
            b.closure_size = 4096

    def test_updates_write_back_like_smart_runtime(self, pair):
        """Lazy is the smart machinery at a degenerate point, so the
        coherency protocol still applies."""
        network, a, b = pair
        root = build_complete_tree(a, 7)
        bind_tree_server(b)
        stub = tree_client(a, "B")
        with a.session() as session:
            stub.search_update(session, root, 7)
        spec = a.resolver.resolve("tree_node")
        layout = spec.layout(a.arch)
        data = a.space.read_raw(root + layout.offsets["data"], 8)
        assert int.from_bytes(data, "big") == 1
