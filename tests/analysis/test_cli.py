"""End-to-end tests for the ``python -m repro.analysis`` CLI."""

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).parents[2]


def run(capsys, *argv):
    status = main([str(a) for a in argv])
    captured = capsys.readouterr()
    return status, captured.out, captured.err


class TestExitStatus:
    def test_clean_file_exits_zero(self, capsys):
        status, out, _ = run(capsys, FIXTURES / "idl" / "srpc001_ok.x")
        assert status == 0
        assert "0 error(s)" in out

    def test_error_exits_one(self, capsys):
        status, out, _ = run(capsys, FIXTURES / "idl" / "srpc001_bad.x")
        assert status == 1
        assert "SRPC001" in out

    def test_warning_also_fails_the_lint(self, capsys):
        status, out, _ = run(capsys, FIXTURES / "idl" / "srpc003_bad.x")
        assert status == 1
        assert "SRPC003" in out

    @pytest.mark.parametrize(
        "fixture",
        [
            "srpc001_bad.x", "srpc003_bad.x", "srpc005_bad.x",
            "srpc006_bad.x", "srpc007_bad.x",
        ],
    )
    def test_every_bad_idl_fixture_exits_nonzero(self, capsys, fixture):
        status, out, _ = run(
            capsys, "--json", FIXTURES / "idl" / fixture
        )
        assert status == 1
        expected = fixture[:7].upper()
        assert expected in {
            d["code"] for d in json.loads(out)["diagnostics"]
        }

    @pytest.mark.parametrize(
        "trace",
        [
            "empty_piggyback.trace", "no_write_back.trace",
            "no_invalidate.trace", "no_write_fault.trace",
            "no_session_end.trace", "malformed.trace",
            "budget_mismatch.trace", "mislabelled_lazy.trace",
            "mislabelled_graphcopy.trace",
        ],
    )
    def test_every_bad_trace_fixture_exits_nonzero(self, capsys, trace):
        status, out, _ = run(
            capsys, "--json", FIXTURES / "traces" / "bad" / trace
        )
        assert status == 1
        assert json.loads(out)["diagnostics"]

    def test_missing_file_exits_two(self, capsys):
        status, _, err = run(capsys, FIXTURES / "idl" / "absent.x")
        assert status == 2
        assert "no such file" in err

    def test_no_paths_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2


class TestDispatch:
    def test_trace_files_route_to_conformance_rules(self, capsys):
        status, out, _ = run(
            capsys, FIXTURES / "traces" / "bad" / "no_invalidate.trace"
        )
        assert status == 1
        assert "SRPC103" in out

    def test_mixed_inputs_lint_together(self, capsys):
        status, out, _ = run(
            capsys,
            FIXTURES / "idl" / "srpc001_bad.x",
            FIXTURES / "traces" / "bad" / "no_invalidate.trace",
        )
        assert status == 1
        assert "SRPC001" in out and "SRPC103" in out

    def test_directory_scanned_recursively(self, capsys):
        status, out, _ = run(capsys, FIXTURES / "traces" / "bad")
        assert status == 1
        for code in (
            "SRPC100", "SRPC101", "SRPC102", "SRPC103", "SRPC104",
        ):
            assert code in out


class TestFlags:
    def test_json_report_is_machine_readable(self, capsys):
        _, out, _ = run(
            capsys, "--json", FIXTURES / "idl" / "srpc003_bad.x"
        )
        report = json.loads(out)
        assert report["summary"]["warning"] == 1
        assert report["diagnostics"][0]["code"] == "SRPC003"

    def test_suppress_drops_rule_and_fixes_exit(self, capsys):
        status, out, _ = run(
            capsys,
            "--suppress",
            "SRPC001",
            FIXTURES / "idl" / "srpc001_bad.x",
        )
        assert status == 0
        assert "SRPC001" not in out

    def test_closure_size_reconfigures_srpc005(self, capsys):
        status, out, _ = run(
            capsys,
            "--closure-size",
            "64",
            FIXTURES / "idl" / "srpc005_ok.x",
        )
        assert status == 1
        assert "SRPC005" in out


class TestSelfCheck:
    def test_self_check_passes_on_this_repo(self, capsys):
        status, out, _ = run(capsys, "--self-check", "--root", REPO_ROOT)
        assert status == 0
        assert "self-check" in out

    def test_self_check_rejects_positional_paths(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--self-check", "whatever.x"])
        assert excinfo.value.code == 2

    def test_self_check_fails_on_dirty_root(self, tmp_path, capsys):
        bad = tmp_path / "examples" / "interfaces"
        bad.mkdir(parents=True)
        (bad / "broken.x").write_text("struct oops {", encoding="utf-8")
        status, out, _ = run(capsys, "--self-check", "--root", tmp_path)
        assert status == 1
        assert "SRPC001" in out
